//! Positional inverted index.
//!
//! The index stores, per term, the sorted list of documents containing it,
//! per-document term frequencies, and in-document positions (needed for the
//! exact n-gram phrase matching that the paper's query builder uses for
//! article titles). Collection-level statistics back the Dirichlet
//! smoothing of the query-likelihood model.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::analysis::Analyzer;

/// Dense identifier of an indexed term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
// lint:allow(persist-types-derive-serde) — transient handle; persisted as raw u32
pub struct TermId(pub u32);

/// Dense identifier of an indexed document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
// lint:allow(persist-types-derive-serde) — transient handle; persisted as raw u32
pub struct DocId(pub u32);

impl DocId {
    /// Index into parallel per-document arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TermId {
    /// Index into parallel per-term arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Postings of one term: parallel arrays of documents, frequencies and
/// flat position lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TermPostings {
    docs: Vec<u32>,
    tfs: Vec<u32>,
    /// `pos_offsets[i]..pos_offsets[i+1]` slices `positions` for `docs[i]`.
    pos_offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl TermPostings {
    /// Number of documents containing the term.
    #[inline]
    pub fn doc_freq(&self) -> usize {
        self.docs.len()
    }

    /// Sorted document list.
    #[inline]
    pub fn docs(&self) -> &[u32] {
        &self.docs
    }

    /// Term frequencies parallel to [`Self::docs`].
    #[inline]
    pub fn tfs(&self) -> &[u32] {
        &self.tfs
    }

    /// Term frequency in `doc`, 0 if absent.
    pub fn tf(&self, doc: DocId) -> u32 {
        match self.docs.binary_search(&doc.0) {
            Ok(i) => self.tfs[i],
            Err(_) => 0,
        }
    }

    /// In-document positions of the term in `doc` (sorted), empty if absent.
    pub fn positions(&self, doc: DocId) -> &[u32] {
        match self.docs.binary_search(&doc.0) {
            Ok(i) => {
                let lo = self.pos_offsets[i] as usize;
                let hi = self.pos_offsets[i + 1] as usize;
                &self.positions[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Iterates `(doc, tf)` pairs in document order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, u32)> + '_ {
        self.docs
            .iter()
            .zip(self.tfs.iter())
            .map(|(&d, &t)| (DocId(d), t))
    }

    /// Raw position-slice offsets (`docs.len() + 1` entries); read-only
    /// access for binary persistence.
    #[inline]
    pub fn pos_offsets(&self) -> &[u32] {
        &self.pos_offsets
    }

    /// Raw flat position array; read-only access for binary persistence.
    #[inline]
    pub fn positions_flat(&self) -> &[u32] {
        &self.positions
    }

    /// Reassembles postings from raw arrays. Shape is NOT validated here;
    /// callers must pass the resulting [`Index`] through
    /// [`Index::from_raw_parts`], which checks every per-term invariant.
    pub fn from_raw_parts(
        docs: Vec<u32>,
        tfs: Vec<u32>,
        pos_offsets: Vec<u32>,
        positions: Vec<u32>,
    ) -> TermPostings {
        TermPostings {
            docs,
            tfs,
            pos_offsets,
            positions,
        }
    }
}

/// Reusable buffers for the positional match kernels ([`Index::phrase_tf_with`],
/// [`Index::unordered_window_tf_with`] and the postings drivers built on
/// them). The kernels previously allocated a fresh list-of-slices per
/// candidate document; staging the (short) position lists here instead
/// makes a scan over thousands of candidates allocation-free after
/// warm-up. One scratch serves any number of sequential calls; it is
/// plumbed through `QlScratch`/`SqeScratch` by the serving layer.
#[derive(Debug, Default)]
// lint:allow(persist-types-derive-serde) — transient scratch, never persisted
pub struct PositionalScratch {
    /// Staged position lists, concatenated.
    pub(crate) pos: Vec<u32>,
    /// `(lo, hi)` spans slicing `pos` per staged term.
    pub(crate) bounds: Vec<(u32, u32)>,
    /// Per-list cursors for the unordered-window scan.
    pub(crate) heads: Vec<usize>,
    /// Term-id translation buffer for the segmented `Searcher`.
    pub(crate) terms: Vec<TermId>,
}

impl PositionalScratch {
    /// A fresh scratch (equivalent to `Default`).
    pub fn new() -> Self {
        PositionalScratch::default()
    }

    /// Stages the position lists of `terms` in `doc`; returns `false`
    /// (with unspecified scratch contents) when any term is absent.
    fn stage(&mut self, index: &Index, terms: &[TermId], doc: DocId) -> bool {
        self.pos.clear();
        self.bounds.clear();
        for &t in terms {
            let ps = index.postings(t).positions(doc);
            if ps.is_empty() {
                return false;
            }
            let lo = u32::try_from(self.pos.len())
                .expect("invariant: staged positions fit in u32 (bounded by one document)");
            self.pos.extend_from_slice(ps);
            let hi = u32::try_from(self.pos.len())
                .expect("invariant: staged positions fit in u32 (bounded by one document)");
            self.bounds.push((lo, hi));
        }
        true
    }
}

/// Rejected document insertion: the builder enforces the invariants that
/// the rest of the system (external-id lookups, qrels joins, the
/// `IndexAudit`) silently assumes.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — build error, never persisted
pub enum IndexBuildError {
    /// The external id was already used by an earlier document. Accepting
    /// it would produce two dense doc ids for one article title, which
    /// breaks run-file joins and the audit's uniqueness invariant.
    DuplicateExternalId {
        /// The offending external id.
        external_id: String,
    },
}

impl std::fmt::Display for IndexBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexBuildError::DuplicateExternalId { external_id } => {
                write!(f, "external id `{external_id}` was already indexed")
            }
        }
    }
}

impl std::error::Error for IndexBuildError {}

/// Builds an [`Index`] incrementally, one document at a time.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — builder state is never persisted
pub struct IndexBuilder {
    analyzer: Analyzer,
    dict: FxHashMap<String, u32>,
    terms: Vec<String>,
    postings: Vec<TermPostings>,
    external_ids: Vec<String>,
    seen_ids: rustc_hash::FxHashSet<String>,
    doc_lens: Vec<u32>,
    collection_len: u64,
    token_buf: Vec<String>,
    doc_terms: FxHashMap<u32, Vec<u32>>,
    fwd_offsets: Vec<u32>,
    fwd_terms: Vec<u32>,
    fwd_tfs: Vec<u32>,
}

impl IndexBuilder {
    /// Creates a builder using `analyzer` for every added document.
    pub fn new(analyzer: Analyzer) -> Self {
        IndexBuilder {
            analyzer,
            dict: FxHashMap::default(),
            terms: Vec::new(),
            postings: Vec::new(),
            external_ids: Vec::new(),
            seen_ids: rustc_hash::FxHashSet::default(),
            doc_lens: Vec::new(),
            collection_len: 0,
            token_buf: Vec::new(),
            doc_terms: FxHashMap::default(),
            fwd_offsets: vec![0],
            fwd_terms: Vec::new(),
            fwd_tfs: Vec::new(),
        }
    }

    fn term_id(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.dict.get(token) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("invariant: term count fits in u32 ids");
        self.terms.push(token.to_owned());
        self.dict.insert(token.to_owned(), id);
        self.postings.push(TermPostings {
            pos_offsets: vec![0],
            ..TermPostings::default()
        });
        id
    }

    /// Adds a document with an external (string) identifier; returns its
    /// dense [`DocId`]. Documents must be added in final order. A repeated
    /// external id is rejected with a typed error and leaves the builder
    /// unchanged.
    pub fn add_document(
        &mut self,
        external_id: &str,
        text: &str,
    ) -> Result<DocId, IndexBuildError> {
        if !self.seen_ids.insert(external_id.to_owned()) {
            return Err(IndexBuildError::DuplicateExternalId {
                external_id: external_id.to_owned(),
            });
        }
        let doc =
            u32::try_from(self.external_ids.len()).expect("invariant: doc count fits in u32 ids");
        self.external_ids.push(external_id.to_owned());
        let mut tokens = std::mem::take(&mut self.token_buf);
        self.analyzer.analyze_into(text, &mut tokens);
        self.doc_lens
            .push(u32::try_from(tokens.len()).expect("invariant: document length fits in u32"));
        self.collection_len += tokens.len() as u64;
        // Gather positions per term for this document.
        let mut doc_terms = std::mem::take(&mut self.doc_terms);
        doc_terms.clear();
        for (pos, tok) in tokens.iter().enumerate() {
            let tid = self.term_id(tok);
            doc_terms
                .entry(tid)
                .or_default()
                .push(u32::try_from(pos).expect("invariant: token position fits in u32"));
        }
        // Flush in sorted term order for determinism.
        let mut tids: Vec<u32> = doc_terms.keys().copied().collect();
        tids.sort_unstable();
        for tid in tids {
            let positions = &doc_terms[&tid];
            let p = &mut self.postings[tid as usize];
            p.docs.push(doc);
            p.tfs
                .push(u32::try_from(positions.len()).expect("invariant: term frequency fits in u32"));
            p.positions.extend_from_slice(positions);
            p.pos_offsets.push(
                u32::try_from(p.positions.len()).expect("invariant: positions length fits in u32"),
            );
            self.fwd_terms.push(tid);
            self.fwd_tfs
                .push(u32::try_from(positions.len()).expect("invariant: term frequency fits in u32"));
        }
        self.fwd_offsets.push(
            u32::try_from(self.fwd_terms.len()).expect("invariant: forward index length fits in u32"),
        );
        self.doc_terms = doc_terms;
        self.token_buf = tokens;
        Ok(DocId(doc))
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.external_ids.len()
    }

    /// Finalizes the index.
    pub fn build(self) -> Index {
        let coll_tf = self
            .postings
            .iter()
            .map(|p| p.tfs.iter().map(|&t| t as u64).sum())
            .collect();
        Index {
            analyzer: self.analyzer,
            dict: self.dict,
            terms: self.terms,
            postings: self.postings,
            external_ids: self.external_ids,
            doc_lens: self.doc_lens,
            collection_len: self.collection_len,
            coll_tf,
            fwd_offsets: self.fwd_offsets,
            fwd_terms: self.fwd_terms,
            fwd_tfs: self.fwd_tfs,
        }
    }
}

/// Structural defect found while reassembling an [`Index`] from decoded
/// sections. Shape checks are cheap (lengths, offset monotonicity, id
/// bounds) and run on every decode path, unlike the exhaustive
/// debug-only `IndexAudit`.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — decode error, never persisted
pub enum IndexShapeError {
    /// A parallel section has the wrong length.
    SectionLenMismatch {
        /// Which section is inconsistent.
        section: &'static str,
        /// Observed length.
        len: usize,
        /// Length implied by the rest of the index.
        expected: usize,
    },
    /// Two terms normalize to the same dictionary key.
    DuplicateTerm {
        /// Offending term id.
        term: u32,
    },
    /// A term's posting arrays disagree on the document count.
    PostingArraysMismatch {
        /// Offending term id.
        term: u32,
        /// `docs` length.
        docs: usize,
        /// `tfs` length.
        tfs: usize,
        /// `pos_offsets` length (must be `docs + 1`).
        pos_offsets: usize,
    },
    /// A term's position offsets are not a monotone prefix-sum over its
    /// flat position array.
    PosOffsetsMalformed {
        /// Offending term id.
        term: u32,
    },
    /// A posting references a document outside the collection.
    DocOutOfBounds {
        /// Offending term id.
        term: u32,
        /// Referenced document.
        doc: u32,
        /// Number of documents in the collection.
        num_docs: usize,
    },
    /// The forward-index offsets are not a monotone prefix-sum.
    FwdOffsetsMalformed {
        /// Number of documents.
        docs: usize,
        /// `fwd_offsets` length (must be `docs + 1`).
        offsets_len: usize,
    },
    /// A forward-index entry references a term outside the dictionary.
    FwdTermOutOfBounds {
        /// Referenced term id.
        term: u32,
        /// Number of terms in the dictionary.
        num_terms: usize,
    },
}

impl std::fmt::Display for IndexShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexShapeError::SectionLenMismatch {
                section,
                len,
                expected,
            } => write!(f, "index section `{section}` has length {len}, expected {expected}"),
            IndexShapeError::DuplicateTerm { term } => {
                write!(f, "term {term} duplicates an earlier dictionary entry")
            }
            IndexShapeError::PostingArraysMismatch {
                term,
                docs,
                tfs,
                pos_offsets,
            } => write!(
                f,
                "term {term} postings misaligned: docs={docs}, tfs={tfs}, pos_offsets={pos_offsets}"
            ),
            IndexShapeError::PosOffsetsMalformed { term } => {
                write!(f, "term {term} position offsets are not a prefix-sum of its positions")
            }
            IndexShapeError::DocOutOfBounds {
                term,
                doc,
                num_docs,
            } => write!(
                f,
                "term {term} references document {doc} outside the {num_docs}-document collection"
            ),
            IndexShapeError::FwdOffsetsMalformed { docs, offsets_len } => write!(
                f,
                "forward offsets have length {offsets_len}, not a prefix-sum over {docs} documents"
            ),
            IndexShapeError::FwdTermOutOfBounds { term, num_terms } => write!(
                f,
                "forward index references term {term} outside the {num_terms}-term dictionary"
            ),
        }
    }
}

impl std::error::Error for IndexShapeError {}

/// Failure to restore an [`Index`] from its JSON persistence form: either
/// the payload is not valid JSON for the schema, or it decodes to
/// structurally inconsistent sections.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — decode error, never persisted
pub enum IndexDecodeError {
    /// The payload failed JSON deserialization.
    Json(serde_json::Error),
    /// The payload decoded but its sections are inconsistent.
    Shape(IndexShapeError),
}

impl std::fmt::Display for IndexDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexDecodeError::Json(e) => write!(f, "index JSON decode failed: {e}"),
            IndexDecodeError::Shape(e) => write!(f, "index payload is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for IndexDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexDecodeError::Json(e) => Some(e),
            IndexDecodeError::Shape(e) => Some(e),
        }
    }
}

impl From<IndexShapeError> for IndexDecodeError {
    fn from(e: IndexShapeError) -> Self {
        IndexDecodeError::Shape(e)
    }
}

/// An immutable positional inverted index over a document collection.
/// Serializable for persistence; see [`Index::to_json`] / [`Index::from_json`].
/// `Clone` is cheap relative to a rebuild and lets callers wrap an existing
/// monolithic index as the first segment of a [`crate::SegmentedIndex`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    analyzer: Analyzer,
    dict: FxHashMap<String, u32>,
    terms: Vec<String>,
    postings: Vec<TermPostings>,
    external_ids: Vec<String>,
    doc_lens: Vec<u32>,
    collection_len: u64,
    coll_tf: Vec<u64>,
    fwd_offsets: Vec<u32>,
    fwd_terms: Vec<u32>,
    fwd_tfs: Vec<u32>,
}

impl Index {
    /// The analyzer documents were indexed with; queries must use the same.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.external_ids.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total token count of the collection (`|C|`).
    pub fn collection_len(&self) -> u64 {
        self.collection_len
    }

    /// Looks up the id of an *analyzed* token.
    pub fn term_id(&self, token: &str) -> Option<TermId> {
        self.dict.get(token).copied().map(TermId)
    }

    /// The surface (analyzed) form of a term.
    pub fn term(&self, t: TermId) -> &str {
        &self.terms[t.index()]
    }

    /// The postings of a term.
    pub fn postings(&self, t: TermId) -> &TermPostings {
        &self.postings[t.index()]
    }

    /// Document length in analyzed tokens (`|D|`).
    pub fn doc_len(&self, d: DocId) -> u32 {
        self.doc_lens[d.index()]
    }

    /// The external id of a document.
    pub fn external_id(&self, d: DocId) -> &str {
        &self.external_ids[d.index()]
    }

    /// Collection frequency of a term.
    pub fn collection_tf(&self, t: TermId) -> u64 {
        self.coll_tf[t.index()]
    }

    /// Collection language-model probability `P(w|C)` with a 0.5-count
    /// floor so that out-of-vocabulary features never produce `log 0`.
    pub fn collection_prob(&self, t: Option<TermId>) -> f64 {
        let c = self.collection_len.max(1) as f64;
        match t {
            Some(t) => (self.coll_tf[t.index()] as f64).max(0.5) / c,
            None => 0.5 / c,
        }
    }

    /// Collection probability for an arbitrary count (used by phrase
    /// features whose collection frequency is computed on the fly).
    pub fn collection_prob_for_count(&self, count: u64) -> f64 {
        let c = self.collection_len.max(1) as f64;
        (count as f64).max(0.5) / c
    }

    /// Term frequency of `t` in `d`.
    pub fn tf(&self, t: TermId, d: DocId) -> u32 {
        self.postings[t.index()].tf(d)
    }

    /// Counts exact consecutive occurrences of the term sequence in `doc`
    /// (ordered window 1 — Indri's `#1(...)`). Convenience wrapper over
    /// [`Index::phrase_tf_with`] for callers without a scratch.
    pub fn phrase_tf(&self, terms: &[TermId], doc: DocId) -> u32 {
        self.phrase_tf_with(terms, doc, &mut PositionalScratch::default())
    }

    /// [`Index::phrase_tf`] with caller-provided scratch buffers: the
    /// position lists of the non-leading terms are staged in `scratch`
    /// instead of a per-call allocation, so a postings driver scanning
    /// thousands of candidate documents allocates nothing after warm-up.
    pub fn phrase_tf_with(
        &self,
        terms: &[TermId],
        doc: DocId,
        scratch: &mut PositionalScratch,
    ) -> u32 {
        match terms.len() {
            0 => 0,
            1 => self.tf(terms[0], doc),
            _ => {
                let first = self.postings(terms[0]).positions(doc);
                if first.is_empty() {
                    return 0;
                }
                if !scratch.stage(self, &terms[1..], doc) {
                    return 0;
                }
                let mut count = 0;
                for &p in first {
                    if scratch.bounds.iter().enumerate().all(|(i, &(lo, hi))| {
                        let offset =
                            u32::try_from(i + 1).expect("invariant: phrase length fits in u32");
                        scratch.pos[lo as usize..hi as usize]
                            .binary_search(&(p + offset))
                            .is_ok()
                    }) {
                        count += 1;
                    }
                }
                count
            }
        }
    }

    /// Counts unordered co-occurrences of all terms within any window of
    /// `window` consecutive positions (Indri's `#uwN`). Matches are
    /// counted as non-overlapping minimal intervals: the scan repeatedly
    /// finds the smallest span covering one occurrence of every term,
    /// counts it if it fits the window, and advances past its start.
    /// Convenience wrapper over [`Index::unordered_window_tf_with`].
    pub fn unordered_window_tf(&self, terms: &[TermId], doc: DocId, window: u32) -> u32 {
        self.unordered_window_tf_with(terms, doc, window, &mut PositionalScratch::default())
    }

    /// [`Index::unordered_window_tf`] with caller-provided scratch
    /// buffers (same contract as [`Index::phrase_tf_with`]).
    pub fn unordered_window_tf_with(
        &self,
        terms: &[TermId],
        doc: DocId,
        window: u32,
        scratch: &mut PositionalScratch,
    ) -> u32 {
        match terms.len() {
            0 => 0,
            1 => self.tf(terms[0], doc),
            _ => {
                if !scratch.stage(self, terms, doc) {
                    return 0;
                }
                let n = scratch.bounds.len();
                scratch.heads.clear();
                scratch.heads.resize(n, 0);
                // Direct field access keeps the list reads (`pos`/`bounds`)
                // and the cursor writes (`heads`) on disjoint borrows.
                let pos = &scratch.pos;
                let bounds = &scratch.bounds;
                let heads = &mut scratch.heads;
                let list = |i: usize| {
                    let (lo, hi) = bounds[i];
                    &pos[lo as usize..hi as usize]
                };
                let mut count = 0u32;
                loop {
                    let mut min_pos = u32::MAX;
                    let mut max_pos = 0u32;
                    let mut min_idx = 0usize;
                    for (i, &h) in heads.iter().enumerate() {
                        let p = list(i)[h];
                        if p < min_pos {
                            min_pos = p;
                            min_idx = i;
                        }
                        max_pos = max_pos.max(p);
                    }
                    if max_pos - min_pos < window {
                        count += 1;
                        // Non-overlapping: consume the whole matched span.
                        let mut exhausted = false;
                        for (i, h) in heads.iter_mut().enumerate() {
                            let l = list(i);
                            while *h < l.len() && l[*h] <= max_pos {
                                *h += 1;
                            }
                            if *h == l.len() {
                                exhausted = true;
                            }
                        }
                        if exhausted {
                            return count;
                        }
                    } else {
                        heads[min_idx] += 1;
                        if heads[min_idx] == list(min_idx).len() {
                            return count;
                        }
                    }
                }
            }
        }
    }

    /// All documents where the terms co-occur within the window, with
    /// their unordered-window frequencies, in document order.
    pub fn unordered_window_postings(&self, terms: &[TermId], window: u32) -> Vec<(DocId, u32)> {
        self.unordered_window_postings_with(terms, window, &mut PositionalScratch::default())
    }

    /// [`Index::unordered_window_postings`] with reusable scratch: the
    /// per-candidate-document window scans stage their position lists in
    /// `scratch` instead of allocating.
    pub fn unordered_window_postings_with(
        &self,
        terms: &[TermId],
        window: u32,
        scratch: &mut PositionalScratch,
    ) -> Vec<(DocId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        if terms.len() == 1 {
            return self.postings(terms[0]).iter().collect();
        }
        let rarest = terms
            .iter()
            .min_by_key(|&&t| self.postings(t).doc_freq())
            .copied()
            .expect("invariant: terms checked non-empty above, so a rarest term exists");
        let mut out = Vec::new();
        for (doc, _) in self.postings(rarest).iter() {
            let tf = self.unordered_window_tf_with(terms, doc, window, scratch);
            if tf > 0 {
                out.push((doc, tf));
            }
        }
        out
    }

    /// All documents containing the exact phrase, with phrase frequencies.
    /// Documents come out in id order.
    pub fn phrase_postings(&self, terms: &[TermId]) -> Vec<(DocId, u32)> {
        self.phrase_postings_with(terms, &mut PositionalScratch::default())
    }

    /// [`Index::phrase_postings`] with reusable scratch (same contract as
    /// [`Index::unordered_window_postings_with`]).
    pub fn phrase_postings_with(
        &self,
        terms: &[TermId],
        scratch: &mut PositionalScratch,
    ) -> Vec<(DocId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        if terms.len() == 1 {
            return self.postings(terms[0]).iter().collect();
        }
        // Drive from the rarest term to keep the intersection small.
        let rarest = terms
            .iter()
            .min_by_key(|&&t| self.postings(t).doc_freq())
            .copied()
            .expect("invariant: terms checked non-empty above, so a rarest term exists");
        let mut out = Vec::new();
        for (doc, _) in self.postings(rarest).iter() {
            let tf = self.phrase_tf_with(terms, doc, scratch);
            if tf > 0 {
                out.push((doc, tf));
            }
        }
        out
    }

    /// Iterates the distinct terms of a document with their frequencies
    /// (the forward index used by relevance-model feedback).
    pub fn doc_terms(&self, d: DocId) -> impl Iterator<Item = (TermId, u32)> + '_ {
        let lo = self.fwd_offsets[d.index()] as usize;
        let hi = self.fwd_offsets[d.index() + 1] as usize;
        self.fwd_terms[lo..hi]
            .iter()
            .zip(self.fwd_tfs[lo..hi].iter())
            .map(|(&t, &f)| (TermId(t), f))
    }

    /// Serializes the index to JSON (human-diffable persistence; binary
    /// persistence lives in `sqe-store`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores an index from [`Index::to_json`] output. The decoded
    /// sections are shape-validated before the index is returned, so a
    /// structurally inconsistent payload is a typed error here rather
    /// than a latent fault for the debug-only audit to catch.
    pub fn from_json(json: &str) -> Result<Index, IndexDecodeError> {
        let index: Index = serde_json::from_str(json).map_err(IndexDecodeError::Json)?;
        index.validate_shape()?;
        Ok(index)
    }

    /// Dictionary terms in id order; read-only access for binary
    /// persistence.
    #[inline]
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// External document ids in [`DocId`] order.
    #[inline]
    pub fn external_ids(&self) -> &[String] {
        &self.external_ids
    }

    /// Per-document token counts.
    #[inline]
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_lens
    }

    /// Per-term collection frequencies.
    #[inline]
    pub fn coll_tfs(&self) -> &[u64] {
        &self.coll_tf
    }

    /// All per-term postings in [`TermId`] order.
    #[inline]
    pub fn all_postings(&self) -> &[TermPostings] {
        &self.postings
    }

    /// Forward-index offsets (`num_docs + 1` entries).
    #[inline]
    pub fn fwd_offsets(&self) -> &[u32] {
        &self.fwd_offsets
    }

    /// Forward-index term ids, sliced per document by
    /// [`Index::fwd_offsets`].
    #[inline]
    pub fn fwd_terms(&self) -> &[u32] {
        &self.fwd_terms
    }

    /// Forward-index term frequencies parallel to [`Index::fwd_terms`].
    #[inline]
    pub fn fwd_tfs(&self) -> &[u32] {
        &self.fwd_tfs
    }

    /// Reassembles an index from decoded sections, deriving the term
    /// dictionary from `terms` and shape-validating the result. This is
    /// the only way to construct an [`Index`] from untrusted bytes;
    /// callers are expected to follow up with an `IndexAudit` when the
    /// bytes cross a trust boundary (the snapshot store does).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        analyzer: Analyzer,
        terms: Vec<String>,
        postings: Vec<TermPostings>,
        external_ids: Vec<String>,
        doc_lens: Vec<u32>,
        collection_len: u64,
        coll_tf: Vec<u64>,
        fwd_offsets: Vec<u32>,
        fwd_terms: Vec<u32>,
        fwd_tfs: Vec<u32>,
    ) -> Result<Index, IndexShapeError> {
        let mut dict = FxHashMap::default();
        dict.reserve(terms.len());
        for (id, term) in terms.iter().enumerate() {
            let id = u32::try_from(id).map_err(|_| IndexShapeError::SectionLenMismatch {
                section: "terms",
                len: terms.len(),
                expected: u32::MAX as usize,
            })?;
            if dict.insert(term.clone(), id).is_some() {
                return Err(IndexShapeError::DuplicateTerm { term: id });
            }
        }
        let index = Index {
            analyzer,
            dict,
            terms,
            postings,
            external_ids,
            doc_lens,
            collection_len,
            coll_tf,
            fwd_offsets,
            fwd_terms,
            fwd_tfs,
        };
        index.validate_shape()?;
        Ok(index)
    }

    /// Like [`Index::from_raw_parts`], but validates with one full
    /// [`crate::audit::IndexAudit`] pass instead of `validate_shape`
    /// followed by a separate audit: the audit checks a strict superset
    /// of the shape invariants (it tolerates malformed shapes and
    /// reports them as violations), so snapshot loaders get identical
    /// coverage from a single scan over the postings. Duplicate terms
    /// surface as a `DictNotBijective` violation. On failure the audit
    /// is returned so callers can attach its report to their error.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts_audited(
        analyzer: Analyzer,
        terms: Vec<String>,
        postings: Vec<TermPostings>,
        external_ids: Vec<String>,
        doc_lens: Vec<u32>,
        collection_len: u64,
        coll_tf: Vec<u64>,
        fwd_offsets: Vec<u32>,
        fwd_terms: Vec<u32>,
        fwd_tfs: Vec<u32>,
    ) -> Result<Index, crate::audit::IndexAudit> {
        let mut dict = FxHashMap::default();
        dict.reserve(terms.len());
        for (id, term) in terms.iter().enumerate() {
            // Duplicate or overflowing ids leave the dict smaller than
            // the term table; the audit reports that as DictNotBijective.
            if let Ok(id) = u32::try_from(id) {
                dict.entry(term.clone()).or_insert(id);
            }
        }
        let index = Index {
            analyzer,
            dict,
            terms,
            postings,
            external_ids,
            doc_lens,
            collection_len,
            coll_tf,
            fwd_offsets,
            fwd_terms,
            fwd_tfs,
        };
        let audit = crate::audit::IndexAudit::run(&index);
        if audit.is_clean() {
            Ok(index)
        } else {
            Err(audit)
        }
    }

    /// Cheap structural validation of the section shapes: parallel-array
    /// lengths, offset monotonicity and prefix-sum terminals, and id
    /// bounds. Runs on every decode path; deeper semantic invariants
    /// (sortedness, derived statistics) remain the `IndexAudit`'s job.
    pub fn validate_shape(&self) -> Result<(), IndexShapeError> {
        let num_docs = self.external_ids.len();
        let num_terms = self.terms.len();
        if self.doc_lens.len() != num_docs {
            return Err(IndexShapeError::SectionLenMismatch {
                section: "doc_lens",
                len: self.doc_lens.len(),
                expected: num_docs,
            });
        }
        if self.coll_tf.len() != num_terms {
            return Err(IndexShapeError::SectionLenMismatch {
                section: "coll_tf",
                len: self.coll_tf.len(),
                expected: num_terms,
            });
        }
        if self.postings.len() != num_terms {
            return Err(IndexShapeError::SectionLenMismatch {
                section: "postings",
                len: self.postings.len(),
                expected: num_terms,
            });
        }
        if self.dict.len() != num_terms {
            return Err(IndexShapeError::SectionLenMismatch {
                section: "dict",
                len: self.dict.len(),
                expected: num_terms,
            });
        }
        for (tid, p) in self.postings.iter().enumerate() {
            let term = u32::try_from(tid).map_err(|_| IndexShapeError::SectionLenMismatch {
                section: "postings",
                len: self.postings.len(),
                expected: u32::MAX as usize,
            })?;
            if p.tfs.len() != p.docs.len() || p.pos_offsets.len() != p.docs.len() + 1 {
                return Err(IndexShapeError::PostingArraysMismatch {
                    term,
                    docs: p.docs.len(),
                    tfs: p.tfs.len(),
                    pos_offsets: p.pos_offsets.len(),
                });
            }
            let pos_ok = p.pos_offsets.first() == Some(&0)
                && p.pos_offsets.windows(2).all(|w| w[0] <= w[1])
                && p.pos_offsets.last().map(|&l| l as usize) == Some(p.positions.len());
            if !pos_ok {
                return Err(IndexShapeError::PosOffsetsMalformed { term });
            }
            if let Some(&doc) = p.docs.iter().find(|&&d| d as usize >= num_docs) {
                return Err(IndexShapeError::DocOutOfBounds {
                    term,
                    doc,
                    num_docs,
                });
            }
        }
        let fwd_shape_ok = self.fwd_offsets.len() == num_docs + 1
            && self.fwd_offsets.first() == Some(&0)
            && self.fwd_offsets.windows(2).all(|w| w[0] <= w[1])
            && self.fwd_offsets.last().map(|&l| l as usize) == Some(self.fwd_terms.len());
        if !fwd_shape_ok {
            return Err(IndexShapeError::FwdOffsetsMalformed {
                docs: num_docs,
                offsets_len: self.fwd_offsets.len(),
            });
        }
        if self.fwd_tfs.len() != self.fwd_terms.len() {
            return Err(IndexShapeError::SectionLenMismatch {
                section: "fwd_tfs",
                len: self.fwd_tfs.len(),
                expected: self.fwd_terms.len(),
            });
        }
        if let Some(&term) = self.fwd_terms.iter().find(|&&t| t as usize >= num_terms) {
            return Err(IndexShapeError::FwdTermOutOfBounds { term, num_terms });
        }
        Ok(())
    }

    /// Analyzes raw text with the index's analyzer and maps the tokens to
    /// term ids (`None` for out-of-vocabulary tokens).
    pub fn analyze_to_terms(&self, text: &str) -> Vec<Option<TermId>> {
        self.analyzer
            .analyze(text)
            .iter()
            .map(|t| self.term_id(t))
            .collect()
    }
}

/// Mutable views of a term's raw posting arrays, exposed only under the
/// `validate` feature for the auditor's corruption tests.
#[cfg(feature = "validate")]
// lint:allow(persist-types-derive-serde) — borrowed test-only view, never persisted
pub struct TermPostingsRawMut<'a> {
    /// Sorted document list.
    pub docs: &'a mut Vec<u32>,
    /// Term frequencies parallel to `docs`.
    pub tfs: &'a mut Vec<u32>,
    /// Position-slice offsets (`docs.len() + 1` entries).
    pub pos_offsets: &'a mut Vec<u32>,
    /// Flat position array.
    pub positions: &'a mut Vec<u32>,
}

#[cfg(feature = "validate")]
impl TermPostings {
    /// Mutable access to the raw posting arrays. Mutating through this view
    /// can break every invariant the query layer relies on; it exists so
    /// the auditor's tests can seed specific corruption classes.
    pub fn raw_mut(&mut self) -> TermPostingsRawMut<'_> {
        TermPostingsRawMut {
            docs: &mut self.docs,
            tfs: &mut self.tfs,
            pos_offsets: &mut self.pos_offsets,
            positions: &mut self.positions,
        }
    }
}

/// Mutable views of every raw index component, exposed only under the
/// `validate` feature for the auditor's corruption tests.
#[cfg(feature = "validate")]
// lint:allow(persist-types-derive-serde) — borrowed test-only view, never persisted
pub struct IndexRawMut<'a> {
    /// Per-term postings.
    pub postings: &'a mut Vec<TermPostings>,
    /// Per-document token counts.
    pub doc_lens: &'a mut Vec<u32>,
    /// Total collection token count.
    pub collection_len: &'a mut u64,
    /// Per-term collection frequencies.
    pub coll_tf: &'a mut Vec<u64>,
    /// Forward-index offsets (`num_docs + 1` entries).
    pub fwd_offsets: &'a mut Vec<u32>,
    /// Forward-index term ids.
    pub fwd_terms: &'a mut Vec<u32>,
    /// Forward-index frequencies parallel to `fwd_terms`.
    pub fwd_tfs: &'a mut Vec<u32>,
    /// External document ids.
    pub external_ids: &'a mut Vec<String>,
}

#[cfg(feature = "validate")]
impl Index {
    /// Mutable access to the raw index components. Same caveat as
    /// [`TermPostings::raw_mut`]: for corruption tests only.
    pub fn raw_mut(&mut self) -> IndexRawMut<'_> {
        IndexRawMut {
            postings: &mut self.postings,
            doc_lens: &mut self.doc_lens,
            collection_len: &mut self.collection_len,
            coll_tf: &mut self.coll_tf,
            fwd_offsets: &mut self.fwd_offsets,
            fwd_terms: &mut self.fwd_terms,
            fwd_tfs: &mut self.fwd_tfs,
            external_ids: &mut self.external_ids,
        }
    }

    /// Re-derives every index invariant from the raw arrays; called by
    /// [`crate::audit::IndexAudit::run`]. Lives here because the fields are
    /// module-private.
    pub(crate) fn audit_violations(&self) -> Vec<crate::audit::IndexViolation> {
        use crate::audit::IndexViolation as V;
        let mut v = Vec::new();
        let num_docs = self.external_ids.len();
        let num_terms = self.terms.len();

        if self.doc_lens.len() != num_docs {
            v.push(V::DocLensLenMismatch {
                docs: num_docs,
                doc_lens: self.doc_lens.len(),
            });
        }
        let derived_coll: u64 = self.doc_lens.iter().map(|&l| l as u64).sum();
        if derived_coll != self.collection_len {
            v.push(V::CollectionLenMismatch {
                stored: self.collection_len,
                derived: derived_coll,
            });
        }
        if self.postings.len() != num_terms {
            v.push(V::PostingsLenMismatch {
                terms: num_terms,
                postings: self.postings.len(),
            });
        }
        if self.coll_tf.len() != num_terms {
            v.push(V::CollTfLenMismatch {
                terms: num_terms,
                coll_tf: self.coll_tf.len(),
            });
        }

        let dict_ok = self.dict.len() == num_terms
            && self
                .terms
                .iter()
                .enumerate()
                .all(|(i, t)| self.dict.get(t) == Some(&(i as u32)));
        if !dict_ok {
            v.push(V::DictNotBijective {
                dict: self.dict.len(),
                terms: num_terms,
            });
        }

        let mut seen = rustc_hash::FxHashSet::default();
        for id in &self.external_ids {
            if !seen.insert(id.as_str()) {
                v.push(V::DuplicateExternalId {
                    external_id: id.clone(),
                });
            }
        }

        // Postings: per-term structure plus the derived statistics that
        // the stored summaries must agree with.
        let mut derived_doc_len = vec![0u64; num_docs];
        for (tid, p) in self.postings.iter().enumerate() {
            let term = u32::try_from(tid).expect("invariant: term count fits in u32 ids");
            if p.tfs.len() != p.docs.len() || p.pos_offsets.len() != p.docs.len() + 1 {
                v.push(V::PostingArraysMismatch {
                    term,
                    docs: p.docs.len(),
                    tfs: p.tfs.len(),
                    pos_offsets: p.pos_offsets.len(),
                });
                continue; // parallel iteration below would misalign
            }
            if !p.docs.windows(2).all(|w| w[0] < w[1]) {
                v.push(V::PostingsNotSorted { term });
            }
            let pos_ok = p.pos_offsets.first() == Some(&0)
                && p.pos_offsets.windows(2).all(|w| w[0] <= w[1])
                && p.pos_offsets.last().map(|&l| l as usize) == Some(p.positions.len());
            if !pos_ok {
                v.push(V::PosOffsetsMalformed { term });
            }
            let mut derived_ctf = 0u64;
            for (i, (&doc, &tf)) in p.docs.iter().zip(p.tfs.iter()).enumerate() {
                derived_ctf += tf as u64;
                if (doc as usize) < num_docs {
                    derived_doc_len[doc as usize] += tf as u64;
                } else {
                    v.push(V::DocOutOfBounds {
                        term,
                        doc,
                        num_docs,
                    });
                }
                if tf == 0 {
                    v.push(V::ZeroTf { term, doc });
                }
                if pos_ok {
                    let lo = p.pos_offsets[i] as usize;
                    let hi = p.pos_offsets[i + 1] as usize;
                    let slice = &p.positions[lo..hi];
                    if slice.len() != tf as usize || !slice.windows(2).all(|w| w[0] < w[1]) {
                        v.push(V::PositionsTfMismatch {
                            term,
                            doc,
                            tf,
                            positions: slice.len(),
                        });
                    }
                    if let Some(&doc_len) = self.doc_lens.get(doc as usize) {
                        for &pos in slice {
                            if pos >= doc_len {
                                v.push(V::PositionOutOfDoc {
                                    term,
                                    doc,
                                    pos,
                                    doc_len,
                                });
                            }
                        }
                    }
                }
            }
            if let Some(&stored) = self.coll_tf.get(tid) {
                if stored != derived_ctf {
                    v.push(V::CollTfMismatch {
                        term,
                        stored,
                        derived: derived_ctf,
                    });
                }
            }
        }
        if self.doc_lens.len() == num_docs {
            for (d, (&stored, &derived)) in
                self.doc_lens.iter().zip(derived_doc_len.iter()).enumerate()
            {
                if stored as u64 != derived {
                    v.push(V::DocLenMismatch {
                        doc: d as u32,
                        stored,
                        derived,
                    });
                }
            }
        }

        // Forward index: shape, then exact agreement with the postings.
        let fwd_shape_ok = self.fwd_offsets.len() == num_docs + 1
            && self.fwd_offsets.first() == Some(&0)
            && self.fwd_offsets.windows(2).all(|w| w[0] <= w[1])
            && self.fwd_offsets.last().map(|&l| l as usize) == Some(self.fwd_terms.len());
        if !fwd_shape_ok {
            v.push(V::FwdOffsetsMalformed {
                docs: num_docs,
                offsets_len: self.fwd_offsets.len(),
            });
        }
        if self.fwd_terms.len() != self.fwd_tfs.len() {
            v.push(V::FwdArraysMismatch {
                fwd_terms: self.fwd_terms.len(),
                fwd_tfs: self.fwd_tfs.len(),
            });
        } else if fwd_shape_ok {
            // Docs are visited in ascending order and each term's posting
            // docs are ascending too, so a per-term cursor replaces a
            // per-entry binary search: total work is O(entries + terms)
            // instead of O(entries · log postings), which keeps the full
            // audit cheap enough to run on every snapshot load. When a
            // posting list is unsorted the cursor can misread the tf, but
            // that index was already reported via `PostingsNotSorted`.
            let mut cursors = vec![0usize; self.postings.len()];
            for d in 0..num_docs {
                let lo = self.fwd_offsets[d] as usize;
                let hi = self.fwd_offsets[d + 1] as usize;
                for (&t, &f) in self.fwd_terms[lo..hi].iter().zip(self.fwd_tfs[lo..hi].iter()) {
                    match self.postings.get(t as usize) {
                        None => v.push(V::FwdTermOutOfBounds {
                            doc: d as u32,
                            term: t,
                            num_terms: self.postings.len(),
                        }),
                        // Skip tf cross-check when the postings arrays are
                        // misaligned (already reported above).
                        Some(p) if p.tfs.len() == p.docs.len() => {
                            let c = &mut cursors[t as usize];
                            while *c < p.docs.len() && (p.docs[*c] as usize) < d {
                                *c += 1;
                            }
                            let inverted = match p.docs.get(*c) {
                                Some(&doc) if doc as usize == d => p.tfs[*c],
                                _ => 0,
                            };
                            if inverted != f {
                                v.push(V::FwdTfMismatch {
                                    doc: d as u32,
                                    term: t,
                                    forward: f,
                                    inverted,
                                });
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d0", "cable car climbs the hill")
            .expect("unique external ids");
        b.add_document("d1", "cable car cable car")
            .expect("unique external ids");
        b.add_document("d2", "the hill of graffiti")
            .expect("unique external ids");
        b.build()
    }

    #[test]
    fn duplicate_external_id_is_rejected() {
        let mut b = IndexBuilder::new(Analyzer::plain());
        let d0 = b.add_document("dup", "first body").expect("fresh id");
        let err = b.add_document("dup", "second body").unwrap_err();
        assert_eq!(
            err,
            IndexBuildError::DuplicateExternalId {
                external_id: "dup".to_owned()
            }
        );
        assert!(err.to_string().contains("dup"), "{err}");
        // The rejected call must leave the builder unchanged.
        assert_eq!(b.num_docs(), 1);
        let idx = b.build();
        assert_eq!(idx.num_docs(), 1);
        assert_eq!(idx.external_id(d0), "dup");
        assert_eq!(idx.collection_len(), 2);
    }

    #[test]
    fn basic_counts() {
        let idx = tiny();
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.collection_len(), 5 + 4 + 4);
        assert_eq!(idx.doc_len(DocId(1)), 4);
        assert_eq!(idx.external_id(DocId(2)), "d2");
    }

    #[test]
    fn term_stats() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        assert_eq!(idx.collection_tf(cable), 3);
        assert_eq!(idx.postings(cable).doc_freq(), 2);
        assert_eq!(idx.tf(cable, DocId(1)), 2);
        assert_eq!(idx.tf(cable, DocId(2)), 0);
    }

    #[test]
    fn positions_are_recorded() {
        let idx = tiny();
        let car = idx.term_id("car").unwrap();
        assert_eq!(idx.postings(car).positions(DocId(1)), &[1, 3]);
        assert_eq!(idx.postings(car).positions(DocId(2)), &[0u32; 0]);
    }

    #[test]
    fn phrase_tf_counts_adjacent_pairs() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        let car = idx.term_id("car").unwrap();
        assert_eq!(idx.phrase_tf(&[cable, car], DocId(0)), 1);
        assert_eq!(idx.phrase_tf(&[cable, car], DocId(1)), 2);
        assert_eq!(idx.phrase_tf(&[car, cable], DocId(0)), 0);
        assert_eq!(idx.phrase_tf(&[cable, car], DocId(2)), 0);
    }

    #[test]
    fn phrase_postings_intersects() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        let car = idx.term_id("car").unwrap();
        let posts = idx.phrase_postings(&[cable, car]);
        assert_eq!(posts, vec![(DocId(0), 1), (DocId(1), 2)]);
    }

    #[test]
    fn single_term_phrase_equals_term_postings() {
        let idx = tiny();
        let hill = idx.term_id("hill").unwrap();
        let posts = idx.phrase_postings(&[hill]);
        assert_eq!(posts, vec![(DocId(0), 1), (DocId(2), 1)]);
    }

    #[test]
    fn collection_prob_floors_oov() {
        let idx = tiny();
        let p = idx.collection_prob(None);
        assert!(p > 0.0);
        assert!(p < idx.collection_prob(idx.term_id("cable")));
    }

    #[test]
    fn empty_document_is_allowed() {
        let mut b = IndexBuilder::new(Analyzer::english());
        let d = b
            .add_document("empty", "the of and")
            .expect("unique external ids");
        let idx = b.build();
        assert_eq!(idx.doc_len(d), 0);
        assert_eq!(idx.num_docs(), 1);
    }

    #[test]
    fn analyze_to_terms_maps_oov_to_none() {
        let idx = tiny();
        let ids = idx.analyze_to_terms("cable spaceship");
        assert!(ids[0].is_some());
        assert!(ids[1].is_none());
    }

    #[test]
    fn unordered_window_counts_cooccurrence() {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d", "car red cable far far far cable blue car")
            .expect("unique external ids");
        let idx = b.build();
        let cable = idx.term_id("cable").unwrap();
        let car = idx.term_id("car").unwrap();
        // Positions: car {0, 8}, cable {2, 6}.
        // Window 3: |0-2| < 3 ✓ (count, advance past 0) then |8-6| < 3 ✓.
        assert_eq!(idx.unordered_window_tf(&[cable, car], DocId(0), 3), 2);
        // Window 2 requires adjacency: |0-2| ≥ 2, advance car→8; |8-2| ≥ 2,
        // advance cable→6; |8-6| ≥ 2: no matches.
        assert_eq!(idx.unordered_window_tf(&[cable, car], DocId(0), 2), 0);
        // Window large enough matches but non-overlapping: 2 intervals.
        assert_eq!(idx.unordered_window_tf(&[cable, car], DocId(0), 100), 2);
    }

    #[test]
    fn unordered_window_requires_all_terms() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        let graffiti = idx.term_id("graffiti").unwrap();
        assert_eq!(idx.unordered_window_tf(&[cable, graffiti], DocId(0), 50), 0);
    }

    #[test]
    fn unordered_window_is_order_free() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        let car = idx.term_id("car").unwrap();
        let ab = idx.unordered_window_tf(&[cable, car], DocId(1), 4);
        let ba = idx.unordered_window_tf(&[car, cable], DocId(1), 4);
        assert_eq!(ab, ba);
        assert!(ab >= 1);
    }

    #[test]
    fn unordered_window_postings_cover_matching_docs() {
        let idx = tiny();
        let cable = idx.term_id("cable").unwrap();
        let car = idx.term_id("car").unwrap();
        let posts = idx.unordered_window_postings(&[cable, car], 8);
        let docs: Vec<u32> = posts.iter().map(|&(d, _)| d.0).collect();
        assert_eq!(docs, vec![0, 1]);
    }

    #[test]
    fn forward_index_matches_postings() {
        let idx = tiny();
        let terms: Vec<(String, u32)> = idx
            .doc_terms(DocId(1))
            .map(|(t, f)| (idx.term(t).to_owned(), f))
            .collect();
        assert_eq!(
            terms,
            vec![("cable".to_owned(), 2), ("car".to_owned(), 2)]
        );
        // Forward tf must agree with inverted tf for every (doc, term).
        for d in 0..idx.num_docs() as u32 {
            for (t, f) in idx.doc_terms(DocId(d)) {
                assert_eq!(idx.tf(t, DocId(d)), f);
            }
        }
    }

    #[test]
    fn index_json_roundtrip_preserves_retrieval() {
        use crate::ql::{self, QlParams};
        use crate::structured::Query;
        let idx = tiny();
        let restored = Index::from_json(&idx.to_json().unwrap()).unwrap();
        assert_eq!(restored.num_docs(), idx.num_docs());
        assert_eq!(restored.collection_len(), idx.collection_len());
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let h1 = ql::rank(&crate::Searcher::from_index(idx), &q, QlParams { mu: 10.0 }, 5);
        let h2 = ql::rank(&crate::Searcher::from_index(restored), &q, QlParams { mu: 10.0 }, 5);
        assert_eq!(h1, h2, "retrieval must be identical after reload");
    }

    #[test]
    fn from_json_rejects_inconsistent_sections() {
        let idx = tiny();
        // Reassemble with a truncated doc_lens section: valid JSON for the
        // schema, structurally inconsistent as an index.
        let err = Index::from_raw_parts(
            idx.analyzer().clone(),
            idx.terms().to_vec(),
            idx.all_postings().to_vec(),
            idx.external_ids().to_vec(),
            idx.doc_lens()[..idx.num_docs() - 1].to_vec(),
            idx.collection_len(),
            idx.coll_tfs().to_vec(),
            idx.fwd_offsets().to_vec(),
            idx.fwd_terms().to_vec(),
            idx.fwd_tfs().to_vec(),
        )
        .unwrap_err();
        assert!(
            matches!(err, IndexShapeError::SectionLenMismatch { section: "doc_lens", .. }),
            "{err}"
        );
        // The same inconsistency smuggled through JSON is caught at decode.
        let bad = Index {
            analyzer: idx.analyzer().clone(),
            dict: idx.dict.clone(),
            terms: idx.terms().to_vec(),
            postings: idx.all_postings().to_vec(),
            external_ids: idx.external_ids().to_vec(),
            doc_lens: idx.doc_lens()[..idx.num_docs() - 1].to_vec(),
            collection_len: idx.collection_len(),
            coll_tf: idx.coll_tfs().to_vec(),
            fwd_offsets: idx.fwd_offsets().to_vec(),
            fwd_terms: idx.fwd_terms().to_vec(),
            fwd_tfs: idx.fwd_tfs().to_vec(),
        };
        let err = Index::from_json(&bad.to_json().unwrap()).unwrap_err();
        assert!(matches!(err, IndexDecodeError::Shape(_)), "{err}");
        assert!(matches!(
            Index::from_json("not json").unwrap_err(),
            IndexDecodeError::Json(_)
        ));
    }

    #[test]
    fn raw_parts_roundtrip_reconstructs_identical_index() {
        let idx = tiny();
        let restored = Index::from_raw_parts(
            idx.analyzer().clone(),
            idx.terms().to_vec(),
            idx.all_postings().to_vec(),
            idx.external_ids().to_vec(),
            idx.doc_lens().to_vec(),
            idx.collection_len(),
            idx.coll_tfs().to_vec(),
            idx.fwd_offsets().to_vec(),
            idx.fwd_terms().to_vec(),
            idx.fwd_tfs().to_vec(),
        )
        .unwrap();
        assert_eq!(restored.num_docs(), idx.num_docs());
        assert_eq!(restored.num_terms(), idx.num_terms());
        let cable = restored.term_id("cable").unwrap();
        assert_eq!(restored.tf(cable, DocId(1)), 2);
        assert!(crate::audit::IndexAudit::run(&restored).is_clean());
    }

    #[test]
    fn stemming_analyzer_normalizes_documents_and_queries_alike() {
        let mut b = IndexBuilder::new(Analyzer::english());
        b.add_document("d", "funiculars climbing hills")
            .expect("unique external ids");
        let idx = b.build();
        let ids = idx.analyze_to_terms("funicular climbs hill");
        assert!(ids.iter().all(|t| t.is_some()));
    }
}
