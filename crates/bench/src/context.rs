//! Shared experiment state: the generated world, its indexes, the linker.

use entitylink::{Dictionary, EntityLinker, LinkerConfig};
use ireval::Qrels;
use searchlite::{Analyzer, Index, IndexBuilder};
use sqe::{ExpandConfig, SqeConfig};
use synthwiki::{GroundTruth, TestBed, TestBedConfig};

use crate::runs::DatasetRunner;

/// Everything the experiments need, built once.
pub struct ExperimentContext {
    /// The generated world.
    pub bed: TestBed,
    /// One index per collection (same order as `bed.collections`).
    pub indexes: Vec<Index>,
    /// The Dexter/Alchemy-style entity linker over the KB titles+aliases.
    pub linker: EntityLinker,
    /// Pipeline configuration shared by all runs.
    pub sqe_config: SqeConfig,
}

impl ExperimentContext {
    /// Builds the full-scale context (the paper-calibrated preset).
    pub fn full() -> Self {
        Self::from_config(&TestBedConfig::full())
    }

    /// Builds the reduced context used by integration tests.
    pub fn small() -> Self {
        Self::from_config(&TestBedConfig::small())
    }

    /// Builds a context from an arbitrary generator config.
    pub fn from_config(cfg: &TestBedConfig) -> Self {
        let bed = TestBed::generate(cfg);
        let indexes = bed
            .collections
            .iter()
            .map(|coll| {
                let mut b = IndexBuilder::new(Analyzer::english());
                for d in &coll.docs {
                    b.add_document(&d.id, &d.text)
                        .expect("generated collection ids are unique");
                }
                b.build()
            })
            .collect();
        let mut dict = Dictionary::new();
        dict.extend(bed.kb.linker_entries(&bed.space));
        let linker = EntityLinker::new(dict, LinkerConfig::default());
        ExperimentContext {
            bed,
            indexes,
            linker,
            sqe_config: SqeConfig {
                expand: ExpandConfig::default(),
                ql: searchlite::QlParams { mu: 15.0 },
                depth: 1000,
            },
        }
    }

    /// A runner for one dataset by name.
    pub fn runner(&self, dataset: &str) -> DatasetRunner<'_> {
        let ds = self.bed.dataset(dataset);
        let index = &self.indexes[ds.collection];
        DatasetRunner::new(self, ds, index)
    }

    /// trec_eval-style qrels of a dataset.
    pub fn qrels(&self, dataset: &str) -> Qrels {
        let ds = self.bed.dataset(dataset);
        let mut q = Qrels::new();
        for spec in &ds.queries {
            q.add_query(&spec.id);
            if let Some(docs) = ds.relevant.get(&spec.id) {
                for d in docs {
                    q.add_judgment(&spec.id, d);
                }
            }
        }
        q
    }

    /// Ground-truth optimal query graphs of a dataset.
    pub fn ground_truth(&self, dataset: &str) -> GroundTruth {
        let ds = self.bed.dataset(dataset);
        GroundTruth::derive(&self.bed.kb, &self.bed.space, &ds.queries)
    }

    /// Fraction of queries whose automatically linked entities contain at
    /// least one true target (the paper reports >80% for Dexter+Alchemy).
    pub fn linker_precision(&self, dataset: &str) -> f64 {
        let ds = self.bed.dataset(dataset);
        if ds.queries.is_empty() {
            return 0.0;
        }
        let mut hit = 0usize;
        for q in &ds.queries {
            let links = self.linker.link(&q.text);
            let targets: Vec<_> = q
                .targets
                .iter()
                .map(|&e| self.bed.kb.article_of[e])
                .collect();
            if links.iter().any(|l| targets.contains(&l.article)) {
                hit += 1;
            }
        }
        hit as f64 / ds.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds() {
        let ctx = ExperimentContext::small();
        assert_eq!(ctx.indexes.len(), 2);
        assert!(ctx.indexes[0].num_docs() > 0);
        let qrels = ctx.qrels("imageclef");
        assert_eq!(qrels.num_queries(), 12);
        assert!(ctx.ground_truth("imageclef").len() == 12);
    }

    #[test]
    fn linker_finds_most_targets() {
        let ctx = ExperimentContext::small();
        let p = ctx.linker_precision("imageclef");
        assert!(p > 0.5, "linker precision too low: {p}");
    }
}
