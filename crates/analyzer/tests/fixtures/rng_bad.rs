// Fixture: nondeterminism sources in experiment code.

pub fn shuffle_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
