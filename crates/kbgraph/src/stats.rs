//! Whole-graph statistics.
//!
//! Section 3 of the paper characterizes its Wikipedia dump by the counts
//! reported here (articles, categories, and the three link families). The
//! same statistics let tests assert that the synthetic KB generator is
//! structurally calibrated.

use serde::{Deserialize, Serialize};

use crate::graph::KbGraph;

/// Structural summary of a [`KbGraph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of article nodes.
    pub num_articles: usize,
    /// Number of category nodes.
    pub num_categories: usize,
    /// Directed article → article hyperlinks.
    pub num_article_links: usize,
    /// Article → category membership links.
    pub num_membership_links: usize,
    /// Category → category (sub-category) links.
    pub num_category_links: usize,
    /// Number of unordered article pairs linked in both directions.
    pub num_reciprocal_pairs: usize,
    /// Mean article out-degree (hyperlinks).
    pub avg_article_out_degree: f64,
    /// Maximum article out-degree.
    pub max_article_out_degree: usize,
    /// Mean number of categories per article.
    pub avg_categories_per_article: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(g: &KbGraph) -> Self {
        let num_articles = g.num_articles();
        let num_categories = g.num_categories();
        let num_article_links = g.article_links().num_edges();
        let num_membership_links = g.memberships().num_edges();
        let num_category_links = g.subcategories().num_edges();
        let mut num_reciprocal_pairs = 0usize;
        for a in g.articles() {
            for &t in g.out_links(a) {
                // Count each unordered pair once.
                if t > a.raw() && g.links_to(crate::ids::ArticleId::new(t), a) {
                    num_reciprocal_pairs += 1;
                }
            }
        }
        let avg_article_out_degree = if num_articles == 0 {
            0.0
        } else {
            num_article_links as f64 / num_articles as f64
        };
        let avg_categories_per_article = if num_articles == 0 {
            0.0
        } else {
            num_membership_links as f64 / num_articles as f64
        };
        GraphStats {
            num_articles,
            num_categories,
            num_article_links,
            num_membership_links,
            num_category_links,
            num_reciprocal_pairs,
            avg_article_out_degree,
            max_article_out_degree: g.article_links().max_degree(),
            avg_categories_per_article,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let s = g.stats();
        assert_eq!(s.num_articles, 0);
        assert_eq!(s.avg_article_out_degree, 0.0);
        assert_eq!(s.num_reciprocal_pairs, 0);
    }

    #[test]
    fn counts_match_toy_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let y = b.add_article("y");
        let c = b.add_category("c");
        let d = b.add_category("d");
        b.add_mutual_link(a, x); // 2 links, 1 reciprocal pair
        b.add_article_link(a, y); // 1 link
        b.add_membership(a, c);
        b.add_membership(x, c);
        b.add_subcategory(c, d);
        let s = b.build().stats();
        assert_eq!(s.num_articles, 3);
        assert_eq!(s.num_categories, 2);
        assert_eq!(s.num_article_links, 3);
        assert_eq!(s.num_membership_links, 2);
        assert_eq!(s.num_category_links, 1);
        assert_eq!(s.num_reciprocal_pairs, 1);
        assert_eq!(s.max_article_out_degree, 2);
        assert!((s.avg_article_out_degree - 1.0).abs() < 1e-12);
        assert!((s.avg_categories_per_article - 2.0 / 3.0).abs() < 1e-12);
    }
}
