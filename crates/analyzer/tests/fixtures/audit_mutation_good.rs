// Fixture: the same raw mutations, each followed by a structural audit
// in the same function.

pub fn patch(csr: &mut Csr) {
    let targets = csr.raw_mut();
    targets.push(0);
    let report = GraphAudit::run(csr);
    assert!(report.is_clean());
}

pub fn rebuild(offsets: Vec<u32>, targets: Vec<u32>) -> Csr {
    let csr = Csr::from_raw_parts(offsets, targets);
    debug_assert!(kbgraph::audit::GraphAudit::run(&csr).is_clean());
    csr
}
