//! `sqe-lint`: CLI driver for the workspace lint engine and the
//! structural invariant auditor.
//!
//! Subcommands:
//!
//! - `check [--root DIR] [--format human|json] [--config FILE]
//!   [--baseline FILE] [--out FILE]` — lint every workspace `.rs` file;
//!   exit 1 on any error-severity finding not covered by the baseline,
//!   and on stale baseline entries (the baseline may only shrink). With
//!   no `--baseline`, `<root>/sqe-lint.baseline.json` is used when it
//!   exists. `--out` additionally writes all findings as JSON (for CI
//!   artifacts) regardless of `--format`.
//! - `baseline [--root DIR] [--config FILE] [--baseline FILE]` —
//!   snapshot the current error-severity findings to the baseline file
//!   (default `<root>/sqe-lint.baseline.json`).
//! - `rules` — print the rule table (token and ast layers) with default
//!   severities.
//! - `audit [--selftest]` — build a synthetic testbed, run the graph and
//!   index auditors, and (with `--selftest`) seed known corruption
//!   classes to prove each is still detected. Exit 1 on any violation or
//!   missed seeding.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analyzer::baseline::Baseline;
use analyzer::{diagnostics_to_json, lint_workspace, rules, Diagnostic, LintConfig, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("audit") => cmd_audit(&args[1..]),
        _ => {
            eprintln!(
                "usage: sqe-lint <check [--root DIR] [--format human|json] [--config FILE] \
                 [--baseline FILE] [--out FILE] | baseline [--root DIR] [--baseline FILE] \
                 | rules | audit [--selftest]>"
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The baseline file for this invocation: `--baseline FILE`, else the
/// root default. Returns `None` when the default does not exist.
fn baseline_path(args: &[String], root: &Path) -> Option<PathBuf> {
    match flag_value(args, "--baseline") {
        Some(p) => Some(PathBuf::from(p)),
        None => {
            let default = root.join("sqe-lint.baseline.json");
            default.is_file().then_some(default)
        }
    }
}

/// Lints the workspace with the configured severities. Shared by `check`
/// and `baseline`.
fn run_lint(args: &[String], root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = load_config(args, root)?;
    lint_workspace(root, &cfg).map_err(|e| format!("walking {}: {e}", root.display()))
}

fn cmd_check(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or_else(|| ".".to_string()));
    let json = matches!(flag_value(args, "--format").as_deref(), Some("json"));
    let diags = match run_lint(args, &root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out_path) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(&out_path, diagnostics_to_json(&diags)) {
            eprintln!("sqe-lint: writing {out_path}: {e}");
            return ExitCode::from(2);
        }
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warns = diags.len() - errors;
    if json {
        println!("{}", diagnostics_to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!("sqe-lint: {errors} error(s), {warns} warning(s)");
    }

    // Ratchet against the baseline when one is present: only findings
    // beyond the snapshot fail, and snapshot entries that no longer occur
    // fail too (regenerate with `sqe-lint baseline` so it only shrinks).
    let failing = match baseline_path(args, &root) {
        Some(path) => {
            let base = match std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))
                .and_then(|t| Baseline::from_json(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("sqe-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let ratchet = base.compare(&diags);
            for d in &ratchet.new {
                println!("new (not in baseline): {d}");
            }
            for k in &ratchet.stale {
                println!(
                    "stale baseline entry (fixed — regenerate with `sqe-lint baseline`): {k}"
                );
            }
            !ratchet.new.is_empty() || !ratchet.stale.is_empty()
        }
        None => errors > 0,
    };
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or_else(|| ".".to_string()));
    let diags = match run_lint(args, &root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let base = Baseline::from_diags(&diags);
    let path = flag_value(args, "--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("sqe-lint.baseline.json"));
    if let Err(e) = std::fs::write(&path, base.to_json()) {
        eprintln!("sqe-lint: writing {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "sqe-lint: baselined {} finding group(s) to {}",
        base.len(),
        path.display()
    );
    ExitCode::SUCCESS
}

fn load_config(args: &[String], root: &Path) -> Result<LintConfig, String> {
    let path = match flag_value(args, "--config") {
        Some(p) => PathBuf::from(p),
        None => {
            let default = root.join("sqe-lint.json");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    LintConfig::from_json(&text)
}

fn cmd_rules() -> ExitCode {
    for (name, description, severity, layer) in rules::rule_table() {
        println!("{name:<28} {:<6} {layer:<6} {description}", severity.as_str());
    }
    ExitCode::SUCCESS
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let selftest = args.iter().any(|a| a == "--selftest");

    // Audit a realistic synthetic testbed: the generated knowledge graph
    // and an index built over its first document collection.
    let bed = synthwiki::TestBed::generate(&synthwiki::TestBedConfig::small());
    let graph_audit = kbgraph::audit::GraphAudit::run(&bed.kb.graph);
    let mut builder = searchlite::IndexBuilder::new(searchlite::Analyzer::english());
    if let Some(coll) = bed.collections.first() {
        for doc in &coll.docs {
            builder
                .add_document(&doc.id, &doc.text)
                .expect("generated testbed ids are unique");
        }
    }
    let index = builder.build();
    let index_audit = searchlite::audit::IndexAudit::run(&index);

    println!(
        "graph audit: {} articles, {} categories — {}",
        bed.kb.graph.num_articles(),
        bed.kb.graph.num_categories(),
        if graph_audit.is_clean() { "clean" } else { "VIOLATIONS" }
    );
    if !graph_audit.is_clean() {
        println!("{}", graph_audit.report());
    }
    println!(
        "index audit: {} docs — {}",
        index.num_docs(),
        if index_audit.is_clean() { "clean" } else { "VIOLATIONS" }
    );
    if !index_audit.is_clean() {
        println!("{}", index_audit.report());
    }

    let mut failed = !graph_audit.is_clean() || !index_audit.is_clean();
    if selftest {
        for (name, detected) in selftest_results() {
            println!(
                "selftest {:<24} {}",
                name,
                if detected { "detected" } else { "MISSED" }
            );
            failed |= !detected;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Seeds one corruption per known mutation class into freshly built
/// structures and reports whether the auditor flags it with the expected
/// violation kind.
fn selftest_results() -> Vec<(&'static str, bool)> {
    use kbgraph::audit::{GraphAudit, GraphViolation};
    use kbgraph::{Csr, GraphBuilder, KbGraph};
    use searchlite::audit::{IndexAudit, IndexViolation};
    use searchlite::{Analyzer, Index, IndexBuilder};

    // A small hand-built graph with every structure populated: mutual
    // article links, memberships, and a one-edge category DAG.
    fn fresh_graph() -> KbGraph {
        let mut b = GraphBuilder::new();
        let a0 = b.add_article("A0");
        let a1 = b.add_article("A1");
        let a2 = b.add_article("A2");
        let a3 = b.add_article("A3");
        let c0 = b.add_category("C0");
        let c1 = b.add_category("C1");
        b.add_mutual_link(a0, a1);
        b.add_mutual_link(a0, a2);
        b.add_article_link(a2, a3);
        b.add_membership(a0, c0);
        b.add_membership(a1, c1);
        b.add_subcategory(c1, c0);
        b.build()
    }

    /// Reassembles `g` with one CSR slot replaced.
    /// Slots: 0 article_links, 1 article_links_rev, 4 subcats, 5 subcats_rev.
    fn with_part(g: &KbGraph, slot: usize, part: Csr) -> KbGraph {
        let titles_a: Vec<String> = g.articles().map(|a| g.article_title(a).to_string()).collect();
        let titles_c: Vec<String> = g
            .categories()
            .map(|c| g.category_title(c).to_string())
            .collect();
        let mut parts = [
            g.article_links().clone(),
            g.article_links_rev().clone(),
            g.memberships().clone(),
            g.members().clone(),
            g.subcategories().clone(),
            g.subcats_rev().clone(),
        ];
        parts[slot] = part;
        let [al, alr, mem, mbr, sc, scr] = parts;
        // Deliberately unaudited: this helper manufactures *corrupt*
        // graphs so the selftest can prove the auditor flags them; every
        // caller runs GraphAudit on the result.
        // lint:allow(must-audit-after-mutation)
        KbGraph::from_parts(titles_a, titles_c, al, alr, mem, mbr, sc, scr)
    }

    fn graph_case(
        slot: usize,
        mutate: impl Fn(&mut Vec<u32>, &mut Vec<u32>),
        expect: impl Fn(&GraphViolation) -> bool,
    ) -> bool {
        let g = fresh_graph();
        let src = match slot {
            0 => g.article_links(),
            1 => g.article_links_rev(),
            4 => g.subcategories(),
            _ => g.subcats_rev(),
        };
        let mut offsets = src.offsets().to_vec();
        let mut targets = src.targets().to_vec();
        mutate(&mut offsets, &mut targets);
        let bad = with_part(&g, slot, Csr::from_raw_parts(offsets, targets));
        GraphAudit::run(&bad).violations().iter().any(expect)
    }

    fn fresh_index() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d0", "alpha beta alpha").expect("unique id");
        b.add_document("d1", "beta gamma").expect("unique id");
        b.build()
    }

    let mut results = Vec::new();

    results.push((
        "graph:swapped-offsets",
        graph_case(
            0,
            |offsets, _| offsets.swap(1, 2),
            |v| {
                matches!(
                    v,
                    GraphViolation::OffsetsNotMonotonic { .. } | GraphViolation::OffsetsShape { .. }
                )
            },
        ),
    ));
    results.push((
        "graph:oob-target",
        graph_case(
            0,
            |_, targets| targets[0] = 99,
            |v| matches!(v, GraphViolation::TargetOutOfBounds { .. }),
        ),
    ));
    results.push((
        "graph:unsorted-row",
        graph_case(
            0,
            |_, targets| targets.swap(0, 1), // row 0 holds [a1, a2]
            |v| matches!(v, GraphViolation::RowNotStrictlySorted { .. }),
        ),
    ));
    results.push(("graph:dropped-reciprocal", {
        let g = fresh_graph();
        let rows = g.num_articles();
        let empty = Csr::from_raw_parts(vec![0; rows + 1], Vec::new());
        let bad = with_part(&g, 1, empty);
        GraphAudit::run(&bad)
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::MissingReciprocal { .. }))
    }));
    results.push(("graph:category-cycle", {
        let g = fresh_graph();
        // Two categories referencing each other: c0 → c1 and c1 → c0.
        let cycle = Csr::from_raw_parts(vec![0, 1, 2], vec![1, 0]);
        let bad = with_part(&with_part(&g, 4, cycle.clone()), 5, cycle);
        GraphAudit::run(&bad)
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::CategoryCycle { .. }))
    }));

    fn index_case(
        mutate: impl Fn(searchlite::index::IndexRawMut<'_>),
        expect: impl Fn(&IndexViolation) -> bool,
    ) -> bool {
        let mut idx = fresh_index();
        mutate(idx.raw_mut());
        IndexAudit::run(&idx).violations().iter().any(expect)
    }

    results.push((
        "index:unsorted-postings",
        index_case(
            |raw| {
                for p in raw.postings.iter_mut() {
                    let pr = p.raw_mut();
                    if pr.docs.len() >= 2 {
                        pr.docs.swap(0, 1);
                        break;
                    }
                }
            },
            |v| matches!(v, IndexViolation::PostingsNotSorted { .. }),
        ),
    ));
    results.push((
        "index:wrong-doc-len",
        index_case(
            |raw| raw.doc_lens[0] += 5,
            |v| matches!(v, IndexViolation::DocLenMismatch { .. }),
        ),
    ));
    results.push((
        "index:wrong-collection-len",
        index_case(
            |raw| *raw.collection_len += 7,
            |v| matches!(v, IndexViolation::CollectionLenMismatch { .. }),
        ),
    ));
    results.push((
        "index:duplicate-external-id",
        index_case(
            |raw| raw.external_ids[1] = raw.external_ids[0].clone(),
            |v| matches!(v, IndexViolation::DuplicateExternalId { .. }),
        ),
    ));

    results
}
