/root/repo/target/debug/deps/rand-a3d170ad1329aae7.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a3d170ad1329aae7.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a3d170ad1329aae7.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
