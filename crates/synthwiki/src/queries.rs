//! Benchmark query generation.
//!
//! Each query targets one or two entities of a single topic. The query
//! *text* deliberately exhibits the paper's two failure modes:
//!
//! * **vocabulary mismatch** — the target entity is referred to by an
//!   ambiguous alias (or a bare title fragment), not its full title;
//! * **topic inexperience** — the remaining keywords are general topic /
//!   domain words shared with many non-relevant documents.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::concepts::ConceptSpace;
use crate::config::QuerySetConfig;

/// One benchmark query with its generator-side ground truth.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QuerySpec {
    /// Stable query id, e.g. `"imageclef-q07"`.
    pub id: String,
    /// The user's keyword query (what `QL_Q` retrieves with).
    pub text: String,
    /// The (global) topic the query is about.
    pub topic: usize,
    /// Ground-truth target entities — what *manual* entity selection
    /// yields (`SQE_C (M)` / `QL_E (M)` use these).
    pub targets: Vec<usize>,
    /// The relevance neighbourhood: documents about these entities are
    /// relevant. Derived from [`ConceptSpace::relevance_neighborhood`].
    pub relevant_entities: Vec<usize>,
    /// True when the collection intentionally contains no documents about
    /// this query's topic (CHiC 2012 has 14 such queries).
    pub zero_relevant: bool,
    /// The query's *aspect* words: the general keywords carrying the
    /// user's intent. Documents about a neighbourhood entity are far more
    /// likely to be judged relevant when they also depict the aspect —
    /// this is why the paper keeps the user's query inside the expanded
    /// query ("it helps to diminish errors") and why expansion features
    /// alone (QL_X) lose precision.
    pub aspect_words: Vec<String>,
}

/// Generates a query set over the given *disjoint* topic allocation.
/// `topics` must contain at least `cfg.num_queries` entries; the first
/// `cfg.zero_relevant_queries` queries are marked `zero_relevant`.
pub fn generate_queries(
    space: &ConceptSpace,
    cfg: &QuerySetConfig,
    topics: &[usize],
) -> Vec<QuerySpec> {
    assert!(
        topics.len() >= cfg.num_queries,
        "need {} topics, got {}",
        cfg.num_queries,
        topics.len()
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut queries = Vec::with_capacity(cfg.num_queries);
    for (qi, &topic) in topics.iter().enumerate().take(cfg.num_queries) {
        let t = &space.topics[topic];
        // Targets: one or two entities of the same subtopic.
        let sub = rng.gen_range(t.subtopic_range.clone());
        let sub_entities = &space.subtopics[sub].entities;
        let first = sub_entities[rng.gen_range(0..sub_entities.len())];
        let mut targets = vec![first];
        if cfg.p_two_targets > 0.0 && rng.gen_bool(cfg.p_two_targets) && sub_entities.len() > 1 {
            loop {
                let second = sub_entities[rng.gen_range(0..sub_entities.len())];
                if second != first {
                    targets.push(second);
                    break;
                }
            }
        }
        // Query text: surface form of each target + general words.
        let mut words: Vec<String> = Vec::new();
        for &target in &targets {
            let e = &space.entities[target];
            match &e.alias {
                Some(alias) => words.push(alias.clone()),
                None => words.push(e.title_words[0].clone()),
            }
        }
        // "Topic inexperience": the general keywords come from the whole
        // domain pool, which only sometimes coincides with the topic's own
        // vocabulary — too-general keywords that also hit sibling topics.
        // They double as the query's aspect words.
        let d = &space.domains[t.domain];
        let mut aspect_words = vec![d.pool[rng.gen_range(0..d.pool.len())].clone()];
        if rng.gen_bool(0.5) {
            aspect_words.push(d.words[rng.gen_range(0..d.words.len())].clone());
        }
        words.extend(aspect_words.iter().cloned());
        let relevant_entities = space.relevance_neighborhood(&targets);
        queries.push(QuerySpec {
            id: format!("{}-q{:02}", cfg.name, qi),
            text: words.join(" "),
            topic,
            targets,
            relevant_entities,
            zero_relevant: qi < cfg.zero_relevant_queries,
            aspect_words,
        });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;

    fn setup() -> (ConceptSpace, Vec<QuerySpec>) {
        let cfg = TestBedConfig::small();
        let space = ConceptSpace::generate(&cfg.kb);
        let topics: Vec<usize> = (0..space.num_topics()).collect();
        let queries = generate_queries(&space, &cfg.chic2012_queries, &topics);
        (space, queries)
    }

    #[test]
    fn query_count_and_ids() {
        let (_, queries) = setup();
        assert_eq!(queries.len(), 12);
        assert_eq!(queries[0].id, "chic2012-q00");
        let ids: std::collections::HashSet<&String> = queries.iter().map(|q| &q.id).collect();
        assert_eq!(ids.len(), queries.len());
    }

    #[test]
    fn zero_relevant_flags_first_queries() {
        let (_, queries) = setup();
        let flagged = queries.iter().filter(|q| q.zero_relevant).count();
        assert_eq!(flagged, 3);
        assert!(queries[0].zero_relevant);
        assert!(!queries[11].zero_relevant);
    }

    #[test]
    fn targets_share_a_subtopic() {
        let (space, queries) = setup();
        for q in &queries {
            let st = space.entities[q.targets[0]].subtopic;
            for &t in &q.targets {
                assert_eq!(space.entities[t].subtopic, st);
                assert_eq!(space.entities[t].topic, q.topic);
            }
        }
    }

    #[test]
    fn query_text_avoids_full_titles() {
        // Vocabulary mismatch: the full multi-word title never appears
        // verbatim in the query text.
        let (space, queries) = setup();
        for q in &queries {
            for &t in &q.targets {
                let title = space.entities[t].title();
                if space.entities[t].title_words.len() > 1 {
                    assert!(
                        !q.text.contains(&title),
                        "query '{}' leaks full title '{title}'",
                        q.text
                    );
                }
            }
        }
    }

    #[test]
    fn relevant_entities_include_targets() {
        let (_, queries) = setup();
        for q in &queries {
            for t in &q.targets {
                assert!(q.relevant_entities.contains(t));
            }
            assert!(q.relevant_entities.len() > q.targets.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, q1) = setup();
        let (_, q2) = setup();
        for (a, b) in q1.iter().zip(q2.iter()) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.targets, b.targets);
        }
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_few_topics_panics() {
        let cfg = TestBedConfig::small();
        let space = ConceptSpace::generate(&cfg.kb);
        let _ = generate_queries(&space, &cfg.chic2012_queries, &[0, 1]);
    }
}
