// Fixture: the same seal/merge lifecycle, each auditing what it built
// in the same function.

pub fn seal(&mut self) -> Segment {
    let builder = std::mem::take(&mut self.buffer);
    let index = builder.build();
    debug_assert!(IndexAudit::run(&index).is_clean());
    Segment::new(self.next_id, index)
}

pub fn merge(&mut self, parts: &[Segment]) -> Segment {
    let mut b = IndexBuilder::new(self.analyzer.clone());
    for part in parts {
        b.absorb(part);
    }
    let index = b.build();
    let report = IndexAudit::run(&index);
    assert!(report.is_clean());
    Segment::new(self.next_id, index)
}
