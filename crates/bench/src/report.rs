//! Row evaluation and table formatting.

use ireval::precision::{per_query_precision, PrecisionTable, TREC_CUTOFFS};
use ireval::{paired_t_test, Qrels, Run};

/// An evaluated run: mean precisions plus per-cutoff significance against
/// the best baseline (the paper's † marker, paired t-test p < 0.05).
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Run display name.
    pub name: String,
    /// Mean P@k at every default cutoff.
    pub values: [f64; TREC_CUTOFFS.len()],
    /// † per cutoff (meaningless for baseline rows; all false there).
    pub sig: [bool; TREC_CUTOFFS.len()],
}

impl EvalRow {
    /// Value at a default cutoff.
    pub fn at(&self, k: usize) -> f64 {
        let i = TREC_CUTOFFS.iter().position(|&c| c == k).expect("cutoff");
        self.values[i]
    }

    /// Significance marker at a default cutoff.
    pub fn sig_at(&self, k: usize) -> bool {
        let i = TREC_CUTOFFS.iter().position(|&c| c == k).expect("cutoff");
        self.sig[i]
    }
}

/// Evaluates a run; `baselines` drive the † test: at each cutoff the run
/// is compared against the *best* baseline (highest mean) at that cutoff.
pub fn eval_row(run: &Run, qrels: &Qrels, baselines: &[&Run]) -> EvalRow {
    let table = PrecisionTable::evaluate(run, qrels);
    let mut sig = [false; TREC_CUTOFFS.len()];
    for (i, &k) in TREC_CUTOFFS.iter().enumerate() {
        let treatment = per_query_precision(run, qrels, k);
        let mut best: Option<Vec<f64>> = None;
        let mut best_mean = f64::NEG_INFINITY;
        for b in baselines {
            let scores = per_query_precision(b, qrels, k);
            let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
            if mean > best_mean {
                best_mean = mean;
                best = Some(scores);
            }
        }
        if let Some(base) = best {
            if let Some(t) = paired_t_test(&treatment, &base) {
                sig[i] = t.significant_improvement(0.05);
            }
        }
    }
    EvalRow {
        name: run.name().to_owned(),
        values: table.values,
        sig,
    }
}

/// Formats rows as a paper-style precision table.
pub fn format_precision_table(title: &str, rows: &[EvalRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("=== {title} ===\n"));
    s.push_str(&format!("{:<14}", ""));
    for k in TREC_CUTOFFS {
        s.push_str(&format!("{:>9}", format!("P@{k}")));
    }
    s.push('\n');
    for row in rows {
        s.push_str(&format!("{:<14}", row.name));
        for i in 0..TREC_CUTOFFS.len() {
            let marker = if row.sig[i] { "†" } else { " " };
            s.push_str(&format!("{:>8.3}{marker}", row.values[i]));
        }
        s.push('\n');
    }
    s
}

/// Percentage improvement of `value` over `reference` (the paper's "%G").
pub fn pct_gain(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (value - reference) / reference * 100.0
    }
}

/// Formats a percentage for display (the paper prints "-100" for full
/// collapse).
pub fn fmt_pct(p: f64) -> String {
    if p.is_infinite() {
        "+inf".to_owned()
    } else {
        format!("{p:+.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Qrels, Run, Run) {
        let mut qrels = Qrels::new();
        let mut good = Run::new("good");
        let mut bad = Run::new("bad");
        for qi in 0..12 {
            let qid = format!("q{qi}");
            qrels.add_judgment(&qid, "rel0");
            qrels.add_judgment(&qid, "rel1");
            good.set_ranking(&qid, vec!["rel0".into(), "rel1".into(), "x".into()]);
            bad.set_ranking(&qid, vec!["x".into(), "y".into(), "rel0".into()]);
        }
        (qrels, good, bad)
    }

    #[test]
    fn eval_row_marks_significance() {
        let (qrels, good, bad) = world();
        let row = eval_row(&good, &qrels, &[&bad]);
        assert!(row.sig_at(5), "consistent improvement must be significant");
        assert!(row.at(5) > 0.0);
    }

    #[test]
    fn baseline_not_significant_against_itself() {
        let (qrels, good, _) = world();
        let row = eval_row(&good, &qrels, &[&good]);
        assert!(!row.sig_at(5));
    }

    #[test]
    fn formatting_contains_all_rows_and_cutoffs() {
        let (qrels, good, bad) = world();
        let rows = vec![eval_row(&bad, &qrels, &[]), eval_row(&good, &qrels, &[&bad])];
        let s = format_precision_table("Table X", &rows);
        assert!(s.contains("Table X"));
        assert!(s.contains("P@1000"));
        assert!(s.contains("good"));
        assert!(s.contains('†'));
    }

    #[test]
    fn pct_gain_behaviour() {
        assert!((pct_gain(0.2, 0.1) - 100.0).abs() < 1e-9);
        assert!((pct_gain(0.0, 0.1) + 100.0).abs() < 1e-9);
        assert_eq!(pct_gain(0.0, 0.0), 0.0);
        assert!(pct_gain(0.1, 0.0).is_infinite());
        assert_eq!(fmt_pct(50.0), "+50.00");
        assert_eq!(fmt_pct(f64::INFINITY), "+inf");
    }
}
