//! Relevance judgments (qrels).

use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Binary relevance judgments: for each query id, the set of relevant
/// document ids. Queries with zero relevant documents may still be
/// registered (CHiC 2012 has 14 of them), which matters for averaging —
/// trec_eval averages over *all* queries in the run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Qrels {
    judgments: FxHashMap<String, FxHashSet<String>>,
}

impl Qrels {
    /// Creates empty judgments.
    pub fn new() -> Self {
        Qrels::default()
    }

    /// Registers a query with no judgments yet (keeps zero-relevant
    /// queries visible to the evaluator).
    pub fn add_query(&mut self, query: &str) {
        self.judgments.entry(query.to_owned()).or_default();
    }

    /// Marks `doc` relevant for `query`.
    pub fn add_judgment(&mut self, query: &str, doc: &str) {
        self.judgments
            .entry(query.to_owned())
            .or_default()
            .insert(doc.to_owned());
    }

    /// The relevant set of a query (empty set if unknown).
    pub fn relevant(&self, query: &str) -> &FxHashSet<String> {
        static EMPTY: std::sync::OnceLock<FxHashSet<String>> = std::sync::OnceLock::new();
        self.judgments
            .get(query)
            .unwrap_or_else(|| EMPTY.get_or_init(FxHashSet::default))
    }

    /// Number of relevant documents for a query.
    pub fn num_relevant(&self, query: &str) -> usize {
        self.judgments.get(query).map_or(0, |s| s.len())
    }

    /// True if `doc` is relevant for `query`.
    pub fn is_relevant(&self, query: &str, doc: &str) -> bool {
        self.judgments.get(query).is_some_and(|s| s.contains(doc))
    }

    /// All registered query ids, sorted for determinism.
    pub fn queries(&self) -> Vec<&str> {
        let mut q: Vec<&str> = self.judgments.keys().map(|s| s.as_str()).collect();
        q.sort_unstable();
        q
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.judgments.len()
    }

    /// Mean number of relevant documents per registered query (the paper
    /// reports 68.8 / 31.32 / 50.6 for its three datasets).
    pub fn avg_relevant_per_query(&self) -> f64 {
        if self.judgments.is_empty() {
            return 0.0;
        }
        let total: usize = self.judgments.values().map(|s| s.len()).sum();
        total as f64 / self.judgments.len() as f64
    }

    /// Number of queries with no relevant documents at all.
    pub fn num_zero_relevant_queries(&self) -> usize {
        self.judgments.values().filter(|s| s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_judgments() {
        let mut q = Qrels::new();
        q.add_judgment("q1", "d1");
        q.add_judgment("q1", "d2");
        q.add_judgment("q2", "d1");
        assert_eq!(q.num_relevant("q1"), 2);
        assert!(q.is_relevant("q1", "d1"));
        assert!(!q.is_relevant("q2", "d2"));
        assert_eq!(q.num_queries(), 2);
    }

    #[test]
    fn unknown_query_is_empty() {
        let q = Qrels::new();
        assert_eq!(q.num_relevant("nope"), 0);
        assert!(q.relevant("nope").is_empty());
    }

    #[test]
    fn zero_relevant_queries_are_counted() {
        let mut q = Qrels::new();
        q.add_query("empty1");
        q.add_query("empty2");
        q.add_judgment("full", "d1");
        assert_eq!(q.num_queries(), 3);
        assert_eq!(q.num_zero_relevant_queries(), 2);
        assert!((q.avg_relevant_per_query() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_judgments_collapse() {
        let mut q = Qrels::new();
        q.add_judgment("q", "d");
        q.add_judgment("q", "d");
        assert_eq!(q.num_relevant("q"), 1);
    }

    #[test]
    fn queries_sorted() {
        let mut q = Qrels::new();
        q.add_query("b");
        q.add_query("a");
        assert_eq!(q.queries(), vec!["a", "b"]);
    }
}
