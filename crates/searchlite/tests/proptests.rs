//! Property-based tests for the retrieval substrate.

use proptest::prelude::*;
use searchlite::prf::{self, PrfParams};
use searchlite::ql::{self, QlParams};
use searchlite::topk::TopK;
use searchlite::{analysis, Analyzer, DocId, IndexBuilder, Query, Searcher, SegmentedIndex};

/// A small random corpus: words drawn from a tiny alphabet so term
/// collisions and phrase repetitions actually happen.
fn corpus() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "omega", "cable", "car", "wall",
    ]);
    prop::collection::vec(prop::collection::vec(word, 1..12), 1..12)
        .prop_map(|docs| docs.into_iter().map(|d| d.into_iter().map(str::to_owned).collect()).collect())
}

fn build_index(docs: &[Vec<String>]) -> searchlite::Index {
    let mut b = IndexBuilder::new(Analyzer::plain());
    for (i, d) in docs.iter().enumerate() {
        b.add_document(&format!("d{i}"), &d.join(" "))
            .expect("generated ids are unique");
    }
    b.build()
}

/// The same corpus partitioned into one sealed segment per `true` run
/// boundary in `cuts` (always at least one segment).
fn build_segmented(docs: &[Vec<String>], cuts: &[bool]) -> Searcher {
    let mut s = SegmentedIndex::new(Analyzer::plain());
    for (i, d) in docs.iter().enumerate() {
        s.add_document(&format!("d{i}"), &d.join(" "))
            .expect("generated ids are unique");
        if cuts.get(i).copied().unwrap_or(false) {
            s.seal().expect("non-empty buffer seals");
        }
    }
    s.seal();
    s.searcher()
}

proptest! {
    /// Collection statistics are consistent: Σ doc_len = collection_len,
    /// Σ collection_tf = collection_len, forward and inverted tf agree.
    #[test]
    fn index_statistics_consistent(docs in corpus()) {
        let idx = build_index(&docs);
        let total_len: u64 = (0..idx.num_docs()).map(|d| idx.doc_len(DocId(d as u32)) as u64).sum();
        prop_assert_eq!(total_len, idx.collection_len());
        let total_tf: u64 = (0..idx.num_terms())
            .map(|t| idx.collection_tf(searchlite::TermId(t as u32)))
            .sum();
        prop_assert_eq!(total_tf, idx.collection_len());
        for d in 0..idx.num_docs() as u32 {
            let mut fwd_sum = 0u32;
            for (t, tf) in idx.doc_terms(DocId(d)) {
                prop_assert_eq!(idx.tf(t, DocId(d)), tf);
                fwd_sum += tf;
            }
            prop_assert_eq!(fwd_sum, idx.doc_len(DocId(d)));
        }
    }

    /// Phrase tf never exceeds the minimum member-term tf, and a
    /// single-term "phrase" equals the term tf.
    #[test]
    fn phrase_tf_bounds(docs in corpus()) {
        let idx = build_index(&docs);
        let terms: Vec<_> = (0..idx.num_terms().min(3)).map(|t| searchlite::TermId(t as u32)).collect();
        if terms.len() >= 2 {
            for d in 0..idx.num_docs() as u32 {
                let p = idx.phrase_tf(&terms[..2], DocId(d));
                let min = idx.tf(terms[0], DocId(d)).min(idx.tf(terms[1], DocId(d)));
                prop_assert!(p <= min, "phrase tf {p} > min member tf {min}");
            }
        }
        if let Some(&t) = terms.first() {
            for d in 0..idx.num_docs() as u32 {
                prop_assert_eq!(idx.phrase_tf(&[t], DocId(d)), idx.tf(t, DocId(d)));
            }
        }
    }

    /// Ranking returns scores in non-increasing order, unique docs, and
    /// never more than k.
    #[test]
    fn ranking_sorted_unique_bounded(docs in corpus(), k in 1usize..20) {
        let idx = Searcher::from_index(build_index(&docs));
        let q = Query::parse_text("alpha cable wall", &Analyzer::plain());
        let hits = ql::rank(&idx, &q, QlParams { mu: 10.0 }, k);
        prop_assert!(hits.len() <= k);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        let mut ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
    }

    /// Scaling all query weights by a positive constant leaves scores
    /// unchanged (the scorer normalizes).
    #[test]
    fn score_scale_invariant(docs in corpus(), scale in 0.1f64..50.0) {
        let idx = Searcher::from_index(build_index(&docs));
        let mut q1 = Query::new();
        q1.push_term("alpha".into(), 1.0);
        q1.push_term("cable".into(), 2.0);
        let mut q2 = Query::new();
        q2.push_term("alpha".into(), scale);
        q2.push_term("cable".into(), 2.0 * scale);
        for d in 0..idx.num_docs() as u32 {
            let s1 = ql::score_document(&idx, &q1, DocId(d), QlParams { mu: 10.0 });
            let s2 = ql::score_document(&idx, &q2, DocId(d), QlParams { mu: 10.0 });
            prop_assert!((s1 - s2).abs() < 1e-9);
        }
    }

    /// The relevance model is a (sub-)distribution: weights positive,
    /// summing to ≤ 1 + ε (exactly 1 when untruncated).
    #[test]
    fn relevance_model_subdistribution(docs in corpus()) {
        let idx = Searcher::from_index(build_index(&docs));
        let q = Query::parse_text("alpha beta", &Analyzer::plain());
        let params = PrfParams {
            fb_docs: 5,
            fb_terms: 100,
            orig_weight: 0.0,
            exclude_base_terms: false,
            ql: QlParams { mu: 10.0 },
        };
        let model = prf::relevance_model(&idx, &q, params);
        let total: f64 = model.iter().map(|&(_, p)| p).sum();
        prop_assert!(total <= 1.0 + 1e-9, "total {total}");
        prop_assert!(model.iter().all(|&(_, p)| p > 0.0));
    }

    /// Any partition of a corpus into sealed segments ranks bit-identically
    /// to the monolithic index, for term, phrase and window queries alike.
    #[test]
    fn segmented_ranking_equals_monolithic(
        docs in corpus(),
        cuts in prop::collection::vec(prop::sample::select(vec![true, false]), 0..12),
    ) {
        let mono = Searcher::from_index(build_index(&docs));
        let seg = build_segmented(&docs, &cuts);
        prop_assert_eq!(seg.num_docs(), mono.num_docs());
        let params = QlParams { mu: 10.0 };
        for text in ["alpha", "cable car", "alpha beta gamma", "wall omega"] {
            let q = Query::parse_text(text, &Analyzer::plain());
            prop_assert_eq!(
                ql::rank(&mono, &q, params, 10),
                ql::rank(&seg, &q, params, 10),
                "query {:?} with cuts {:?}", text, &cuts
            );
        }
        let mut pq = Query::new();
        pq.push_phrase_tokens(vec!["cable".into(), "car".into()], 1.0);
        prop_assert_eq!(ql::rank(&mono, &pq, params, 10), ql::rank(&seg, &pq, params, 10));
        let mut uq = Query::new();
        uq.push_unordered_text("alpha wall", &Analyzer::plain(), 6, 1.0);
        prop_assert_eq!(ql::rank(&mono, &uq, params, 10), ql::rank(&seg, &uq, params, 10));
    }

    /// TopK returns exactly the k best entries of a full sort.
    #[test]
    fn topk_matches_full_sort(scores in prop::collection::vec(-100.0f64..100.0, 0..60), k in 0usize..20) {
        let mut topk = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            topk.push(i as u32, s);
        }
        let got = topk.into_sorted();
        let mut full: Vec<(u32, f64)> = scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        full.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.1, b.1, a.0, b.0));
        full.truncate(k);
        prop_assert_eq!(got, full);
    }

    /// Porter stemming never grows a word and keeps ASCII-ness.
    #[test]
    fn stemmer_shrinks(word in "[a-z]{1,15}") {
        let stem = analysis::porter_stem(&word);
        prop_assert!(stem.len() <= word.len() + 1, "{word} → {stem}");
        prop_assert!(stem.is_ascii());
        prop_assert!(!stem.is_empty());
    }

    /// The analyzer is deterministic and produces no empty tokens.
    #[test]
    fn analyzer_clean_tokens(text in ".{0,80}") {
        let a = Analyzer::english();
        let t1 = a.analyze(&text);
        let t2 = a.analyze(&text);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(t1.iter().all(|t| !t.is_empty()));
    }
}
