//! The [`Motif`] trait: structural expansion anchored at a query node.
//!
//! The paper's two concrete motifs are:
//!
//! * **Triangular** (length-3 cycle, Figure 3a): the query node and the
//!   expansion node are *doubly linked* (each hyperlinks the other) and
//!   the expansion node belongs to **at least the same categories** as the
//!   query node. Every category shared this way closes one triangle, so
//!   the motif count of an expansion node is the number of such triangles.
//!
//! * **Square** (length-4 cycle, Figure 3b): the pair is doubly linked and
//!   **some category of one is inside some category of the other** (a
//!   direct sub-category edge, in either direction). Every such category
//!   pair closes one square.
//!
//! Both are now points of the generalized spec space — see
//! [`crate::spec::MotifSpec::triangular`] and
//! [`crate::spec::MotifSpec::square`], which compile to the exact
//! traversals the original hand-written implementations performed. The
//! paper deliberately avoids length-5 cycles for performance; the spec
//! space includes them ([`crate::spec::CategoryScope::Cousin`]) so that
//! choice is an experiment rather than a code change.

use kbgraph::{ArticleId, KbGraph};

/// Identifies a motif implementation (for configs and display).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifKind {
    /// The length-3 cycle motif.
    Triangular,
    /// The length-4 cycle motif.
    Square,
}

impl MotifKind {
    /// Short display name as used in the paper's tables (T / S).
    pub fn short_name(self) -> &'static str {
        match self {
            MotifKind::Triangular => "T",
            MotifKind::Square => "S",
        }
    }
}

/// A structural expansion motif: maps a query node to expansion articles,
/// each with the number of motif instances it closes.
pub trait Motif: Send + Sync {
    /// Which motif this is.
    fn kind(&self) -> MotifKind;

    /// Appends `(expansion article, instance count)` pairs for
    /// `query_node` to `out` (which is *not* cleared — callers batch
    /// several traversals into one buffer). Counts are ≥ 1; articles
    /// absent from the result close no instance of this motif with the
    /// query node.
    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    );

    /// Enumerates `(expansion article, instance count)` pairs for
    /// `query_node` into a fresh vector (convenience over
    /// [`Motif::expansions_into`]).
    fn expansions(&self, graph: &KbGraph, query_node: ArticleId) -> Vec<(ArticleId, u32)> {
        let mut out = Vec::new();
        self.expansions_into(graph, query_node, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MotifSpec;
    use kbgraph::GraphBuilder;

    #[test]
    fn triangular_expansion_may_have_extra_categories() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c1);
        b.add_membership(x, c2);
        let g = b.build();
        assert_eq!(MotifSpec::triangular().expansions(&g, a), vec![(x, 1)]);
    }

    #[test]
    fn triangular_superset_is_directional() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(a, c2);
        b.add_membership(x, c1); // missing c2 ⇒ not a superset
        let g = b.build();
        assert!(MotifSpec::triangular().expansions(&g, a).is_empty());
        // From x's perspective a IS a superset partner.
        assert_eq!(MotifSpec::triangular().expansions(&g, x), vec![(a, 1)]);
    }

    #[test]
    fn square_requires_category_adjacency() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c2);
        // c1 and c2 unrelated ⇒ no square.
        let g = b.build();
        assert!(MotifSpec::square().expansions(&g, a).is_empty());
    }

    #[test]
    fn square_ignores_shared_identical_category() {
        // A shared category is the *triangular* pattern, not a square:
        // the square needs two distinct, hierarchy-adjacent categories.
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, x);
        b.add_membership(a, c);
        b.add_membership(x, c);
        let g = b.build();
        assert!(MotifSpec::square().expansions(&g, a).is_empty());
        assert_eq!(MotifSpec::triangular().expansions(&g, a), vec![(x, 1)]);
    }

    #[test]
    fn motif_kinds_and_names() {
        assert_eq!(MotifSpec::triangular().kind().short_name(), "T");
        assert_eq!(MotifSpec::square().kind().short_name(), "S");
    }

    #[test]
    fn expansions_into_appends_without_clearing() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, x);
        b.add_membership(a, c);
        b.add_membership(x, c);
        let g = b.build();
        let sentinel = (ArticleId::new(99), 7);
        let mut out = vec![sentinel];
        MotifSpec::triangular().expansions_into(&g, a, &mut out);
        assert_eq!(out, vec![sentinel, (x, 1)]);
    }
}
