//! The typed result of a deadline-aware serve call.

use std::sync::Arc;

use crate::deadline::Stage;

/// Identifies the degraded-mode ladder rung that served a request: its
/// index into the service's ladder (0 = full quality) plus the rung's
/// stable name, shared via `Arc` so outcomes clone cheaply.
///
/// The ladder itself — which motif set each rung expands with — lives in
/// the serving layer; admission only needs an ordered list of costs and a
/// way to name the rung it picked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RungId {
    index: usize,
    name: Arc<str>,
}

impl RungId {
    /// A rung identity from its ladder position and stable name.
    pub fn new(index: usize, name: Arc<str>) -> Self {
        RungId { index, name }
    }

    /// Position in the ladder (0 = highest quality).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The rung's stable lower-case name (used in outcome labels).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Why a request was rejected without doing (or completing) any ranking
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded pending-work queue was full at admission time.
    QueueFull,
    /// The token-bucket rate limiter had no token at admission time.
    RateLimited,
    /// Queue delay stayed above the CoDel target for a full interval;
    /// this request was shed at dequeue to drain the standing queue.
    QueueDelay,
    /// The remaining deadline budget could not fit even the cheapest
    /// ladder rung.
    BudgetExhausted,
}

impl ShedReason {
    /// Stable lower-case name (used in outcome labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueDelay => "queue_delay",
            ShedReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// The result of serving one request under admission control and a
/// deadline. `T` is the payload of a successful serve (typically the
/// ranked hits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome<T> {
    /// Served at full quality (ladder rung 0) within the deadline.
    Ok(T),
    /// Served within the deadline, but at a cheaper ladder rung.
    Degraded(RungId, T),
    /// Rejected before ranking work ran; no payload.
    Shed(ShedReason),
    /// Work started but the deadline expired at the named stage
    /// boundary; any partial payload is discarded.
    DeadlineExceeded(Stage),
}

impl<T> ServeOutcome<T> {
    /// The served payload, if the request completed within its deadline.
    pub fn value(&self) -> Option<&T> {
        match self {
            ServeOutcome::Ok(v) | ServeOutcome::Degraded(_, v) => Some(v),
            _ => None,
        }
    }

    /// Consume the outcome, yielding the payload when one was served.
    pub fn into_value(self) -> Option<T> {
        match self {
            ServeOutcome::Ok(v) | ServeOutcome::Degraded(_, v) => Some(v),
            _ => None,
        }
    }

    /// The ladder rung index that served the request (`0` for `Ok`), or
    /// `None` when nothing was served.
    pub fn rung(&self) -> Option<usize> {
        match self {
            ServeOutcome::Ok(_) => Some(0),
            ServeOutcome::Degraded(rung, _) => Some(rung.index()),
            _ => None,
        }
    }

    /// True when the request was rejected without running.
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeOutcome::Shed(_))
    }

    /// True when the request ran but missed its deadline.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, ServeOutcome::DeadlineExceeded(_))
    }

    /// A compact, stable label for determinism walls and reports:
    /// `ok`, `degraded:triangular`, `shed:queue_full`, `deadline:rank`.
    pub fn label(&self) -> String {
        match self {
            ServeOutcome::Ok(_) => "ok".to_owned(),
            ServeOutcome::Degraded(rung, _) => format!("degraded:{}", rung.name()),
            ServeOutcome::Shed(reason) => format!("shed:{}", reason.name()),
            ServeOutcome::DeadlineExceeded(stage) => format!("deadline:{}", stage.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(index: usize, name: &str) -> RungId {
        RungId::new(index, Arc::from(name))
    }

    #[test]
    fn rung_identity_carries_index_and_name() {
        let r = rung(1, "triangular");
        assert_eq!(r.index(), 1);
        assert_eq!(r.name(), "triangular");
        assert_eq!(r, rung(1, "triangular"));
        assert_ne!(r, rung(2, "triangular"));
    }

    #[test]
    fn accessors_split_served_from_rejected() {
        let ok: ServeOutcome<u32> = ServeOutcome::Ok(7);
        let deg: ServeOutcome<u32> = ServeOutcome::Degraded(rung(2, "unexpanded"), 9);
        let shed: ServeOutcome<u32> = ServeOutcome::Shed(ShedReason::QueueFull);
        let late: ServeOutcome<u32> = ServeOutcome::DeadlineExceeded(Stage::Expand);

        assert_eq!(ok.value(), Some(&7));
        assert_eq!(ok.rung(), Some(0));
        assert_eq!(deg.clone().into_value(), Some(9));
        assert_eq!(deg.rung(), Some(2));
        assert_eq!(shed.value(), None);
        assert!(shed.is_shed() && !shed.is_deadline_exceeded());
        assert!(late.is_deadline_exceeded() && !late.is_shed());
        assert_eq!(late.rung(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServeOutcome::Ok(0u8).label(), "ok");
        assert_eq!(
            ServeOutcome::Degraded(rung(1, "triangular"), 0u8).label(),
            "degraded:triangular"
        );
        let shed: ServeOutcome<u8> = ServeOutcome::Shed(ShedReason::RateLimited);
        assert_eq!(shed.label(), "shed:rate_limited");
        let late: ServeOutcome<u8> = ServeOutcome::DeadlineExceeded(Stage::Queue);
        assert_eq!(late.label(), "deadline:queue");
    }
}
