//! Summary-based interprocedural dataflow.
//!
//! The intraprocedural analyses in [`crate::dataflow`] stop at call
//! boundaries: a guard dropped two calls up the stack, or a `HashMap`
//! iteration order laundered through three helpers into a run file, is
//! invisible to them. This module closes that gap with per-function
//! **effect summaries** computed bottom-up over the call graph:
//!
//! - [`Summaries::build`] walks the strongly connected components of
//!   [`crate::callgraph::CallGraph`] in reverse topological order
//!   (callees first) and runs a fixpoint *inside* each component, so
//!   recursion converges. Each [`FnSummary`] records the locks a
//!   function may acquire, whether it returns a guard (the audited
//!   accessor pattern), whether it may reach expensive/blocking work
//!   (with the call chain), which parameters escape into fields, and
//!   the determinism taint of its return value.
//! - [`protection`] infers a **field → guard protection map**: for each
//!   struct that owns both locks and plain fields, the lock held at a
//!   ≥75% majority of all workspace accesses of a field is its inferred
//!   guard, and the minority accesses without it are lockset-style race
//!   findings. Lock context flows *down* the call graph: the locks held
//!   at every call site of a function are intersected into its entry
//!   context, so `self.bump()` called only under `state` counts as a
//!   guarded access inside `bump`.
//! - [`taint_to_output`] is the interprocedural **determinism taint**
//!   pass. Sources: hash-container iteration (Order taint — a
//!   total-order sort or order-free destination removes it), thread
//!   ids, wall-clock time, and float accumulation over hash order
//!   (Value taint — no sort can remove it). Sinks: run-file writers,
//!   snapshot encoders, and BENCH json emitters. Taint crosses calls
//!   through [`FnSummary::ret_taint`], which carries both the callee's
//!   own sources and the parameter positions it forwards, so multi-hop
//!   laundering is caught.
//!
//! Like everything in this analyzer, the analyses are name-based and
//! heuristic; precision comes from the workspace's own conventions and
//! `lint:allow` is the escape hatch.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, FnDef};
use crate::callgraph::{CallGraph, STD_METHOD_NAMES};
use crate::cfg::{for_each_state, Cfg, Lattice, Stmt};
use crate::dataflow::{
    find_acquires, guard_accessors, held_step, is_hash_ty, HeldSet, HASH_ITER_METHODS,
};
use crate::symbols::WorkspaceModel;

/// Function names that denote expensive or blocking work: segment
/// sealing/merging, snapshot codec, file I/O. Exact names, so e.g. a
/// `begin_seal` that only moves buffers out of the critical section does
/// not inherit `seal`'s weight.
pub const EXPENSIVE_FNS: &[&str] = &[
    "build",
    "merge",
    "seal",
    "force_merge",
    "run_policy",
    "run_full",
    "encode",
    "decode",
    "write_snapshot",
    "read_snapshot",
    "open",
    "create",
    "read_to_string",
    "write_all",
    "sync_all",
    "persist",
    "copy",
    "rename",
    "remove_file",
];

/// True for names denoting expensive/blocking work.
pub fn is_expensive_name(name: &str) -> bool {
    EXPENSIVE_FNS.contains(&name) || name.starts_with("encode_") || name.starts_with("decode_")
}

/// Serialization sinks: run-file writers, snapshot encoders, BENCH json
/// emitters. Nondeterministic values must never reach their arguments.
pub const SINK_FNS: &[&str] = &[
    "write_run",
    "write_qrels",
    "write_report",
    "write_snapshot",
    "write_snapshot_bytes",
    "append_segment",
    "encode_snapshot",
    "encode_snapshot_v1",
];

/// Determinism taint of one value, split by what can remove it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Taint {
    /// Order-nondeterminism sources (hash-container iteration). Killed
    /// by a total-order sort, an order-insensitive terminal, or an
    /// order-free collect destination.
    pub order: BTreeSet<String>,
    /// Value-nondeterminism sources (thread ids, wall-clock time, float
    /// accumulation over hash order). No reordering can remove these.
    pub value: BTreeSet<String>,
    /// Parameter indices of the *enclosing* function whose taint flows
    /// into this value; resolved at call sites via the callee summary.
    pub from_params: BTreeSet<usize>,
}

impl Taint {
    /// True when any concrete source (not just a parameter) taints it.
    pub fn is_tainted(&self) -> bool {
        !self.order.is_empty() || !self.value.is_empty()
    }

    /// All concrete sources, order then value, deterministic.
    pub fn sources(&self) -> Vec<String> {
        self.order.iter().chain(self.value.iter()).cloned().collect()
    }

    fn join(&mut self, other: &Taint) -> bool {
        let before = (self.order.len(), self.value.len(), self.from_params.len());
        self.order.extend(other.order.iter().cloned());
        self.value.extend(other.value.iter().cloned());
        self.from_params.extend(other.from_params.iter().copied());
        before != (self.order.len(), self.value.len(), self.from_params.len())
    }
}

/// Why a function may block, with the workspace call chain to the work.
#[derive(Debug, Clone, PartialEq)]
pub struct Blocking {
    /// The expensive callee name (`seal`, `write_all`, ...).
    pub what: String,
    /// Workspace hops from this function to the work (nearest callee
    /// first, capped at 5); empty when the body calls it directly.
    pub via: Vec<String>,
}

/// One function's interprocedural effect summary.
#[derive(Debug)]
pub struct FnSummary {
    /// Display name (`Type::name` inside an impl).
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Effective test-ness.
    pub is_test: bool,
    /// Locks the body may acquire (directly or via accessors).
    pub acquires: BTreeSet<String>,
    /// Accessor pattern: the single lock whose guard this returns.
    pub returns_guard_of: Option<String>,
    /// May reach expensive/blocking work (transitively).
    pub blocks: Option<Blocking>,
    /// Per parameter: true when a value passed in that position escapes
    /// into a field (directly or through a callee with the same effect).
    pub escaping_params: Vec<bool>,
    /// Determinism taint of the return value.
    pub ret_taint: Taint,
}

/// Workspace-wide summaries, indexed like [`CallGraph::nodes`].
pub struct Summaries {
    /// One summary per call-graph node, same order.
    pub fns: Vec<FnSummary>,
}

/// One call site inside a body: callee name and, per argument, the
/// caller parameter indices passed *directly* in that position.
struct CallSite {
    name: String,
    /// True for `recv.name(..)`; method-call names shadowed by std are
    /// never resolved.
    is_method: bool,
    arg_params: Vec<BTreeSet<usize>>,
}

/// True when `e` passes the binding `name` itself (possibly wrapped in
/// tuple/`Some(..)`/`&`/`?`/cast constructors) — as opposed to a value
/// *derived* from it (`g.len()`, `g.field`).
fn passes_binding_directly(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Path { segs, .. } => segs.len() == 1 && segs[0] == name,
        Expr::Call { args, .. } => args.iter().any(|a| passes_binding_directly(a, name)),
        Expr::Try { expr, .. } | Expr::Cast { expr, .. } => passes_binding_directly(expr, name),
        Expr::Other { children, .. } => {
            children.iter().any(|c| passes_binding_directly(c, name))
        }
        _ => false,
    }
}

/// Collects every call site in a body with direct-pass parameter flow.
fn call_sites(def: &FnDef) -> Vec<CallSite> {
    let mut out = Vec::new();
    let Some(body) = &def.body else { return out };
    let params: Vec<&str> = def.params.iter().map(|(n, _)| n.as_str()).collect();
    let mut record = |name: &str, is_method: bool, args: &[Expr]| {
        let arg_params = args
            .iter()
            .map(|a| {
                params
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| passes_binding_directly(a, p))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        out.push(CallSite {
            name: name.to_string(),
            is_method,
            arg_params,
        });
    };
    for s in &body.stmts {
        s.walk(&mut |e| match e {
            Expr::MethodCall { method, args, .. } => record(method, true, args),
            Expr::Call { callee, args, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        record(last, false, args);
                    }
                }
            }
            _ => {}
        });
    }
    out
}

/// Workspace candidates for a call-site name: non-test nodes, with
/// method-call names shadowed by ubiquitous std methods excluded (same
/// discipline as the call graph).
fn resolve<'a>(
    by_name: &'a BTreeMap<String, Vec<usize>>,
    name: &str,
    is_method: bool,
) -> &'a [usize] {
    if is_method && STD_METHOD_NAMES.contains(&name) {
        return &[];
    }
    by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
}

/// Per-binding determinism-taint environment.
#[derive(Debug, Clone, PartialEq, Default)]
struct TaintEnv {
    vars: BTreeMap<String, Taint>,
}

impl Lattice for TaintEnv {
    fn bottom() -> Self {
        TaintEnv::default()
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, t) in &other.vars {
            match self.vars.get_mut(k) {
                Some(cur) => changed |= cur.join(t),
                None => {
                    self.vars.insert(k.clone(), t.clone());
                    changed = true;
                }
            }
        }
        changed
    }
}

/// Shared context for taint evaluation inside one function.
struct TaintCx<'a> {
    /// The enclosing function's parameters.
    params: &'a [(String, String)],
    /// Bindings (params and lets) known to hold hash containers.
    hash_roots: &'a BTreeSet<String>,
    impl_ty: Option<&'a str>,
    model: &'a WorkspaceModel,
    /// Current summaries (mid-fixpoint values are fine: monotone).
    sums: &'a [FnSummary],
    by_name: &'a BTreeMap<String, Vec<usize>>,
}

/// Terminal methods whose result does not depend on iteration order.
const ORDER_INSENSITIVE: &[&str] = &[
    "count", "len", "min", "max", "any", "all", "contains", "is_empty",
];

/// True when `e` *is* a hash container: a known hash binding or a
/// `self.field` with a hash-container type.
fn base_is_hash(e: &Expr, cx: &TaintCx<'_>) -> bool {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => cx.hash_roots.contains(&segs[0]),
        Expr::Field { recv, name, .. } => {
            matches!(
                recv.as_ref(),
                Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self"
            ) && cx
                .impl_ty
                .and_then(|t| cx.model.field_type(t, name))
                .is_some_and(is_hash_ty)
        }
        _ => false,
    }
}

/// Evaluates the determinism taint of `e` under `env`.
fn eval_taint(e: &Expr, env: &TaintEnv, cx: &TaintCx<'_>) -> Taint {
    let mut t = Taint::default();
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => {
            if let Some(v) = env.vars.get(&segs[0]) {
                t.join(v);
            }
            if let Some(i) = cx.params.iter().position(|(n, _)| *n == segs[0]) {
                t.from_params.insert(i);
            }
        }
        Expr::MethodCall {
            recv,
            method,
            turbofish,
            args,
            ..
        } => {
            // Source: iterating a hash container in arbitrary order.
            if HASH_ITER_METHODS.contains(&method.as_str()) && base_is_hash(recv, cx) {
                t.order
                    .insert(format!("hash-iteration order of `{}`", recv.text()));
                return t;
            }
            // A sort in a chain produces unit / a sorted copy: clean.
            if method.starts_with("sort") {
                return t;
            }
            // Accumulation terminals: integer folds erase order; float
            // folds over hash order convert Order → Value (reassociation
            // changes the result, and no later sort can fix it).
            if method == "sum" || method == "product" || method == "fold" {
                let rt = eval_taint(recv, env, cx);
                for a in args {
                    t.join(&eval_taint(a, env, cx));
                }
                t.value.extend(rt.value.iter().cloned());
                t.from_params.extend(rt.from_params.iter().copied());
                if !rt.order.is_empty() {
                    let floaty = turbofish.contains("f64")
                        || turbofish.contains("f32")
                        || method == "fold";
                    if floaty {
                        t.value
                            .insert("float accumulation in hash-iteration order".to_string());
                    }
                }
                return t;
            }
            if ORDER_INSENSITIVE.contains(&method.as_str()) {
                let rt = eval_taint(recv, env, cx);
                t.value.extend(rt.value.iter().cloned());
                t.from_params.extend(rt.from_params.iter().copied());
                return t;
            }
            // Collecting into an ordered-by-key or unordered container
            // erases iteration order; Vec/String keep it.
            if method == "collect" {
                let rt = eval_taint(recv, env, cx);
                t.join(&rt);
                if turbofish.contains("BTree")
                    || turbofish.contains("HashMap")
                    || turbofish.contains("HashSet")
                {
                    t.order.clear();
                }
                return t;
            }
            // A workspace callee: apply its summary — own sources plus
            // whatever flows through its forwarded parameters. The
            // receiver's taint is deliberately *not* joined: the callee
            // declares what it forwards.
            let cands = resolve(cx.by_name, method, true);
            if !cands.is_empty() {
                for &c in cands {
                    let rt = &cx.sums[c].ret_taint;
                    t.order.extend(rt.order.iter().cloned());
                    t.value.extend(rt.value.iter().cloned());
                    for &p in &rt.from_params {
                        if let Some(a) = args.get(p) {
                            t.join(&eval_taint(a, env, cx));
                        }
                    }
                }
                return t;
            }
            // Unresolved (std/iterator plumbing): propagate everything.
            t.join(&eval_taint(recv, env, cx));
            for a in args {
                t.join(&eval_taint(a, env, cx));
            }
        }
        Expr::Call { callee, args, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let last = segs.last().map(String::as_str).unwrap_or("");
                // Sources: wall-clock time and thread identity.
                if last == "now" && segs.iter().any(|s| s == "SystemTime") {
                    t.value.insert("wall-clock time (SystemTime::now)".to_string());
                    return t;
                }
                if last == "current" && segs.iter().any(|s| s == "thread") {
                    t.value.insert("thread id (thread::current)".to_string());
                    return t;
                }
                let cands = resolve(cx.by_name, last, false);
                if !cands.is_empty() {
                    for &c in cands {
                        let rt = &cx.sums[c].ret_taint;
                        t.order.extend(rt.order.iter().cloned());
                        t.value.extend(rt.value.iter().cloned());
                        for &p in &rt.from_params {
                            if let Some(a) = args.get(p) {
                                t.join(&eval_taint(a, env, cx));
                            }
                        }
                    }
                    return t;
                }
            }
            for a in args {
                t.join(&eval_taint(a, env, cx));
            }
        }
        Expr::Field { recv, .. } => {
            t.join(&eval_taint(recv, env, cx));
        }
        Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
            t.join(&eval_taint(expr, env, cx));
        }
        Expr::Index { recv, index, .. } => {
            t.join(&eval_taint(recv, env, cx));
            t.join(&eval_taint(index, env, cx));
        }
        Expr::Closure { body, .. } => {
            t.join(&eval_taint(body, env, cx));
        }
        Expr::Block(b) => {
            if let Some(last) = b.stmts.last() {
                t.join(&eval_taint(last, env, cx));
            }
        }
        Expr::If { then, else_, .. } => {
            if let Some(last) = then.stmts.last() {
                t.join(&eval_taint(last, env, cx));
            }
            if let Some(e2) = else_ {
                t.join(&eval_taint(e2, env, cx));
            }
        }
        Expr::Match { arms, .. } => {
            for a in arms {
                t.join(&eval_taint(a, env, cx));
            }
        }
        Expr::Macro { inner, .. } => {
            for i in inner {
                t.join(&eval_taint(i, env, cx));
            }
        }
        Expr::Other { children, .. } => {
            for c in children {
                t.join(&eval_taint(c, env, cx));
            }
        }
        // Statements and control flow yield no value worth tracking.
        _ => {}
    }
    t
}

/// Bindings (params and lets) holding hash containers in `def`.
fn hash_roots_of(def: &FnDef) -> BTreeSet<String> {
    let mut roots: BTreeSet<String> = def
        .params
        .iter()
        .filter(|(_, t)| is_hash_ty(t))
        .map(|(n, _)| n.clone())
        .collect();
    if let Some(body) = &def.body {
        for s in &body.stmts {
            s.walk(&mut |e| {
                if let Expr::Let {
                    name: Some(n),
                    ty,
                    init,
                    ..
                } = e
                {
                    let hashy = ty.as_deref().is_some_and(is_hash_ty)
                        || (ty.is_none() && init.as_deref().is_some_and(|i| is_hash_ty(&i.text())));
                    if hashy {
                        roots.insert(n.clone());
                    }
                }
            });
        }
    }
    roots
}

/// The taint transfer function: `let` binds, assignment joins or
/// replaces, a statement-level `sort` launders Order taint out of its
/// receiver, scope end kills.
fn taint_step(stmt: &Stmt<'_>, env: &mut TaintEnv, cx: &TaintCx<'_>) {
    match stmt {
        Stmt::Expr(e) => {
            match e {
                Expr::Let {
                    name: Some(n),
                    init: Some(init),
                    ..
                } => {
                    let t = eval_taint(init, env, cx);
                    env.vars.insert(n.clone(), t);
                }
                Expr::Assign { op, lhs, rhs, .. } => {
                    if let Expr::Path { segs, .. } = lhs.as_ref() {
                        if segs.len() == 1 {
                            let t = eval_taint(rhs, env, cx);
                            if op == "=" {
                                env.vars.insert(segs[0].clone(), t);
                            } else if let Some(cur) = env.vars.get_mut(&segs[0]) {
                                cur.join(&t);
                            } else {
                                env.vars.insert(segs[0].clone(), t);
                            }
                        }
                    }
                }
                Expr::MethodCall { recv, method, .. } if method.starts_with("sort") => {
                    if let Some(root) = recv.root_ident() {
                        if let Some(t) = env.vars.get_mut(root) {
                            t.order.clear();
                        }
                    }
                }
                _ => {}
            }
        }
        Stmt::ScopeEnd(names) => {
            for n in names {
                env.vars.remove(n.as_str());
            }
        }
    }
}

/// The value-producing leaves of a trailing expression. Structured
/// statements (`if`/`match`/blocks) are lowered into header + branch
/// statements by the CFG, so the whole expression never appears as one
/// `Stmt` — the branch *tails* do, and those are where the return value
/// is born.
fn trailing_leaves(e: &Expr, out: &mut BTreeSet<usize>) {
    match e {
        Expr::If { then, else_, .. } => {
            if let Some(last) = then.stmts.last() {
                trailing_leaves(last, out);
            }
            if let Some(e2) = else_ {
                trailing_leaves(e2, out);
            }
        }
        Expr::Block(b) => {
            if let Some(last) = b.stmts.last() {
                trailing_leaves(last, out);
            }
        }
        Expr::Match { arms, .. } => {
            for a in arms {
                trailing_leaves(a, out);
            }
        }
        _ => {
            out.insert(e as *const Expr as usize);
        }
    }
}

/// Return-value taint of one function under the current summaries: the
/// join over every `return v` and the trailing expression's leaves.
fn compute_ret_taint(def: &FnDef, cx: &TaintCx<'_>) -> Taint {
    let Some(cfg) = Cfg::build(def) else {
        return Taint::default();
    };
    let mut leaves: BTreeSet<usize> = BTreeSet::new();
    if let Some(last) = def.body.as_ref().and_then(|b| b.stmts.last()) {
        trailing_leaves(last, &mut leaves);
    }
    let mut ret = Taint::default();
    for_each_state(
        &cfg,
        TaintEnv::default(),
        &mut |stmt, env| taint_step(stmt, env, cx),
        &mut |stmt, env| {
            let Stmt::Expr(e) = stmt else { return };
            if let Expr::Return { value: Some(v), .. } = e {
                ret.join(&eval_taint(v, env, cx));
            } else if leaves.contains(&(*e as *const Expr as usize)) {
                ret.join(&eval_taint(e, env, cx));
            }
        },
    );
    ret
}

impl Summaries {
    /// Builds all summaries bottom-up over the call-graph SCCs, with a
    /// fixpoint inside each component for recursion.
    pub fn build(model: &WorkspaceModel, graph: &CallGraph) -> Summaries {
        let accessors = guard_accessors(model);
        let mut defs: Vec<&FnDef> = Vec::new();
        let mut impl_tys: Vec<Option<&str>> = Vec::new();
        model.for_each_fn(&mut |_file, ty, _is_test, def| {
            defs.push(def);
            impl_tys.push(ty);
        });
        debug_assert_eq!(
            defs.len(),
            graph.nodes.len(),
            "model iteration order must match call-graph nodes"
        );

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            if !n.is_test {
                by_name.entry(n.name.clone()).or_default().push(i);
            }
        }

        // Local facts.
        let mut fns: Vec<FnSummary> = Vec::with_capacity(defs.len());
        for (i, def) in defs.iter().enumerate() {
            let node = &graph.nodes[i];
            let mut acquires: BTreeSet<String> = BTreeSet::new();
            if let Some(body) = &def.body {
                for s in &body.stmts {
                    for (lock, _) in find_acquires(s, &accessors) {
                        acquires.insert(lock);
                    }
                }
            }
            let returns_guard_of = if def.ret.contains("Guard") {
                accessors.get(&def.name).cloned()
            } else {
                None
            };
            // Direct may-block seeds: the function *is* expensive work
            // by name, or its body calls an expensive name (which also
            // catches callees resolving outside the workspace: std fs/io).
            let mut blocks = None;
            if is_expensive_name(&node.name) {
                blocks = Some(Blocking {
                    what: node.name.clone(),
                    via: Vec::new(),
                });
            } else if let Some(body) = &def.body {
                for s in &body.stmts {
                    s.walk(&mut |e| {
                        if blocks.is_some() {
                            return;
                        }
                        let callee = match e {
                            Expr::MethodCall { method, .. } => Some(method.as_str()),
                            Expr::Call { callee, .. } => match callee.as_ref() {
                                Expr::Path { segs, .. } => segs.last().map(String::as_str),
                                _ => None,
                            },
                            _ => None,
                        };
                        if let Some(c) = callee {
                            if is_expensive_name(c) {
                                blocks = Some(Blocking {
                                    what: c.to_string(),
                                    via: Vec::new(),
                                });
                            }
                        }
                    });
                }
            }
            // Direct escaping params: a field store of the parameter
            // value itself.
            let mut escaping_params = vec![false; def.params.len()];
            if let Some(body) = &def.body {
                for s in &body.stmts {
                    s.walk(&mut |e| {
                        if let Expr::Assign { op, lhs, rhs, .. } = e {
                            if op == "=" && matches!(lhs.as_ref(), Expr::Field { .. }) {
                                for (k, (p, _)) in def.params.iter().enumerate() {
                                    if passes_binding_directly(rhs, p) {
                                        escaping_params[k] = true;
                                    }
                                }
                            }
                        }
                    });
                }
            }
            fns.push(FnSummary {
                qual: node.qual.clone(),
                name: node.name.clone(),
                file: node.file.clone(),
                line: node.line,
                is_test: node.is_test,
                acquires,
                returns_guard_of,
                blocks,
                escaping_params,
                ret_taint: Taint::default(),
            });
        }

        // Call sites with direct parameter flow, per function.
        let sites: Vec<Vec<CallSite>> = defs.iter().map(|d| call_sites(d)).collect();

        // Bottom-up over SCCs; fixpoint inside each component. Every
        // derived fact is monotone (sets only grow, `blocks` only flips
        // None → Some), so each inner loop terminates.
        for comp in graph.sccs() {
            let cyclic = comp.len() > 1
                || comp
                    .first()
                    .is_some_and(|&v| graph.callees(v).contains(&v));
            loop {
                let mut changed = false;
                for &v in &comp {
                    // May-block inheritance from callees.
                    if fns[v].blocks.is_none() {
                        let inherited = graph.callees(v).iter().find_map(|&c| {
                            fns[c].blocks.as_ref().map(|b| {
                                let mut via = Vec::with_capacity(b.via.len() + 1);
                                via.push(graph.nodes[c].qual.clone());
                                via.extend(b.via.iter().take(4).cloned());
                                Blocking {
                                    what: b.what.clone(),
                                    via,
                                }
                            })
                        });
                        if inherited.is_some() {
                            fns[v].blocks = inherited;
                            changed = true;
                        }
                    }
                    // Lock-acquisition closure over callees.
                    let mut acq: Vec<String> = Vec::new();
                    for &c in graph.callees(v) {
                        for l in &fns[c].acquires {
                            if !fns[v].acquires.contains(l) {
                                acq.push(l.clone());
                            }
                        }
                    }
                    if !acq.is_empty() {
                        fns[v].acquires.extend(acq);
                        changed = true;
                    }
                    // Transitive escaping params: forwarding a parameter
                    // into an escaping position of a callee.
                    let mut newly: Vec<usize> = Vec::new();
                    for site in &sites[v] {
                        for &c in resolve(&by_name, &site.name, site.is_method) {
                            for (k, ps) in site.arg_params.iter().enumerate() {
                                if fns[c].escaping_params.get(k).copied().unwrap_or(false) {
                                    for &p in ps {
                                        if !fns[v].escaping_params[p] {
                                            newly.push(p);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    for p in newly {
                        fns[v].escaping_params[p] = true;
                        changed = true;
                    }
                    // Return taint under current summaries.
                    let hash_roots = hash_roots_of(defs[v]);
                    let cx = TaintCx {
                        params: &defs[v].params,
                        hash_roots: &hash_roots,
                        impl_ty: impl_tys[v],
                        model,
                        sums: &fns,
                        by_name: &by_name,
                    };
                    let rt = compute_ret_taint(defs[v], &cx);
                    if fns[v].ret_taint != rt {
                        let mut joined = fns[v].ret_taint.clone();
                        joined.join(&rt);
                        fns[v].ret_taint = joined;
                        changed = true;
                    }
                }
                if !changed || !cyclic {
                    break;
                }
            }
        }
        Summaries { fns }
    }
}

/// One nondeterministic value reaching a serialization sink.
#[derive(Debug)]
pub struct TaintFlow {
    /// Function containing the sink call.
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the sink call.
    pub line: u32,
    /// Sink function name.
    pub sink: String,
    /// Concrete taint sources of the offending argument.
    pub sources: Vec<String>,
}

/// The interprocedural determinism-taint pass: flags every sink call
/// with a tainted argument, with taint flowing through summaries.
pub fn taint_to_output(
    model: &WorkspaceModel,
    graph: &CallGraph,
    sums: &Summaries,
) -> Vec<TaintFlow> {
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.is_test {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
    }
    let mut out: Vec<TaintFlow> = Vec::new();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    let mut idx = 0usize;
    model.for_each_fn(&mut |file, ty, is_test, def| {
        let i = idx;
        idx += 1;
        if is_test {
            return;
        }
        let Some(cfg) = Cfg::build(def) else { return };
        let hash_roots = hash_roots_of(def);
        let cx = TaintCx {
            params: &def.params,
            hash_roots: &hash_roots,
            impl_ty: ty,
            model,
            sums: &sums.fns,
            by_name: &by_name,
        };
        let qual = &sums.fns[i].qual;
        for_each_state(
            &cfg,
            TaintEnv::default(),
            &mut |stmt, env| taint_step(stmt, env, &cx),
            &mut |stmt, env| {
                let Stmt::Expr(e) = stmt else { return };
                e.walk(&mut |n| {
                    let (name, args, line) = match n {
                        Expr::MethodCall {
                            method, args, line, ..
                        } => (method.as_str(), args, *line),
                        Expr::Call {
                            callee, args, line, ..
                        } => match callee.as_ref() {
                            Expr::Path { segs, .. } => {
                                let Some(last) = segs.last() else { return };
                                (last.as_str(), args, *line)
                            }
                            _ => return,
                        },
                        _ => return,
                    };
                    if !SINK_FNS.contains(&name) {
                        return;
                    }
                    let mut sources: BTreeSet<String> = BTreeSet::new();
                    for a in args {
                        let t = eval_taint(a, env, &cx);
                        sources.extend(t.sources());
                    }
                    if sources.is_empty() {
                        return;
                    }
                    if seen.insert((file.rel.clone(), line, name.to_string())) {
                        out.push(TaintFlow {
                            qual: qual.clone(),
                            file: file.rel.clone(),
                            line,
                            sink: name.to_string(),
                            sources: sources.into_iter().collect(),
                        });
                    }
                });
            },
        );
    });
    out
}

/// One access of a shared field outside its inferred guard.
#[derive(Debug)]
pub struct RaceFinding {
    /// Owning struct.
    pub struct_name: String,
    /// Field accessed.
    pub field: String,
    /// The inferred guard lock.
    pub guard: String,
    /// Function performing the unguarded access.
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the access.
    pub line: u32,
    /// Accesses holding the guard.
    pub guarded: usize,
    /// All accesses of this field.
    pub total: usize,
}

/// The field → guard protection map with its race findings.
#[derive(Debug)]
pub struct Protection {
    /// `(struct, field)` → inferred guard lock.
    pub guards: BTreeMap<(String, String), String>,
    /// Accesses outside the inferred guard.
    pub races: Vec<RaceFinding>,
}

/// One recorded field access, with the locks held *locally*.
struct Access {
    fn_idx: usize,
    struct_name: String,
    field: String,
    line: u32,
    held: BTreeSet<String>,
}

/// Infers which lock guards each plain field of every lock-owning
/// struct, then flags accesses outside the inferred guard. Lock context
/// is interprocedural: a function's entry context is the intersection,
/// over all its call sites, of the locks held there (so helpers called
/// only under a lock count as guarded).
pub fn protection(model: &WorkspaceModel, graph: &CallGraph) -> Protection {
    let accessors = guard_accessors(model);
    // Structs owning both locks and plain fields; their plain fields
    // are the protection-map candidates.
    // Type text is token-spaced (`Mutex < Vec < u32 > >`), so match on
    // whole type-name tokens; `MutexGuard` must not count as a lock.
    fn is_lock_ty(t: &str) -> bool {
        t.split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "Mutex" || w == "RwLock")
    }
    let mut owners: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut has_lock: BTreeSet<String> = BTreeSet::new();
    for (ty, field, fty) in model.fields() {
        if is_lock_ty(fty) {
            has_lock.insert(ty.to_string());
        } else {
            owners
                .entry(ty.to_string())
                .or_default()
                .insert(field.to_string());
        }
    }
    owners.retain(|ty, _| has_lock.contains(ty));

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.is_test {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
    }

    // One lockset pass per function: record call sites (callee, locks
    // held there) and `self.<plain field>` accesses with local locks.
    let n = graph.nodes.len();
    let mut call_ctx: Vec<Vec<(usize, BTreeSet<String>)>> = vec![Vec::new(); n];
    let mut accesses: Vec<Access> = Vec::new();
    let mut idx = 0usize;
    model.for_each_fn(&mut |_file, ty, is_test, def| {
        let i = idx;
        idx += 1;
        if is_test {
            return;
        }
        let Some(cfg) = Cfg::build(def) else { return };
        let plain = ty.and_then(|t| owners.get(t));
        for_each_state(
            &cfg,
            HeldSet::default(),
            &mut |stmt, held| held_step(stmt, held, &accessors),
            &mut |stmt, held| {
                let Stmt::Expr(e) = stmt else { return };
                // Locks relevant to this statement: held coming in plus
                // its own acquisitions (live for the rest of the stmt).
                let mut locks: BTreeSet<String> =
                    held.guards.values().map(|(l, _)| l.clone()).collect();
                for (l, _) in find_acquires(e, &accessors) {
                    locks.insert(l);
                }
                e.walk(&mut |node| {
                    let callee = match node {
                        Expr::MethodCall { method, .. } => Some((method.as_str(), true)),
                        Expr::Call { callee, .. } => match callee.as_ref() {
                            Expr::Path { segs, .. } => {
                                segs.last().map(|s| (s.as_str(), false))
                            }
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some((name, is_method)) = callee {
                        for &c in resolve(&by_name, name, is_method) {
                            call_ctx[c].push((i, locks.clone()));
                        }
                    }
                    if let (Some(fields), Some(t)) = (plain, ty) {
                        if let Expr::Field { recv, name, .. } = node {
                            let on_self = matches!(
                                recv.as_ref(),
                                Expr::Path { segs, .. }
                                    if segs.len() == 1 && segs[0] == "self"
                            );
                            if on_self && fields.contains(name) {
                                accesses.push(Access {
                                    fn_idx: i,
                                    struct_name: t.to_string(),
                                    field: name.clone(),
                                    line: node.line(),
                                    held: locks.clone(),
                                });
                            }
                        }
                    }
                });
            },
        );
    });

    // Entry-lock contexts: entry(f) = ∩ over call sites of
    // (locks held at the site ∪ entry(caller)). Pessimistic ∅ start;
    // the recomputed intersection only grows round over round (sites
    // are fixed, caller entries only grow), so this converges to the
    // least fixpoint: locks held on *every* static call chain.
    let mut entry: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for _ in 0..100 {
        let mut changed = false;
        for (f, sites) in call_ctx.iter().enumerate() {
            let mut incoming: Option<BTreeSet<String>> = None;
            for (caller, held) in sites {
                let mut ctx = held.clone();
                ctx.extend(entry[*caller].iter().cloned());
                incoming = Some(match incoming {
                    None => ctx,
                    Some(acc) => acc.intersection(&ctx).cloned().collect(),
                });
            }
            let inc = incoming.unwrap_or_default();
            if inc != entry[f] {
                entry[f] = inc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Majority-vote guard inference per (struct, field): the dominant
    // lock over all accesses is the guard when it covers ≥75% of them
    // (and at least two); the rest are race findings.
    let mut by_field: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (ai, a) in accesses.iter().enumerate() {
        by_field
            .entry((a.struct_name.clone(), a.field.clone()))
            .or_default()
            .push(ai);
    }
    let mut guards: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut races: Vec<RaceFinding> = Vec::new();
    for (key, idxs) in &by_field {
        let total = idxs.len();
        let mut votes: BTreeMap<&str, usize> = BTreeMap::new();
        for &ai in idxs {
            let a = &accesses[ai];
            let mut eff: BTreeSet<&str> = a.held.iter().map(String::as_str).collect();
            eff.extend(entry[a.fn_idx].iter().map(String::as_str));
            for l in eff {
                *votes.entry(l).or_default() += 1;
            }
        }
        let mut best: Option<(&str, usize)> = None;
        for (&l, &c) in &votes {
            let better = match best {
                None => true,
                Some((bl, bc)) => c > bc || (c == bc && l < bl),
            };
            if better {
                best = Some((l, c));
            }
        }
        let Some((lock, count)) = best else { continue };
        if count < 2 || 4 * count < 3 * total {
            continue;
        }
        guards.insert(key.clone(), lock.to_string());
        for &ai in idxs {
            let a = &accesses[ai];
            let covered =
                a.held.contains(lock) || entry[a.fn_idx].contains(lock);
            if !covered {
                races.push(RaceFinding {
                    struct_name: key.0.clone(),
                    field: key.1.clone(),
                    guard: lock.to_string(),
                    qual: graph.nodes[a.fn_idx].qual.clone(),
                    file: graph.nodes[a.fn_idx].file.clone(),
                    line: a.line,
                    guarded: count,
                    total,
                });
            }
        }
    }
    races.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Protection { guards, races }
}

/// One held guard handed to a callee that stores it beyond the call.
#[derive(Debug)]
pub struct Handoff {
    /// Function passing the guard.
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the call.
    pub line: u32,
    /// The lock whose guard escapes.
    pub lock: String,
    /// The callee that stores it.
    pub callee_qual: String,
}

/// Transitive guard escapes: a live guard passed, directly, into an
/// escaping parameter position of a workspace callee. The local
/// guard-escape pass cannot see these — the store happens one or more
/// calls away.
pub fn guard_handoffs(
    model: &WorkspaceModel,
    graph: &CallGraph,
    sums: &Summaries,
) -> Vec<Handoff> {
    let accessors = guard_accessors(model);
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.is_test {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
    }
    let mut out: Vec<Handoff> = Vec::new();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    model.for_each_fn(&mut |file, ty, is_test, def| {
        if is_test {
            return;
        }
        let Some(cfg) = Cfg::build(def) else { return };
        let qual = match ty {
            Some(t) => format!("{t}::{}", def.name),
            None => def.name.clone(),
        };
        for_each_state(
            &cfg,
            HeldSet::default(),
            &mut |stmt, held| held_step(stmt, held, &accessors),
            &mut |stmt, held| {
                let Stmt::Expr(e) = stmt else { return };
                if held.guards.is_empty() {
                    return;
                }
                e.walk(&mut |node| {
                    let (name, is_method, args, line) = match node {
                        Expr::MethodCall {
                            method, args, line, ..
                        } => (method.as_str(), true, args, *line),
                        Expr::Call {
                            callee, args, line, ..
                        } => match callee.as_ref() {
                            Expr::Path { segs, .. } => {
                                let Some(last) = segs.last() else { return };
                                (last.as_str(), false, args, *line)
                            }
                            _ => return,
                        },
                        _ => return,
                    };
                    for &c in resolve(&by_name, name, is_method) {
                        for (k, a) in args.iter().enumerate() {
                            if !sums.fns[c].escaping_params.get(k).copied().unwrap_or(false) {
                                continue;
                            }
                            for (binding, (lock, _)) in &held.guards {
                                if passes_binding_directly(a, binding)
                                    && seen.insert((file.rel.clone(), line, lock.clone()))
                                {
                                    out.push(Handoff {
                                        qual: qual.clone(),
                                        file: file.rel.clone(),
                                        line,
                                        lock: lock.clone(),
                                        callee_qual: sums.fns[c].qual.clone(),
                                    });
                                }
                            }
                        }
                    }
                });
            },
        );
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> WorkspaceModel {
        let parsed: Vec<crate::ast::SourceFile> = files
            .iter()
            .map(|(rel, src)| crate::parser::parse_file(rel, src))
            .collect();
        WorkspaceModel::new(parsed)
    }

    fn built(files: &[(&str, &str)]) -> (WorkspaceModel, CallGraph) {
        let m = model_of(files);
        let g = CallGraph::build(&m);
        (m, g)
    }

    fn summary<'a>(s: &'a Summaries, g: &CallGraph, name: &str) -> &'a FnSummary {
        let id = g.find(name)[0];
        &s.fns[id]
    }

    #[test]
    fn blocks_propagates_with_via_chain() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn deep() { std::fs::rename(a, b); } \
             pub fn mid() { deep(); } \
             pub fn top() { mid(); }",
        )]);
        let s = Summaries::build(&m, &g);
        let deep = summary(&s, &g, "deep").blocks.as_ref().expect("deep blocks");
        assert_eq!(deep.what, "rename");
        assert!(deep.via.is_empty());
        let top = summary(&s, &g, "top").blocks.as_ref().expect("top blocks");
        assert_eq!(top.what, "rename");
        assert_eq!(top.via, vec!["mid", "deep"]);
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn ping(n: u32) -> u32 { pong(n) } \
             pub fn pong(n: u32) -> u32 { if n > 0 { ping(n) } else { open(n) } }",
        )]);
        let s = Summaries::build(&m, &g);
        assert!(summary(&s, &g, "ping").blocks.is_some());
        assert!(summary(&s, &g, "pong").blocks.is_some());
        // Param flow survives the cycle: both return values carry n.
        assert!(summary(&s, &g, "ping").ret_taint.from_params.contains(&0));
    }

    #[test]
    fn accessor_summary_and_acquire_closure() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "impl S { \
             fn live_lock(&self) -> MutexGuard<V> { self.live.lock().unwrap() } \
             fn uses(&self) { let g = self.live_lock(); g.push(1); } }",
        )]);
        let s = Summaries::build(&m, &g);
        assert_eq!(
            summary(&s, &g, "S::live_lock").returns_guard_of.as_deref(),
            Some("live")
        );
        assert!(summary(&s, &g, "S::uses").acquires.contains("live"));
    }

    #[test]
    fn taint_transfers_through_params_multi_hop() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn total(w: &HashMap<String, f64>) -> f64 { w.values().sum::<f64>() } \
             pub fn scale(t: f64) -> f64 { t / 2.0 } \
             pub fn emit(w: &HashMap<String, f64>) -> f64 { scale(total(w)) }",
        )]);
        let s = Summaries::build(&m, &g);
        let total = &summary(&s, &g, "total").ret_taint;
        assert!(
            total.value.iter().any(|v| v.contains("float accumulation")),
            "{total:?}"
        );
        let scale = &summary(&s, &g, "scale").ret_taint;
        assert!(scale.from_params.contains(&0), "{scale:?}");
        assert!(!scale.is_tainted());
        // emit launders through both hops.
        let emit = &summary(&s, &g, "emit").ret_taint;
        assert!(emit.is_tainted(), "{emit:?}");
    }

    #[test]
    fn sort_and_order_free_destinations_launder_order_taint() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn sorted(m: &HashMap<u32, u32>) -> Vec<u32> { \
               let mut v = m.keys().collect::<Vec<_>>(); v.sort(); v } \
             pub fn counted(m: &HashMap<u32, u32>) -> usize { m.keys().count() } \
             pub fn raw(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().collect::<Vec<_>>() }",
        )]);
        let s = Summaries::build(&m, &g);
        assert!(!summary(&s, &g, "sorted").ret_taint.is_tainted());
        assert!(!summary(&s, &g, "counted").ret_taint.is_tainted());
        assert!(summary(&s, &g, "raw").ret_taint.is_tainted());
    }

    #[test]
    fn wall_clock_and_thread_id_are_value_sources() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn stamp() -> u64 { SystemTime::now().elapsed() } \
             pub fn who() -> ThreadId { std::thread::current().id() }",
        )]);
        let s = Summaries::build(&m, &g);
        assert!(summary(&s, &g, "stamp").ret_taint.is_tainted());
        assert!(summary(&s, &g, "who").ret_taint.is_tainted());
    }

    #[test]
    fn taint_to_output_catches_multi_hop_laundering() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "pub fn total(w: &HashMap<String, f64>) -> f64 { w.values().sum::<f64>() } \
             pub fn emit(w: &HashMap<String, f64>, out: &str) { \
               let score = total(w); write_report(out, score); } \
             pub fn write_report(path: &str, v: f64) { io(path, v); }",
        )]);
        let s = Summaries::build(&m, &g);
        let flows = taint_to_output(&m, &g, &s);
        assert_eq!(flows.len(), 1, "{flows:?}");
        assert_eq!(flows[0].sink, "write_report");
        assert!(flows[0].qual.contains("emit"));
    }

    #[test]
    fn protection_infers_guard_and_flags_minority_access() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "struct Svc { state: Mutex<Vec<u32>>, pending: usize } \
             impl Svc { \
             fn bump(&mut self) { self.pending += 1; } \
             fn add(&mut self) { let s = self.state.lock().unwrap(); self.bump(); drop(s); } \
             fn drain(&mut self) { let s = self.state.lock().unwrap(); self.bump(); drop(s); } \
             fn tally(&self) -> usize { let s = self.state.lock().unwrap(); self.pending } \
             fn report(&self) -> usize { let s = self.state.lock().unwrap(); self.pending } \
             fn sneak(&mut self) { self.pending += 99; } }",
        )]);
        let p = protection(&m, &g);
        assert_eq!(
            p.guards
                .get(&("Svc".to_string(), "pending".to_string()))
                .map(String::as_str),
            Some("state"),
            "{:?}",
            p.guards
        );
        assert_eq!(p.races.len(), 1, "{:?}", p.races);
        assert!(p.races[0].qual.contains("sneak"));
    }

    #[test]
    fn guard_handoff_through_forwarding_chain() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "struct Svc { live: Mutex<Vec<u32>>, parked: Option<G> } \
             impl Svc { \
             fn keep(&mut self, g: G) { self.parked = Some(g); } \
             fn stash(&mut self, g: G) { self.keep(g); } \
             fn pin(&mut self) { let g = self.live.lock().unwrap(); self.stash(g); } }",
        )]);
        let s = Summaries::build(&m, &g);
        assert_eq!(
            summary(&s, &g, "Svc::keep").escaping_params,
            vec![true],
            "direct field store"
        );
        assert_eq!(
            summary(&s, &g, "Svc::stash").escaping_params,
            vec![true],
            "escape is transitive"
        );
        let hs = guard_handoffs(&m, &g, &s);
        assert_eq!(hs.len(), 1, "{hs:?}");
        assert_eq!(hs[0].lock, "live");
        assert!(hs[0].qual.contains("pin"));
    }

    #[test]
    fn derived_values_do_not_count_as_handoffs() {
        let (m, g) = built(&[(
            "crates/a/src/lib.rs",
            "struct Svc { live: Mutex<Vec<u32>>, n: usize } \
             impl Svc { \
             fn set_n(&mut self, n: usize) { self.n = n; } \
             fn ok(&mut self) { let g = self.live.lock().unwrap(); \
               let k = g.len(); drop(g); self.set_n(k); } }",
        )]);
        let s = Summaries::build(&m, &g);
        let hs = guard_handoffs(&m, &g, &s);
        assert!(hs.is_empty(), "{hs:?}");
    }
}
