//! Diagnostics, severities, and lint configuration.

use std::fmt;
use std::str::FromStr;

/// How seriously a lint finding is treated.
///
/// `Error` findings fail `sqe-lint check`; `Warn` findings are printed but
/// do not affect the exit code; `Allow` disables the rule entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Allow,
    Warn,
    Error,
}

impl Severity {
    /// One step less severe (Error → Warn → Allow → Allow). Used for
    /// secondary findings such as slice indexing under
    /// `no-panicking-hot-path`.
    pub fn demoted(self) -> Severity {
        match self {
            Severity::Error => Severity::Warn,
            _ => Severity::Allow,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "allow" => Ok(Severity::Allow),
            "warn" => Ok(Severity::Warn),
            "error" => Ok(Severity::Error),
            other => Err(format!(
                "unknown severity `{other}` (expected allow|warn|error)"
            )),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name, e.g. `no-nan-unsafe-sort`.
    pub rule: &'static str,
    /// Effective severity after configuration overrides.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.path, self.line, self.rule, self.message
        )
    }
}

/// Per-rule severity overrides, loaded from an optional JSON config
/// (`sqe-lint.json`): `{"severity": {"rule-name": "warn"}}`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(String, Severity)>,
}

impl LintConfig {
    /// Parses the JSON configuration text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("bad lint config: {e}"))?;
        let mut overrides = Vec::new();
        if let Some(map) = value.get("severity").and_then(|v| v.as_object()) {
            for (rule, sev) in map.iter() {
                let sev = sev
                    .as_str()
                    .ok_or_else(|| format!("severity for `{rule}` must be a string"))?;
                overrides.push((rule.clone(), sev.parse::<Severity>()?));
            }
        }
        Ok(LintConfig { overrides })
    }

    /// Registers an override programmatically.
    pub fn set(&mut self, rule: &str, severity: Severity) {
        self.overrides.retain(|(r, _)| r != rule);
        self.overrides.push((rule.to_string(), severity));
    }

    /// Effective severity for `rule`, given its default.
    pub fn severity(&self, rule: &str, default: Severity) -> Severity {
        self.overrides
            .iter()
            .find(|(r, _)| r == rule)
            .map(|(_, s)| *s)
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_parse_roundtrip() {
        for s in ["allow", "warn", "error"] {
            assert_eq!(s.parse::<Severity>().unwrap().as_str(), s);
        }
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn demotion_ladder() {
        assert_eq!(Severity::Error.demoted(), Severity::Warn);
        assert_eq!(Severity::Warn.demoted(), Severity::Allow);
        assert_eq!(Severity::Allow.demoted(), Severity::Allow);
    }

    #[test]
    fn config_overrides_apply() {
        let cfg =
            LintConfig::from_json(r#"{"severity": {"no-nondeterministic-rng": "warn"}}"#).unwrap();
        assert_eq!(
            cfg.severity("no-nondeterministic-rng", Severity::Error),
            Severity::Warn
        );
        assert_eq!(cfg.severity("other-rule", Severity::Error), Severity::Error);
    }

    #[test]
    fn config_rejects_bad_severity() {
        assert!(LintConfig::from_json(r#"{"severity": {"x": "loud"}}"#).is_err());
    }

    #[test]
    fn diagnostic_display_is_grep_friendly() {
        let d = Diagnostic {
            rule: "no-nan-unsafe-sort",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "use scorecmp".into(),
        };
        assert_eq!(
            d.to_string(),
            "error: crates/x/src/lib.rs:7: [no-nan-unsafe-sort] use scorecmp"
        );
    }
}
