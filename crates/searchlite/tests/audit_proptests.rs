//! Property-based corruption tests for the index auditor: every mutation
//! class applied to a valid index must be flagged by `IndexAudit`, and
//! freshly built indexes must audit clean.

#![cfg(feature = "validate")]

use proptest::prelude::*;
use searchlite::audit::{IndexAudit, IndexViolation};
use searchlite::{Analyzer, Index, IndexBuilder};

/// Documents over a two-letter vocabulary so terms repeat across and
/// within documents (every mutation class then has a site to apply to).
fn arb_docs() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[ab]{1,2}", 1..10), 1..8)
}

fn build(docs: &[Vec<String>]) -> Index {
    let mut b = IndexBuilder::new(Analyzer::plain());
    for (i, words) in docs.iter().enumerate() {
        b.add_document(&format!("d{i}"), &words.join(" "))
            .expect("generated ids are unique");
    }
    b.build()
}

fn has(audit: &IndexAudit, pred: impl Fn(&IndexViolation) -> bool) -> bool {
    audit.violations().iter().any(pred)
}

proptest! {
    /// Anything the builder produces must audit clean.
    #[test]
    fn built_indexes_audit_clean(docs in arb_docs()) {
        let idx = build(&docs);
        let audit = IndexAudit::run(&idx);
        prop_assert!(audit.is_clean(), "{}", audit.report());
    }

    /// De-sorting a posting list is flagged.
    #[test]
    fn unsorted_postings_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        let raw = idx.raw_mut();
        let Some(p) = raw.postings.iter_mut().find(|p| p.doc_freq() >= 2) else {
            return Ok(()); // needs a term in two documents
        };
        p.raw_mut().docs.swap(0, 1);
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::PostingsNotSorted { .. })),
            "{}", audit.report()
        );
    }

    /// A posting pointing past the collection is flagged.
    #[test]
    fn doc_out_of_bounds_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        let n = idx.num_docs() as u32;
        idx.raw_mut().postings[0].raw_mut().docs[0] = n + 7;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::DocOutOfBounds { .. })),
            "{}", audit.report()
        );
    }

    /// A stored document length that disagrees with the postings is flagged.
    #[test]
    fn wrong_doc_len_flagged(docs in arb_docs(), bump in 1..5u32) {
        let mut idx = build(&docs);
        idx.raw_mut().doc_lens[0] += bump;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::DocLenMismatch { doc: 0, .. })),
            "{}", audit.report()
        );
    }

    /// A collection length that disagrees with the document lengths is
    /// flagged.
    #[test]
    fn wrong_collection_len_flagged(docs in arb_docs(), bump in 1..9u64) {
        let mut idx = build(&docs);
        *idx.raw_mut().collection_len += bump;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::CollectionLenMismatch { .. })),
            "{}", audit.report()
        );
    }

    /// A collection term frequency that disagrees with the postings is
    /// flagged.
    #[test]
    fn wrong_coll_tf_flagged(docs in arb_docs(), bump in 1..9u64) {
        let mut idx = build(&docs);
        idx.raw_mut().coll_tf[0] += bump;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::CollTfMismatch { term: 0, .. })),
            "{}", audit.report()
        );
    }

    /// A zero term frequency is flagged.
    #[test]
    fn zero_tf_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        idx.raw_mut().postings[0].raw_mut().tfs[0] = 0;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::ZeroTf { term: 0, .. })),
            "{}", audit.report()
        );
    }

    /// A forward-index frequency that disagrees with the inverted index is
    /// flagged.
    #[test]
    fn forward_tf_mismatch_flagged(docs in arb_docs(), bump in 1..5u32) {
        let mut idx = build(&docs);
        idx.raw_mut().fwd_tfs[0] += bump;
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::FwdTfMismatch { .. })),
            "{}", audit.report()
        );
    }

    /// Two documents sharing an external id are flagged.
    #[test]
    fn duplicate_external_id_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        if idx.num_docs() < 2 {
            return Ok(());
        }
        let raw = idx.raw_mut();
        raw.external_ids[1] = raw.external_ids[0].clone();
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::DuplicateExternalId { .. })),
            "{}", audit.report()
        );
    }

    /// De-sorting a position slice is flagged.
    #[test]
    fn unsorted_positions_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        let raw = idx.raw_mut();
        let Some(p) = raw
            .postings
            .iter_mut()
            .find(|p| p.tfs().iter().any(|&t| t >= 2))
        else {
            return Ok(()); // needs a term occurring twice in one document
        };
        let raw_p = p.raw_mut();
        let i = raw_p.tfs.iter().position(|&t| t >= 2).expect("found above");
        let lo = raw_p.pos_offsets[i] as usize;
        raw_p.positions.swap(lo, lo + 1);
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::PositionsTfMismatch { .. })),
            "{}", audit.report()
        );
    }

    /// Truncating the forward index desynchronizes it from its offsets.
    #[test]
    fn truncated_forward_index_flagged(docs in arb_docs()) {
        let mut idx = build(&docs);
        let raw = idx.raw_mut();
        if raw.fwd_terms.is_empty() {
            return Ok(());
        }
        raw.fwd_terms.pop();
        raw.fwd_tfs.pop();
        let audit = IndexAudit::run(&idx);
        prop_assert!(
            has(&audit, |v| matches!(v, IndexViolation::FwdOffsetsMalformed { .. })),
            "{}", audit.report()
        );
    }
}
