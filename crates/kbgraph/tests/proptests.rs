//! Property-based tests for the graph substrate.

use kbgraph::{ArticleId, Csr, CycleFinder, CycleLimits, GraphBuilder, Node};
use proptest::prelude::*;

/// Arbitrary edge list over a bounded node count.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    /// CSR construction preserves the edge *set* (sorted, deduplicated).
    #[test]
    fn csr_preserves_edge_set(edge_list in edges(24, 200)) {
        let csr = Csr::from_edges(24, &edge_list);
        let mut expected: Vec<(u32, u32)> = edge_list.clone();
        expected.sort_unstable();
        expected.dedup();
        let mut got: Vec<(u32, u32)> = csr.iter_edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Every row of a CSR is sorted and duplicate-free.
    #[test]
    fn csr_rows_sorted_unique(edge_list in edges(16, 150)) {
        let csr = Csr::from_edges(16, &edge_list);
        for src in 0..16u32 {
            let row = csr.neighbors(src);
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1], "row {src} not strictly sorted: {row:?}");
            }
        }
    }

    /// `contains` agrees with a linear scan.
    #[test]
    fn csr_contains_agrees_with_scan(edge_list in edges(12, 100), src in 0..12u32, dst in 0..12u32) {
        let csr = Csr::from_edges(12, &edge_list);
        let expected = csr.neighbors(src).contains(&dst);
        prop_assert_eq!(csr.contains(src, dst), expected);
    }

    /// Double reversal is the identity.
    #[test]
    fn csr_double_reverse_identity(edge_list in edges(20, 150)) {
        let csr = Csr::from_edges(20, &edge_list);
        let back = csr.reversed(20).reversed(20);
        prop_assert_eq!(csr, back);
    }

    /// `doubly_linked` is symmetric, and `mutual_links` agrees with it.
    #[test]
    fn mutual_links_symmetric(edge_list in edges(14, 120)) {
        let mut b = GraphBuilder::new();
        let ids: Vec<ArticleId> = (0..14).map(|i| b.add_article(&format!("a{i}"))).collect();
        for &(s, d) in &edge_list {
            if s != d {
                b.add_article_link(ids[s as usize], ids[d as usize]);
            }
        }
        let g = b.build();
        for &a in &ids {
            for &m in &g.mutual_links(a) {
                prop_assert!(g.doubly_linked(a, m));
                prop_assert!(g.doubly_linked(m, a));
                prop_assert!(g.mutual_links(m).contains(&a));
            }
        }
    }

    /// `categories_superset` is reflexive for categorized articles and
    /// transitive across triples.
    #[test]
    fn superset_reflexive_and_transitive(memberships in prop::collection::vec((0..6u32, 0..5u32), 1..24)) {
        let mut b = GraphBuilder::new();
        let arts: Vec<ArticleId> = (0..6).map(|i| b.add_article(&format!("a{i}"))).collect();
        let cats: Vec<_> = (0..5).map(|i| b.add_category(&format!("c{i}"))).collect();
        for &(a, c) in &memberships {
            b.add_membership(arts[a as usize], cats[c as usize]);
        }
        let g = b.build();
        for &a in &arts {
            if !g.categories_of(a).is_empty() {
                prop_assert!(g.categories_superset(a, a));
            }
        }
        for &a in &arts {
            for &x in &arts {
                for &y in &arts {
                    if g.categories_superset(a, x) && g.categories_superset(x, y) {
                        prop_assert!(g.categories_superset(a, y));
                    }
                }
            }
        }
    }

    /// Every reported cycle is genuinely closed: consecutive nodes (and the
    /// wrap-around pair) are connected, all nodes distinct, length within
    /// limits, and the edge count matches a recount.
    #[test]
    fn cycles_are_valid(edge_list in edges(10, 60), memberships in prop::collection::vec((0..10u32, 0..4u32), 0..20)) {
        let mut b = GraphBuilder::new();
        let arts: Vec<ArticleId> = (0..10).map(|i| b.add_article(&format!("a{i}"))).collect();
        let cats: Vec<_> = (0..4).map(|i| b.add_category(&format!("c{i}"))).collect();
        for &(s, d) in &edge_list {
            if s != d {
                b.add_article_link(arts[s as usize], arts[d as usize]);
            }
        }
        for &(a, c) in &memberships {
            b.add_membership(arts[a as usize], cats[c as usize]);
        }
        let g = b.build();
        let limits = CycleLimits { max_len: 5, max_expand_degree: 64, max_cycles: 3000 };
        let mut finder = CycleFinder::new(&g, limits);
        let cycles = finder.cycles_through(Node::Article(arts[0]));
        for cy in &cycles {
            prop_assert!(cy.len() >= 3 && cy.len() <= 5);
            let mut distinct = cy.nodes.clone();
            distinct.sort();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), cy.nodes.len(), "nodes must be distinct");
            let mut edges_recount = 0;
            for i in 0..cy.nodes.len() {
                let x = cy.nodes[i];
                let y = cy.nodes[(i + 1) % cy.nodes.len()];
                prop_assert!(g.connected(x, y), "consecutive nodes disconnected");
                edges_recount += g.edge_multiplicity(x, y);
            }
            prop_assert_eq!(edges_recount, cy.edges);
            prop_assert!(cy.category_ratio() >= 0.0 && cy.category_ratio() <= 1.0);
        }
        // Direction dedup: no cycle is another one reversed.
        for (i, a) in cycles.iter().enumerate() {
            for b2 in cycles.iter().skip(i + 1) {
                if a.len() == b2.len() {
                    let mut rev = b2.nodes.clone();
                    rev[1..].reverse();
                    prop_assert!(a.nodes != rev, "reversed duplicate found");
                }
            }
        }
    }
}
