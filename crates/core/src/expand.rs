//! Expanded-query construction (the paper's query builder, Section 2.3).
//!
//! "We build the expanded query as a three-part combination: i) the user's
//! query, ii) the titles of the query nodes, and iii) the titles of the
//! articles expansion nodes. Titles are taken as a n-gram of consecutive
//! terms for phrase matching. In the expanded query, the expansion
//! features are weighted proportionally to the number of motifs in which
//! they have appeared."

use kbgraph::{ArticleId, KbGraph};
use searchlite::{Analyzer, Query};

use crate::query_graph::QueryGraph;

/// Weights of the three query parts. Parts with no features are skipped
/// and the remaining weights renormalize implicitly through
/// [`Query::combine`]'s per-part normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandConfig {
    /// Weight of the user's original keywords.
    pub w_user: f64,
    /// Weight of the query-node titles.
    pub w_entities: f64,
    /// Weight of the expansion-node titles.
    pub w_expansion: f64,
    /// Keep only the `max_expansions` highest-multiplicity expansion
    /// features (0 = unlimited).
    pub max_expansions: usize,
}

impl Default for ExpandConfig {
    fn default() -> Self {
        ExpandConfig {
            w_user: 0.25,
            w_entities: 0.35,
            w_expansion: 0.40,
            max_expansions: 0,
        }
    }
}

/// The result of query expansion: the final structured query plus the
/// query graph it came from (for inspection and experiments).
#[derive(Debug, Clone)]
pub struct ExpandedQuery {
    /// The weighted structured query ready for retrieval.
    pub query: Query,
    /// The query graph that produced the expansion features.
    pub query_graph: QueryGraph,
}

/// Builds the user-query part: plain analyzed keywords, unit weights.
pub fn user_part(text: &str, analyzer: &Analyzer) -> Query {
    Query::parse_text(text, analyzer)
}

/// Builds the query-entities part: one phrase feature per query-node
/// title (the form used inside the expanded query, Section 2.3).
pub fn entities_part(graph: &KbGraph, nodes: &[ArticleId], analyzer: &Analyzer) -> Query {
    let mut q = Query::new();
    for &n in nodes {
        q.push_phrase_text(graph.article_title(n), analyzer, 1.0);
    }
    q
}

/// Builds the query-entities part as a bag of title *terms* — the form
/// the `QL_E` baseline uses (running titles through Indri's default
/// query-likelihood treats them as keywords, not `#1` phrases).
pub fn entities_bag_part(graph: &KbGraph, nodes: &[ArticleId], analyzer: &Analyzer) -> Query {
    let mut q = Query::new();
    for &n in nodes {
        for tok in analyzer.analyze(graph.article_title(n)) {
            q.push_term(tok, 1.0);
        }
    }
    q
}

/// Builds the expansion-features part: one phrase feature per expansion
/// article title, weighted by its motif multiplicity `|m_a|`.
pub fn expansion_part(
    graph: &KbGraph,
    qg: &QueryGraph,
    analyzer: &Analyzer,
    max_expansions: usize,
) -> Query {
    expansion_part_from(graph, &qg.expansions, analyzer, max_expansions)
}

/// [`expansion_part`] over a raw `(article, |m_a|)` slice — the form the
/// serving layer uses on cached expansions (no [`QueryGraph`] needed).
pub fn expansion_part_from(
    graph: &KbGraph,
    expansions: &[(ArticleId, u32)],
    analyzer: &Analyzer,
    max_expansions: usize,
) -> Query {
    let mut q = Query::new();
    let take = if max_expansions == 0 {
        usize::MAX
    } else {
        max_expansions
    };
    for &(a, m) in expansions.iter().take(take) {
        q.push_phrase_text(graph.article_title(a), analyzer, m as f64);
    }
    q
}

/// Assembles the three-part structured query from its raw ingredients:
/// the user's text, the query-node ids, and the weighted expansion slice.
/// This is the allocation-light entry point the serving layer uses with
/// cached expansions; [`build_expanded_query`] wraps it.
pub fn build_query(
    graph: &KbGraph,
    user_text: &str,
    query_nodes: &[ArticleId],
    expansions: &[(ArticleId, u32)],
    analyzer: &Analyzer,
    cfg: &ExpandConfig,
) -> Query {
    let user = user_part(user_text, analyzer);
    let entities = entities_part(graph, query_nodes, analyzer);
    let expansion = expansion_part_from(graph, expansions, analyzer, cfg.max_expansions);
    Query::combine(&[
        (user, cfg.w_user),
        (entities, cfg.w_entities),
        (expansion, cfg.w_expansion),
    ])
}

/// Assembles the full three-part expanded query.
pub fn build_expanded_query(
    graph: &KbGraph,
    user_text: &str,
    qg: &QueryGraph,
    analyzer: &Analyzer,
    cfg: &ExpandConfig,
) -> ExpandedQuery {
    let query = build_query(graph, user_text, &qg.query_nodes, &qg.expansions, analyzer, cfg);
    ExpandedQuery {
        query,
        query_graph: qg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;
    use searchlite::structured::Feature;

    fn toy() -> (KbGraph, ArticleId, ArticleId, ArticleId) {
        let mut b = GraphBuilder::new();
        let q = b.add_article("cable car");
        let e1 = b.add_article("funicular");
        let e2 = b.add_article("rack railway");
        (b.build(), q, e1, e2)
    }

    fn analyzer() -> Analyzer {
        Analyzer::plain()
    }

    #[test]
    fn entities_part_uses_titles_as_phrases() {
        let (g, q, _, _) = toy();
        let part = entities_part(&g, &[q], &analyzer());
        assert_eq!(part.len(), 1);
        assert!(matches!(
            &part.features()[0].feature,
            Feature::Phrase(ts) if ts == &vec!["cable".to_owned(), "car".to_owned()]
        ));
    }

    #[test]
    fn expansion_part_weights_by_multiplicity() {
        let (g, q, e1, e2) = toy();
        let qg = QueryGraph {
            query_nodes: vec![q],
            expansions: vec![(e1, 3), (e2, 1)],
        };
        let part = expansion_part(&g, &qg, &analyzer(), 0);
        assert_eq!(part.len(), 2);
        assert_eq!(part.features()[0].weight, 3.0);
        assert_eq!(part.features()[1].weight, 1.0);
    }

    #[test]
    fn max_expansions_caps_features() {
        let (g, q, e1, e2) = toy();
        let qg = QueryGraph {
            query_nodes: vec![q],
            expansions: vec![(e1, 3), (e2, 1)],
        };
        let part = expansion_part(&g, &qg, &analyzer(), 1);
        assert_eq!(part.len(), 1, "only the top expansion kept");
    }

    #[test]
    fn full_query_has_three_parts() {
        let (g, q, e1, _) = toy();
        let qg = QueryGraph {
            query_nodes: vec![q],
            expansions: vec![(e1, 2)],
        };
        let eq = build_expanded_query(&g, "mountain transport", &qg, &analyzer(), &ExpandConfig::default());
        // 2 user terms + 1 entity phrase + 1 expansion feature.
        assert_eq!(eq.query.len(), 4);
        assert!((eq.query.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_expansion_leaves_user_and_entities() {
        let (g, q, _, _) = toy();
        let qg = QueryGraph {
            query_nodes: vec![q],
            expansions: vec![],
        };
        let eq = build_expanded_query(&g, "mountain", &qg, &analyzer(), &ExpandConfig::default());
        assert_eq!(eq.query.len(), 2);
        assert!(!eq.query.is_empty());
    }

    #[test]
    fn no_query_nodes_still_yields_user_query() {
        let (g, _, _, _) = toy();
        let qg = QueryGraph::default();
        let eq = build_expanded_query(&g, "mountain trains", &qg, &analyzer(), &ExpandConfig::default());
        assert_eq!(eq.query.len(), 2);
    }

    #[test]
    fn weight_ratio_reflects_config() {
        let (g, q, e1, _) = toy();
        let qg = QueryGraph {
            query_nodes: vec![q],
            expansions: vec![(e1, 1)],
        };
        let cfg = ExpandConfig {
            w_user: 0.5,
            w_entities: 0.25,
            w_expansion: 0.25,
            max_expansions: 0,
        };
        let eq = build_expanded_query(&g, "alps", &qg, &analyzer(), &cfg);
        // One user term (weight 0.5), one entity phrase (0.25), one
        // expansion phrase (0.25).
        let weights: Vec<f64> = eq.query.features().iter().map(|f| f.weight).collect();
        assert_eq!(weights.len(), 3);
        assert!((weights[0] - 0.5).abs() < 1e-12);
        assert!((weights[1] - 0.25).abs() < 1e-12);
        assert!((weights[2] - 0.25).abs() < 1e-12);
    }
}
