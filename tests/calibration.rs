//! Calibration integration tests: the generated world must carry the
//! statistics the paper reports for its datasets (scaled), because those
//! statistics are what the substitution argument in DESIGN.md rests on.

use synthwiki::{TestBed, TestBedConfig};

fn bed() -> TestBed {
    TestBed::generate(&TestBedConfig::small())
}

#[test]
fn collection_sizes_match_config() {
    let cfg = TestBedConfig::small();
    let b = bed();
    assert_eq!(b.collections[0].docs.len(), cfg.imageclef.total_docs);
    assert_eq!(b.collections[1].docs.len(), cfg.chic.total_docs);
}

#[test]
fn chic_collection_is_shared_between_query_sets() {
    let b = bed();
    assert_eq!(
        b.dataset("chic2012").collection,
        b.dataset("chic2013").collection,
        "the paper's CHiC 2012 and 2013 share one collection"
    );
    assert_ne!(b.dataset("imageclef").collection, b.dataset("chic2012").collection);
}

#[test]
fn zero_relevant_counts_reproduced() {
    let cfg = TestBedConfig::small();
    let b = bed();
    assert_eq!(
        b.dataset("chic2012").num_zero_relevant(),
        cfg.chic2012_queries.zero_relevant_queries
    );
    assert_eq!(
        b.dataset("chic2013").num_zero_relevant(),
        cfg.chic2013_queries.zero_relevant_queries
    );
    assert_eq!(b.dataset("imageclef").num_zero_relevant(), 0);
}

#[test]
fn relevant_means_follow_dataset_ordering() {
    // Paper: ImageCLEF 68.8 > CHiC13 50.6 > CHiC12 31.32; the small
    // preset keeps the same ordering at reduced scale.
    let b = bed();
    let ic = b.dataset("imageclef").avg_relevant_per_query();
    let c13 = b.dataset("chic2013").avg_relevant_per_query();
    let c12 = b.dataset("chic2012").avg_relevant_per_query();
    assert!(ic > c13, "imageclef {ic:.1} vs chic13 {c13:.1}");
    assert!(c13 > c12, "chic13 {c13:.1} vs chic12 {c12:.1}");
}

#[test]
fn documents_are_caption_short() {
    let cfg = TestBedConfig::small();
    let b = bed();
    let (lo, hi) = cfg.imageclef.doc_len;
    let mut entity_docs = 0;
    for d in b.collections[0].docs.iter().take(3000) {
        if d.about.is_some() {
            let len = d.text.split(' ').count();
            assert!(
                len >= lo && len <= hi + 4,
                "entity doc length {len} outside [{lo}, {}]: {}",
                hi + 4,
                d.text
            );
            entity_docs += 1;
        }
    }
    assert!(entity_docs > 100);
}

#[test]
fn foreign_documents_exist_and_are_judged() {
    let b = bed();
    let ds = b.dataset("imageclef");
    let coll = b.collection_of(ds);
    let foreign_relevant = coll
        .docs
        .iter()
        .filter(|d| d.judged_relevant && d.text.split(' ').all(|w| w.ends_with("eth")))
        .count();
    assert!(
        foreign_relevant > 0,
        "some judged-relevant documents must be in the foreign language \
         (the multilingual recall ceiling)"
    );
}

#[test]
fn kb_structure_reproduces_wikipedia_shape() {
    let b = bed();
    let stats = b.kb.graph.stats();
    // Two node types, four edge families, substantial reciprocity.
    assert!(stats.num_articles > stats.num_categories);
    assert!(stats.num_article_links > stats.num_membership_links);
    assert!(stats.num_category_links > 0);
    let reciprocity = 2.0 * stats.num_reciprocal_pairs as f64 / stats.num_article_links as f64;
    assert!(
        reciprocity > 0.3,
        "motifs need substantial reciprocal linking: {reciprocity:.2}"
    );
    assert!(stats.avg_categories_per_article >= 1.0);
}

#[test]
fn no_intra_topic_article_triangles() {
    // The odd-offset ring guarantees the paper's Figure 2 structure: a
    // length-3 cycle through an entity always passes through a category.
    let b = bed();
    let g = &b.kb.graph;
    let mut checked = 0;
    for e in b.space.entities.iter().step_by(29).take(20) {
        let a = b.kb.article_of[e.id];
        for &m1 in &g.mutual_links(a) {
            for &m2 in &g.mutual_links(a) {
                if m1 >= m2 {
                    continue;
                }
                let (e1, e2) = (b.kb.entity_of_article(m1), b.kb.entity_of_article(m2));
                if let (Some(e1), Some(e2)) = (e1, e2) {
                    if b.space.entities[e1].topic == e.topic
                        && b.space.entities[e2].topic == e.topic
                    {
                        assert!(
                            !g.doubly_linked(m1, m2),
                            "intra-topic mutual triangle at entity {}",
                            e.id
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 10, "need real cases: {checked}");
}

#[test]
fn full_config_has_paper_statistics() {
    let cfg = TestBedConfig::full();
    assert_eq!(cfg.imageclef_queries.num_queries, 50);
    assert_eq!(cfg.chic2012_queries.num_queries, 50);
    assert_eq!(cfg.chic2013_queries.num_queries, 50);
    assert!((cfg.imageclef_queries.mean_relevant_per_query - 68.8).abs() < 1e-9);
    assert!((cfg.chic2012_queries.mean_relevant_per_query - 31.32).abs() < 1e-9);
    assert!((cfg.chic2013_queries.mean_relevant_per_query - 50.6).abs() < 1e-9);
    assert_eq!(cfg.chic2012_queries.zero_relevant_queries, 14);
    assert_eq!(cfg.chic2013_queries.zero_relevant_queries, 1);
}
