//! Motif explorer: generate the synthetic Wikipedia, pick an article, and
//! show everything the motifs see — mutual links, categories, triangular
//! and square expansions with their multiplicities, and the short cycles
//! through the article (the paper's Section 2.1 structures).
//!
//! ```text
//! cargo run --release --example motif_explorer [article-index]
//! ```

use kbgraph::{ArticleId, CycleFinder, CycleLimits, Node};
use sqe::{Motif, MotifSet, MotifSpec};
use synthwiki::{TestBed, TestBedConfig};

fn main() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let graph = &bed.kb.graph;
    let arg: Option<usize> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    let article = ArticleId::new(arg.unwrap_or(0) as u32);
    if article.index() >= graph.num_articles() {
        eprintln!("article index out of range (0..{})", graph.num_articles());
        std::process::exit(2);
    }

    println!("article: \"{}\"", graph.article_title(article));
    println!("out-links: {}   in-links: {}", graph.out_links(article).len(), graph.in_links(article).len());
    let mutual = graph.mutual_links(article);
    println!("doubly linked with {} articles:", mutual.len());
    for &m in mutual.iter().take(10) {
        println!("  ↔ {}", graph.article_title(m));
    }
    println!("categories:");
    for &c in graph.categories_of(article) {
        println!("  ∈ {}", graph.category_title(kbgraph::CategoryId::new(c)));
    }

    for (name, expansions) in [
        ("triangular", MotifSpec::triangular().expansions(graph, article)),
        ("square", MotifSpec::square().expansions(graph, article)),
    ] {
        println!("\n{name} motif expansions ({}):", expansions.len());
        for (a, m) in expansions.iter().take(12) {
            println!("  {} (|m_a| = {m})", graph.article_title(*a));
        }
    }

    let mut finder = CycleFinder::new(
        graph,
        CycleLimits {
            max_len: 4,
            max_expand_degree: 48,
            max_cycles: 2000,
        },
    );
    let cycles = finder.cycles_through(Node::Article(article));
    let tri = cycles.iter().filter(|c| c.len() == 3).count();
    let sq = cycles.iter().filter(|c| c.len() == 4).count();
    let cat_ratio = if cycles.is_empty() {
        0.0
    } else {
        cycles.iter().map(|c| c.category_ratio()).sum::<f64>() / cycles.len() as f64
    };
    println!(
        "\ncycles through the article: {} of length 3, {} of length 4; mean category ratio {:.3}",
        tri, sq, cat_ratio
    );

    // Figure-3-style drawing of the query graph (pipe into `dot -Tsvg`).
    let qg = sqe::QueryGraphBuilder::from_set(graph, &MotifSet::t_and_s()).build(&[article]);
    println!("\nGraphviz DOT of the query graph:\n{}", qg.to_dot(graph, "query graph"));
}
