//! Okapi BM25 scoring — an alternative to the paper's query-likelihood
//! model, used by the harness's retrieval-model sensitivity check: SQE's
//! improvements should not hinge on Dirichlet smoothing specifically.
//!
//! `score(D) = Σ_f w_f · idf(f) · tf·(k1+1) / (tf + k1·(1−b+b·|D|/avgdl))`
//! with `idf(f) = ln(1 + (N − df + 0.5)/(df + 0.5))`.
//!
//! Like [`crate::ql`], scoring runs against a [`Searcher`]; `N`, `df`,
//! `avgdl` and every tf are exact merged statistics, so BM25 rankings are
//! partition-independent too.

use rustc_hash::FxHashMap;

use crate::index::{DocId, PositionalScratch, TermId};
use crate::searcher::Searcher;
use crate::structured::{Feature, Query};
use crate::topk::TopK;

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2–2.0).
    pub k1: f64,
    /// Length normalization strength (typical 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A feature with precomputed per-document frequencies and idf.
struct Bm25Feature {
    tfs: FxHashMap<u32, u32>,
    weight: f64,
    idf: f64,
}

pub(crate) fn idf(num_docs: usize, df: usize) -> f64 {
    let n = num_docs as f64;
    let d = df as f64;
    (1.0 + (n - d + 0.5) / (d + 0.5)).ln()
}

fn resolve(searcher: &Searcher, query: &Query) -> Vec<Bm25Feature> {
    let n = searcher.num_docs();
    let mut pos = PositionalScratch::new();
    let mut out = Vec::with_capacity(query.len());
    for wf in query.features() {
        let postings: Option<Vec<(DocId, u32)>> = match &wf.feature {
            Feature::Term(tok) => searcher.term_id(tok).map(|t| searcher.term_postings(t)),
            Feature::Phrase(tokens) => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                ids.map(|ids| searcher.phrase_postings_with(&ids, &mut pos))
            }
            Feature::Unordered { tokens, window } => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                ids.map(|ids| searcher.unordered_window_postings_with(&ids, *window, &mut pos))
            }
        };
        if let Some(postings) = postings {
            let df = postings.len();
            if df == 0 {
                continue;
            }
            out.push(Bm25Feature {
                tfs: postings.into_iter().map(|(d, tf)| (d.0, tf)).collect(),
                weight: wf.weight,
                idf: idf(n, df),
            });
        }
    }
    out
}

/// Scores one document.
fn score_doc(searcher: &Searcher, features: &[Bm25Feature], doc: u32, params: Bm25Params) -> f64 {
    let avgdl =
        (searcher.collection_len() as f64 / searcher.num_docs().max(1) as f64).max(f64::EPSILON);
    let dl = searcher.doc_len(DocId(doc)) as f64;
    let norm = params.k1 * (1.0 - params.b + params.b * dl / avgdl);
    let mut score = 0.0;
    for f in features {
        if let Some(&tf) = f.tfs.get(&doc) {
            let tf = tf as f64;
            score += f.weight * f.idf * tf * (params.k1 + 1.0) / (tf + norm);
        }
    }
    score
}

/// Ranks the top `k` documents for `query` under BM25. Hits carry the
/// BM25 score (higher is better); candidates are documents matching at
/// least one feature, as in [`crate::ql::rank`].
pub fn rank(
    searcher: &Searcher,
    query: &Query,
    params: Bm25Params,
    k: usize,
) -> Vec<crate::ql::SearchHit> {
    let features = resolve(searcher, query);
    if features.is_empty() {
        return Vec::new();
    }
    let mut candidates: Vec<u32> = features.iter().flat_map(|f| f.tfs.keys().copied()).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut top = TopK::new(k);
    for &doc in &candidates {
        top.push(doc, score_doc(searcher, &features, doc, params));
    }
    top.into_sorted()
        .into_iter()
        .map(|(doc, score)| crate::ql::SearchHit {
            doc: DocId(doc),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;
    use crate::ingest::SegmentedIndex;

    fn build(docs: &[(&str, &str)]) -> Searcher {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in docs {
            b.add_document(id, text).expect("unique test ids");
        }
        Searcher::from_index(b.build())
    }

    const TINY: [(&str, &str); 3] = [
        ("d0", "cable car climbs the hill"),
        ("d1", "cable car cable car"),
        ("d2", "graffiti on the wall"),
    ];

    fn tiny() -> Searcher {
        build(&TINY)
    }

    #[test]
    fn idf_decreases_with_df() {
        assert!(idf(100, 1) > idf(100, 10));
        assert!(idf(100, 10) > idf(100, 90));
        assert!(idf(100, 100) > 0.0, "the +1 keeps idf positive");
    }

    #[test]
    fn bm25_formula_matches_hand_calculation() {
        let idx = tiny();
        let q = Query::parse_text("cable", &Analyzer::plain());
        let params = Bm25Params { k1: 1.2, b: 0.75 };
        let hits = rank(&idx, &q, params, 10);
        // d1: tf=2, |D|=4, avgdl=13/3; d0: tf=1, |D|=5.
        let avgdl = 13.0 / 3.0;
        let idf_cable = (1.0f64 + (3.0 - 2.0 + 0.5) / (2.0 + 0.5)).ln();
        let norm1 = 1.2 * (1.0 - 0.75 + 0.75 * 4.0 / avgdl);
        let expected1 = idf_cable * 2.0 * 2.2 / (2.0 + norm1);
        let top = hits.iter().find(|h| idx.external_id(h.doc) == "d1").unwrap();
        assert!((top.score - expected1).abs() < 1e-12, "{} vs {expected1}", top.score);
    }

    #[test]
    fn higher_tf_ranks_higher() {
        let idx = tiny();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let hits = rank(&idx, &q, Bm25Params::default(), 10);
        assert_eq!(idx.external_id(hits[0].doc), "d1");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn phrase_features_supported() {
        let idx = tiny();
        let mut q = Query::new();
        q.push_phrase_tokens(vec!["cable".into(), "car".into()], 1.0);
        let hits = rank(&idx, &q, Bm25Params::default(), 10);
        assert_eq!(hits.len(), 2, "both docs contain the phrase");
        assert_eq!(idx.external_id(hits[0].doc), "d1", "tf 2 beats tf 1");
    }

    #[test]
    fn weights_scale_contributions() {
        let idx = tiny();
        let mut q1 = Query::new();
        q1.push_term("cable".into(), 1.0);
        let mut q2 = Query::new();
        q2.push_term("cable".into(), 2.0);
        let h1 = rank(&idx, &q1, Bm25Params::default(), 1);
        let h2 = rank(&idx, &q2, Bm25Params::default(), 1);
        assert!((h2[0].score - 2.0 * h1[0].score).abs() < 1e-12);
    }

    #[test]
    fn empty_and_oov_queries() {
        let idx = tiny();
        assert!(rank(&idx, &Query::new(), Bm25Params::default(), 10).is_empty());
        let q = Query::parse_text("zeppelin", &Analyzer::plain());
        assert!(rank(&idx, &q, Bm25Params::default(), 10).is_empty());
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        // With b=0, two docs with equal tf score equally despite lengths.
        let idx = build(&[
            ("short", "cable x"),
            ("long", "cable one two three four five six"),
        ]);
        let q = Query::parse_text("cable", &Analyzer::plain());
        let hits = rank(&idx, &q, Bm25Params { k1: 1.2, b: 0.0 }, 10);
        assert!((hits[0].score - hits[1].score).abs() < 1e-12);
    }

    #[test]
    fn segmented_bm25_is_bit_identical_to_monolithic() {
        let mono = tiny();
        let mut seg = SegmentedIndex::new(Analyzer::plain());
        for (id, text) in TINY {
            seg.add_document(id, text).expect("unique test ids");
            seg.seal().expect("non-empty buffer seals");
        }
        let segd = seg.searcher();
        assert!(segd.num_segments() > 1, "test must exercise >1 segment");
        for text in ["cable car", "the wall", "cable"] {
            let q = Query::parse_text(text, &Analyzer::plain());
            assert_eq!(
                rank(&mono, &q, Bm25Params::default(), 10),
                rank(&segd, &q, Bm25Params::default(), 10),
                "query {text:?}"
            );
        }
    }
}
