//! Round-trip guarantee: the v2 parser must accept every workspace `.rs`
//! file with zero structural parse errors, and must find at least one
//! function in every non-trivial source file. This is what makes the
//! cross-file rules trustworthy — a file the parser chokes on is a file
//! the call graph silently ignores.

use std::path::Path;

#[test]
fn every_workspace_file_parses_without_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = analyzer::workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 50, "workspace walk found too few files");
    let mut parsed_fns = 0usize;
    for path in files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path).expect("read workspace file");
        let file = analyzer::parser::parse_file(&rel, &src);
        assert!(
            file.errors.is_empty(),
            "parse errors in {rel}: {:?}",
            file.errors
        );
        file.for_each_fn(&mut |_, _, _| parsed_fns += 1);
    }
    assert!(
        parsed_fns > 300,
        "suspiciously few functions parsed across the workspace: {parsed_fns}"
    );
}
