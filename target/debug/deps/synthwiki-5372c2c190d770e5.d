/root/repo/target/debug/deps/synthwiki-5372c2c190d770e5.d: crates/synthwiki/src/lib.rs crates/synthwiki/src/concepts.rs crates/synthwiki/src/config.rs crates/synthwiki/src/dataset.rs crates/synthwiki/src/docs.rs crates/synthwiki/src/groundtruth.rs crates/synthwiki/src/kb.rs crates/synthwiki/src/persist.rs crates/synthwiki/src/queries.rs crates/synthwiki/src/words.rs

/root/repo/target/debug/deps/synthwiki-5372c2c190d770e5: crates/synthwiki/src/lib.rs crates/synthwiki/src/concepts.rs crates/synthwiki/src/config.rs crates/synthwiki/src/dataset.rs crates/synthwiki/src/docs.rs crates/synthwiki/src/groundtruth.rs crates/synthwiki/src/kb.rs crates/synthwiki/src/persist.rs crates/synthwiki/src/queries.rs crates/synthwiki/src/words.rs

crates/synthwiki/src/lib.rs:
crates/synthwiki/src/concepts.rs:
crates/synthwiki/src/config.rs:
crates/synthwiki/src/dataset.rs:
crates/synthwiki/src/docs.rs:
crates/synthwiki/src/groundtruth.rs:
crates/synthwiki/src/kb.rs:
crates/synthwiki/src/persist.rs:
crates/synthwiki/src/queries.rs:
crates/synthwiki/src/words.rs:
