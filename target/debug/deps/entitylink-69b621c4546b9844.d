/root/repo/target/debug/deps/entitylink-69b621c4546b9844.d: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

/root/repo/target/debug/deps/entitylink-69b621c4546b9844: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

crates/entitylink/src/lib.rs:
crates/entitylink/src/corpus.rs:
crates/entitylink/src/dictionary.rs:
crates/entitylink/src/linker.rs:
crates/entitylink/src/noise.rs:
crates/entitylink/src/spotter.rs:
