/root/repo/target/release/deps/rustc_hash-60385b21667165a0.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-60385b21667165a0.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-60385b21667165a0.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
