//! Vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Two subsets are provided, implemented on std primitives:
//!
//! * `crossbeam::thread::scope`, on top of `std::thread::scope` (stable
//!   since 1.63). The `Result` wrapper mirrors crossbeam's signature:
//!   `std::thread::scope` already propagates child panics into the parent,
//!   so the `Ok` arm is the only one ever constructed — caller
//!   `.expect(..)` calls stay source- and behaviour-compatible.
//! * `crossbeam::channel::unbounded`, an MPMC queue on `Mutex<VecDeque>` +
//!   `Condvar`. Semantics match crossbeam where the workspace relies on
//!   them: cloneable senders and receivers, FIFO per queue, `recv` blocks
//!   until an item arrives or every sender is dropped (then `Err`).

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    /// A scope handle; closures spawned on it may borrow from the caller's
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope (crossbeam
        /// signature) so nested spawns keep working.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    ///
    /// All spawned threads are joined before `scope` returns. A child panic
    /// is re-raised by `std::thread::scope` itself, so unlike crossbeam the
    /// `Err` variant is never observed; it exists for signature parity.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_fill_borrowed_slots() {
            let mut out = vec![0u32; 4];
            super::scope(|s| {
                for (i, slot) in out.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u32 + 1);
                }
            })
            .expect("no panics");
            assert_eq!(out, vec![1, 2, 3, 4]);
        }
    }
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels (subset of
    //! `crossbeam::channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        avail: Condvar,
    }

    impl<T> Shared<T> {
        /// Locks the state; a poisoned lock (a consumer panicked while
        /// holding it) still yields the inner data — queue contents stay
        /// structurally valid because every critical section is panic-free.
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (consumers compete for items).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`]; carries the rejected value.
    /// With the unbounded queue of this stand-in, sends cannot fail, so
    /// the type exists for crossbeam signature parity only.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the queue is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty but senders remain.
        Empty,
        /// Queue empty and every sender has been dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            avail: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a value and wakes one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.lock().queue.push_back(value);
            self.0.avail.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.0.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Receivers blocked in `recv` must observe disconnection.
                self.0.avail.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the queue is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.avail.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).expect("unbounded send");
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn competing_consumers_drain_everything() {
            let (tx, rx) = unbounded();
            for i in 0..100u32 {
                tx.send(i).expect("unbounded send");
            }
            drop(tx);
            let mut seen: Vec<u32> = crate::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move |_| {
                            let mut mine = Vec::new();
                            while let Ok(v) = rx.recv() {
                                mine.push(v);
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("no panics"))
                    .collect()
            })
            .expect("no panics");
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_wakes_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(t.join().expect("no panic"), Err(RecvError));
        }
    }
}
