// Fixture: the fixed version of persist_bad.rs — every persisted type
// derives Serialize + Deserialize, and a transient helper opts out.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotHeader {
    pub version: u32,
    pub num_articles: u32,
}

#[derive(Debug, Serialize, Deserialize)]
pub enum SnapshotSection {
    Links,
    Memberships,
}

// lint:allow(persist-types-derive-serde) — in-memory scratch state only
pub struct LoadScratch {
    pub buffer: Vec<u8>,
}
