//! Strongly-typed node identifiers.
//!
//! Articles and categories live in separate id spaces; mixing them up is a
//! compile error. Ids are plain `u32` indices internally (per the Rust
//! performance guidance on small integer ids), dense from zero in insertion
//! order.

use serde::{Deserialize, Serialize};

/// Identifier of an article node (a Wikipedia article in the paper's KB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArticleId(pub(crate) u32);

/// Identifier of a category node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CategoryId(pub(crate) u32);

impl ArticleId {
    /// Creates an id from a raw dense index.
    #[inline]
    pub fn new(index: u32) -> Self {
        ArticleId(index)
    }

    /// The dense index of this article, suitable for indexing parallel arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl CategoryId {
    /// Creates an id from a raw dense index.
    #[inline]
    pub fn new(index: u32) -> Self {
        CategoryId(index)
    }

    /// The dense index of this category, suitable for indexing parallel arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A node of the mixed article/category graph.
///
/// The paper's cycles (Section 2.1) run over both node types, so cycle
/// enumeration works on this unified reference type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Node {
    /// An article node.
    Article(ArticleId),
    /// A category node.
    Category(CategoryId),
}

impl Node {
    /// True if this node is a category.
    #[inline]
    pub fn is_category(self) -> bool {
        matches!(self, Node::Category(_))
    }

    /// True if this node is an article.
    #[inline]
    pub fn is_article(self) -> bool {
        matches!(self, Node::Article(_))
    }

    /// Packs the node into a single `u32` key: articles keep their index,
    /// categories are offset by `num_articles`. Useful for visited sets.
    #[inline]
    pub fn packed(self, num_articles: u32) -> u32 {
        match self {
            Node::Article(a) => a.0,
            Node::Category(c) => num_articles + c.0,
        }
    }
}

impl From<ArticleId> for Node {
    fn from(a: ArticleId) -> Self {
        Node::Article(a)
    }
}

impl From<CategoryId> for Node {
    fn from(c: CategoryId) -> Self {
        Node::Category(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn article_id_roundtrip() {
        let a = ArticleId::new(17);
        assert_eq!(a.index(), 17);
        assert_eq!(a.raw(), 17);
    }

    #[test]
    fn category_id_roundtrip() {
        let c = CategoryId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.raw(), 3);
    }

    #[test]
    fn node_kind_predicates() {
        let a: Node = ArticleId::new(0).into();
        let c: Node = CategoryId::new(0).into();
        assert!(a.is_article() && !a.is_category());
        assert!(c.is_category() && !c.is_article());
    }

    #[test]
    fn packed_separates_spaces() {
        let a: Node = ArticleId::new(5).into();
        let c: Node = CategoryId::new(5).into();
        assert_eq!(a.packed(10), 5);
        assert_eq!(c.packed(10), 15);
        assert_ne!(a.packed(10), c.packed(10));
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ArticleId::new(1) < ArticleId::new(2));
        assert!(CategoryId::new(0) < CategoryId::new(9));
    }
}
