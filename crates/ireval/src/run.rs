//! Ranked retrieval results.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A named run: one ranked document list per query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Run {
    name: String,
    rankings: FxHashMap<String, Vec<String>>,
}

impl Run {
    /// Creates an empty run with a display name (e.g. `"SQE_T"`).
    pub fn new(name: &str) -> Self {
        Run {
            name: name.to_owned(),
            rankings: FxHashMap::default(),
        }
    }

    /// The run's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs the ranked document ids for a query (best first).
    /// Duplicate documents are removed keeping the first (best) position,
    /// matching trec_eval's requirement of unique docs per query.
    pub fn set_ranking(&mut self, query: &str, ranked_docs: Vec<String>) {
        let mut seen = rustc_hash::FxHashSet::default();
        let deduped: Vec<String> = ranked_docs
            .into_iter()
            .filter(|d| seen.insert(d.clone()))
            .collect();
        self.rankings.insert(query.to_owned(), deduped);
    }

    /// The ranking of a query, if present.
    pub fn ranking(&self, query: &str) -> Option<&[String]> {
        self.rankings.get(query).map(|v| v.as_slice())
    }

    /// All query ids in the run, sorted.
    pub fn queries(&self) -> Vec<&str> {
        let mut q: Vec<&str> = self.rankings.keys().map(|s| s.as_str()).collect();
        q.sort_unstable();
        q
    }

    /// Number of queries with rankings.
    pub fn num_queries(&self) -> usize {
        self.rankings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut r = Run::new("test");
        r.set_ranking("q1", vec!["a".into(), "b".into()]);
        assert_eq!(r.ranking("q1").unwrap(), &["a", "b"]);
        assert!(r.ranking("q2").is_none());
        assert_eq!(r.name(), "test");
    }

    #[test]
    fn duplicates_keep_first() {
        let mut r = Run::new("t");
        r.set_ranking("q", vec!["a".into(), "b".into(), "a".into(), "c".into()]);
        assert_eq!(r.ranking("q").unwrap(), &["a", "b", "c"]);
    }

    #[test]
    fn queries_sorted() {
        let mut r = Run::new("t");
        r.set_ranking("z", vec![]);
        r.set_ranking("a", vec![]);
        assert_eq!(r.queries(), vec!["a", "z"]);
        assert_eq!(r.num_queries(), 2);
    }
}
