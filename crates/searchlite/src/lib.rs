//! An Indri-like search-engine substrate for Structural Query Expansion.
//!
//! The paper (Section 2.3 and Section 3) runs its experiments on the Indri
//! engine with a query-likelihood retrieval model. This crate implements
//! the pieces the paper actually uses, from the published formulas:
//!
//! * [`analysis`] — tokenizer, stopword filter and Porter stemmer,
//! * [`index`] — a positional inverted index over a document collection,
//! * [`ql`] — Dirichlet-smoothed query likelihood scoring
//!   (`P(w|D) = (tf + μ·P(w|C)) / (|D| + μ)`, Ponte & Croft / Indri),
//! * [`structured`] — weighted structured queries (terms, exact n-gram
//!   phrases, weighted combination — the `#weight`/`#1` operators the
//!   expanded query of Section 2.3 needs),
//! * [`prf`] — Lavrenko's relevance model (RM1/RM3) pseudo-relevance
//!   feedback used as the PRF comparator in Section 4.3,
//! * [`bm25`] — Okapi BM25 as an alternative ranking function for
//!   retrieval-model sensitivity checks,
//! * [`topk`] — bounded top-k selection with deterministic tie-breaking.
//!
//! The corpus itself is **segmented** (LSM-style): immutable [`Segment`]s
//! behind a stats-merging [`Searcher`] view, with live ingestion through
//! [`SegmentedIndex`] (`add_document` → `seal` → deterministic tiered
//! merges). Scoring is byte-identical however the corpus is partitioned;
//! see [`segment`], [`searcher`] and [`ingest`].
//!
//! # Example
//!
//! ```
//! use searchlite::{Analyzer, SegmentedIndex, ql::QlParams, structured::Query};
//!
//! let analyzer = Analyzer::english();
//! let mut corpus = SegmentedIndex::new(analyzer.clone());
//! corpus
//!     .add_document("d1", "a funicular railway climbing the hillside")
//!     .expect("fresh id");
//! corpus.seal().expect("non-empty buffer");
//! // Later documents land in new segments; existing ones are immutable.
//! corpus
//!     .add_document("d2", "street art painted on city walls")
//!     .expect("fresh id");
//! corpus.seal().expect("non-empty buffer");
//!
//! let searcher = corpus.searcher();
//! let query = Query::parse_text("funicular railway", &analyzer);
//! let hits = searchlite::ql::rank(&searcher, &query, QlParams::default(), 10);
//! assert_eq!(searcher.external_id(hits[0].doc), "d1");
//! ```

pub mod analysis;
#[cfg(feature = "validate")]
pub mod audit;
pub mod bm25;
pub mod index;
pub mod ingest;
pub mod prf;
pub mod ql;
pub mod searcher;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod structured;
pub mod topk;

pub use analysis::Analyzer;
pub use index::{
    DocId, Index, IndexBuildError, IndexBuilder, IndexDecodeError, IndexShapeError,
    PositionalScratch, TermId, TermPostings,
};
pub use ingest::{
    BuiltSegment, IngestError, MergeOutcome, MergeTask, PendingSeal, SealReport, SegmentedIndex,
    TieredMergePolicy,
};
pub use ql::{QlParams, SearchHit};
pub use searcher::Searcher;
pub use segment::Segment;
pub use shard::ShardRouter;
pub use stats::CollectionStats;
pub use structured::Query;
