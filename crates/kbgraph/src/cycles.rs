//! Anchored enumeration of short mixed cycles.
//!
//! Section 2.1 of the paper defines cycles as "a closed sequence of nodes,
//! either articles or categories, with at least one edge among each pair of
//! consecutive nodes". Direction is irrelevant for connectivity, but the
//! *number* of edges between consecutive nodes (1 or 2) feeds the
//! "density of extra edges" statistic of Figure 2c.
//!
//! [`CycleFinder`] enumerates every simple cycle of length 3–5 that passes
//! through an anchor node, reporting each undirected cycle exactly once.

use crate::graph::KbGraph;
use crate::ids::Node;

/// A simple cycle through an anchor node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The cycle's nodes, starting at the anchor. Consecutive nodes (and
    /// the last/first pair) are connected by at least one edge.
    pub nodes: Vec<Node>,
    /// Total number of directed edges over all consecutive pairs
    /// (each pair contributes 1 or 2).
    pub edges: u32,
}

impl Cycle {
    /// Cycle length (number of nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the (impossible in practice) empty cycle; present to keep
    /// clippy's `len_without_is_empty` contract.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of category nodes in the cycle.
    pub fn category_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_category()).count()
    }

    /// Fraction of the cycle's nodes that are categories (Figure 2b).
    pub fn category_ratio(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.category_count() as f64 / self.nodes.len() as f64
    }

    /// Density of extra edges (Figure 2c): the number of edges beyond the
    /// minimum needed to close the cycle, normalized by the maximum number
    /// of possible edges (two per consecutive pair).
    pub fn extra_edge_density(&self) -> f64 {
        let l = self.nodes.len() as f64;
        if l == 0.0 {
            return 0.0;
        }
        (self.edges as f64 - l) / (2.0 * l)
    }
}

/// Caps that bound the enumeration on hub-heavy graphs.
#[derive(Debug, Clone, Copy)]
pub struct CycleLimits {
    /// Maximum cycle length to enumerate (inclusive). The paper analyzes
    /// lengths 3–5.
    pub max_len: usize,
    /// Nodes whose undirected degree exceeds this are not *expanded*
    /// (they may still terminate a cycle). Protects against hub blow-up,
    /// mirroring how the paper restricts itself to short local structures.
    pub max_expand_degree: usize,
    /// Hard cap on the number of cycles reported per anchor.
    pub max_cycles: usize,
}

impl Default for CycleLimits {
    fn default() -> Self {
        CycleLimits {
            max_len: 5,
            max_expand_degree: 512,
            max_cycles: 200_000,
        }
    }
}

/// Reusable enumerator of anchored simple cycles.
pub struct CycleFinder<'g> {
    graph: &'g KbGraph,
    limits: CycleLimits,
    /// One neighbour buffer per DFS depth, reused across calls.
    neighbor_bufs: Vec<Vec<Node>>,
}

impl<'g> CycleFinder<'g> {
    /// Creates a finder with the given limits.
    pub fn new(graph: &'g KbGraph, limits: CycleLimits) -> Self {
        let neighbor_bufs = (0..limits.max_len).map(|_| Vec::new()).collect();
        CycleFinder {
            graph,
            limits,
            neighbor_bufs,
        }
    }

    /// Enumerates all simple cycles of length `3..=max_len` through
    /// `anchor`, each reported once (direction-deduplicated).
    pub fn cycles_through(&mut self, anchor: Node) -> Vec<Cycle> {
        let mut out = Vec::new();
        self.visit_cycles(anchor, |c| out.push(c.clone()));
        out
    }

    /// Visitor-based enumeration; avoids materializing all cycles when the
    /// caller only accumulates statistics.
    pub fn visit_cycles<F: FnMut(&Cycle)>(&mut self, anchor: Node, mut f: F) {
        let mut path: Vec<Node> = Vec::with_capacity(self.limits.max_len);
        path.push(anchor);
        let mut emitted = 0usize;
        // Take the buffers out to appease the borrow checker; restored after.
        let mut bufs = std::mem::take(&mut self.neighbor_bufs);
        Self::dfs(
            self.graph,
            &self.limits,
            anchor,
            &mut path,
            &mut bufs,
            &mut emitted,
            &mut f,
        );
        self.neighbor_bufs = bufs;
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<F: FnMut(&Cycle)>(
        graph: &KbGraph,
        limits: &CycleLimits,
        anchor: Node,
        path: &mut Vec<Node>,
        bufs: &mut [Vec<Node>],
        emitted: &mut usize,
        f: &mut F,
    ) {
        if *emitted >= limits.max_cycles {
            return;
        }
        let depth = path.len();
        let current = *path.last().expect("path never empty");
        // Close the cycle if long enough and an edge back to anchor exists.
        if depth >= 3 && graph.connected(current, anchor) {
            // Direction dedup: require path[1] < path[last].
            if path[1] < path[depth - 1] {
                let mut edges = 0u32;
                for w in path.windows(2) {
                    edges += graph.edge_multiplicity(w[0], w[1]);
                }
                edges += graph.edge_multiplicity(current, anchor);
                let cycle = Cycle {
                    nodes: path.clone(),
                    edges,
                };
                *emitted += 1;
                f(&cycle);
                if *emitted >= limits.max_cycles {
                    return;
                }
            }
        }
        if depth == limits.max_len {
            return;
        }
        let (buf, rest) = bufs.split_first_mut().expect("buffer per depth");
        graph.undirected_neighbors(current, buf);
        if buf.len() > limits.max_expand_degree && depth > 1 {
            return;
        }
        #[allow(clippy::needless_range_loop)] // buf is re-borrowed via rest in the recursion
        for i in 0..buf.len() {
            let next = buf[i];
            if next == anchor || path.contains(&next) {
                continue;
            }
            path.push(next);
            Self::dfs(graph, limits, anchor, path, rest, emitted, f);
            path.pop();
            if *emitted >= limits.max_cycles {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::{ArticleId, CategoryId};

    /// Triangle: a ↔ x, both members of category c.
    fn triangle_graph() -> (KbGraph, ArticleId, ArticleId, CategoryId) {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, x);
        b.add_membership(a, c);
        b.add_membership(x, c);
        (b.build(), a, x, c)
    }

    #[test]
    fn finds_triangle_once() {
        let (g, a, x, c) = triangle_graph();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        let cycles = finder.cycles_through(Node::Article(a));
        assert_eq!(cycles.len(), 1);
        let cy = &cycles[0];
        assert_eq!(cy.len(), 3);
        let nodes: Vec<Node> = cy.nodes.clone();
        assert!(nodes.contains(&Node::Article(a)));
        assert!(nodes.contains(&Node::Article(x)));
        assert!(nodes.contains(&Node::Category(c)));
    }

    #[test]
    fn triangle_edge_count_counts_double_link() {
        let (g, a, _, _) = triangle_graph();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        let cycles = finder.cycles_through(Node::Article(a));
        // a↔x contributes 2, two memberships contribute 1 each → 4 edges.
        assert_eq!(cycles[0].edges, 4);
        // density = (4 - 3) / (2*3)
        assert!((cycles[0].extra_edge_density() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn category_ratio_of_triangle() {
        let (g, a, _, _) = triangle_graph();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        let cycles = finder.cycles_through(Node::Article(a));
        assert!((cycles[0].category_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    /// Square: a ↔ x articles; a∈c1, x∈c2, c1 subcat of c2.
    #[test]
    fn finds_square_cycle() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c2);
        b.add_subcategory(c1, c2);
        let g = b.build();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        let cycles = finder.cycles_through(Node::Article(a));
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
        assert_eq!(cycles[0].category_count(), 2);
    }

    #[test]
    fn no_cycles_in_tree() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let y = b.add_article("y");
        b.add_article_link(a, x);
        b.add_article_link(a, y);
        let g = b.build();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        assert!(finder.cycles_through(Node::Article(a)).is_empty());
    }

    #[test]
    fn double_link_alone_is_not_a_cycle() {
        // A pair a ↔ x has 2 edges but only 2 nodes; the paper's cycles
        // start at length 3.
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        b.add_mutual_link(a, x);
        let g = b.build();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        assert!(finder.cycles_through(Node::Article(a)).is_empty());
    }

    #[test]
    fn respects_max_len() {
        // Pentagon of articles (single links, undirected connectivity).
        let mut b = GraphBuilder::new();
        let ids: Vec<ArticleId> = (0..5).map(|i| b.add_article(&format!("n{i}"))).collect();
        for i in 0..5 {
            b.add_article_link(ids[i], ids[(i + 1) % 5]);
        }
        let g = b.build();
        let mut f5 = CycleFinder::new(
            &g,
            CycleLimits {
                max_len: 5,
                ..CycleLimits::default()
            },
        );
        assert_eq!(f5.cycles_through(Node::Article(ids[0])).len(), 1);
        let mut f4 = CycleFinder::new(
            &g,
            CycleLimits {
                max_len: 4,
                ..CycleLimits::default()
            },
        );
        assert!(f4.cycles_through(Node::Article(ids[0])).is_empty());
    }

    #[test]
    fn max_cycles_cap_is_respected() {
        // Complete-ish graph to generate many cycles.
        let mut b = GraphBuilder::new();
        let ids: Vec<ArticleId> = (0..8).map(|i| b.add_article(&format!("n{i}"))).collect();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    b.add_article_link(ids[i], ids[j]);
                }
            }
        }
        let g = b.build();
        let mut finder = CycleFinder::new(
            &g,
            CycleLimits {
                max_len: 5,
                max_expand_degree: 512,
                max_cycles: 10,
            },
        );
        let cycles = finder.cycles_through(Node::Article(ids[0]));
        assert_eq!(cycles.len(), 10);
    }

    #[test]
    fn each_cycle_reported_once() {
        // Square of articles with all mutual links along the square only.
        let mut b = GraphBuilder::new();
        let ids: Vec<ArticleId> = (0..4).map(|i| b.add_article(&format!("n{i}"))).collect();
        for i in 0..4 {
            b.add_mutual_link(ids[i], ids[(i + 1) % 4]);
        }
        let g = b.build();
        let mut finder = CycleFinder::new(&g, CycleLimits::default());
        let cycles = finder.cycles_through(Node::Article(ids[0]));
        let squares: Vec<_> = cycles.iter().filter(|c| c.len() == 4).collect();
        assert_eq!(squares.len(), 1, "square cycle must be deduplicated");
    }
}
