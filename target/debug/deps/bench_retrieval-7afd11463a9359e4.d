/root/repo/target/debug/deps/bench_retrieval-7afd11463a9359e4.d: crates/bench/benches/bench_retrieval.rs

/root/repo/target/debug/deps/bench_retrieval-7afd11463a9359e4: crates/bench/benches/bench_retrieval.rs

crates/bench/benches/bench_retrieval.rs:
