// Fixture: the expensive work runs on state detached from the mutex —
// the guard only spans the cheap detach and install phases.

pub fn flush_outside_lock(&self) {
    let task = self.live.lock().detach_buffer();
    let segment = task.seal();
    let mut live = self.live.lock();
    live.install(segment);
}
