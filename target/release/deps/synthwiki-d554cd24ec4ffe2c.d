/root/repo/target/release/deps/synthwiki-d554cd24ec4ffe2c.d: crates/synthwiki/src/lib.rs crates/synthwiki/src/concepts.rs crates/synthwiki/src/config.rs crates/synthwiki/src/dataset.rs crates/synthwiki/src/docs.rs crates/synthwiki/src/groundtruth.rs crates/synthwiki/src/kb.rs crates/synthwiki/src/persist.rs crates/synthwiki/src/queries.rs crates/synthwiki/src/words.rs

/root/repo/target/release/deps/libsynthwiki-d554cd24ec4ffe2c.rlib: crates/synthwiki/src/lib.rs crates/synthwiki/src/concepts.rs crates/synthwiki/src/config.rs crates/synthwiki/src/dataset.rs crates/synthwiki/src/docs.rs crates/synthwiki/src/groundtruth.rs crates/synthwiki/src/kb.rs crates/synthwiki/src/persist.rs crates/synthwiki/src/queries.rs crates/synthwiki/src/words.rs

/root/repo/target/release/deps/libsynthwiki-d554cd24ec4ffe2c.rmeta: crates/synthwiki/src/lib.rs crates/synthwiki/src/concepts.rs crates/synthwiki/src/config.rs crates/synthwiki/src/dataset.rs crates/synthwiki/src/docs.rs crates/synthwiki/src/groundtruth.rs crates/synthwiki/src/kb.rs crates/synthwiki/src/persist.rs crates/synthwiki/src/queries.rs crates/synthwiki/src/words.rs

crates/synthwiki/src/lib.rs:
crates/synthwiki/src/concepts.rs:
crates/synthwiki/src/config.rs:
crates/synthwiki/src/dataset.rs:
crates/synthwiki/src/docs.rs:
crates/synthwiki/src/groundtruth.rs:
crates/synthwiki/src/kb.rs:
crates/synthwiki/src/persist.rs:
crates/synthwiki/src/queries.rs:
crates/synthwiki/src/words.rs:
