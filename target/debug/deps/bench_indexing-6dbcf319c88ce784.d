/root/repo/target/debug/deps/bench_indexing-6dbcf319c88ce784.d: crates/bench/benches/bench_indexing.rs

/root/repo/target/debug/deps/bench_indexing-6dbcf319c88ce784: crates/bench/benches/bench_indexing.rs

crates/bench/benches/bench_indexing.rs:
