/root/repo/target/release/deps/entitylink-de4e400119a93582.d: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

/root/repo/target/release/deps/libentitylink-de4e400119a93582.rlib: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

/root/repo/target/release/deps/libentitylink-de4e400119a93582.rmeta: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

crates/entitylink/src/lib.rs:
crates/entitylink/src/corpus.rs:
crates/entitylink/src/dictionary.rs:
crates/entitylink/src/linker.rs:
crates/entitylink/src/noise.rs:
crates/entitylink/src/spotter.rs:
