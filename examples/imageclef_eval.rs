//! Full evaluation pipeline on the synthetic Image CLEF-like dataset:
//! generate the world, index the collection, run the QL baselines and
//! every SQE configuration, and print a Table-1-style comparison with
//! paired-t-test significance markers.
//!
//! ```text
//! cargo run --release --example imageclef_eval            # full scale
//! cargo run --example imageclef_eval -- --small           # seconds
//! ```

use ireval::precision::{mean_precision, PrecisionTable, TREC_CUTOFFS};
use ireval::{paired_t_test, Qrels, Run};
use ireval::precision::per_query_precision;
use searchlite::{Analyzer, IndexBuilder, QlParams};
use sqe::{ExpandConfig, MotifSet, SqeConfig, SqePipeline};
use synthwiki::{TestBed, TestBedConfig};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        TestBedConfig::small()
    } else {
        TestBedConfig::full()
    };
    eprintln!("generating test bed...");
    let bed = TestBed::generate(&cfg);
    let dataset = bed.dataset("imageclef");
    let collection = bed.collection_of(dataset);

    eprintln!("indexing {} documents...", collection.docs.len());
    let mut builder = IndexBuilder::new(Analyzer::english());
    for d in &collection.docs {
        builder
            .add_document(&d.id, &d.text)
            .expect("generated ids are unique");
    }
    let index = builder.build();

    let pipeline = SqePipeline::from_index(
        &bed.kb.graph,
        &index,
        SqeConfig {
            expand: ExpandConfig::default(),
            ql: QlParams { mu: 15.0 },
            depth: 1000,
        },
    );

    // qrels from the generator's judgments.
    let mut qrels = Qrels::new();
    for q in &dataset.queries {
        qrels.add_query(&q.id);
        for d in &dataset.relevant[&q.id] {
            qrels.add_judgment(&q.id, d);
        }
    }

    // Build a run per configuration.
    let mut runs: Vec<Run> = Vec::new();
    for (name, motifs) in [
        ("SQE_T", MotifSet::triangular()),
        ("SQE_T&S", MotifSet::t_and_s()),
        ("SQE_S", MotifSet::square()),
    ] {
        let mut run = Run::new(name);
        for q in &dataset.queries {
            let nodes: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            let (hits, _) = pipeline.rank_sqe(&q.text, &nodes, &motifs);
            run.set_ranking(&q.id, pipeline.external_ids(&hits));
        }
        runs.push(run);
    }
    let mut baseline = Run::new("QL_Q");
    for q in &dataset.queries {
        let hits = pipeline.rank_user(&q.text);
        baseline.set_ranking(&q.id, pipeline.external_ids(&hits));
    }

    // Report.
    println!("{:<10}", "run");
    print!("{:<10}", "");
    for k in TREC_CUTOFFS {
        print!("{:>9}", format!("P@{k}"));
    }
    println!();
    print!("{:<10}", baseline.name());
    for k in TREC_CUTOFFS {
        print!("{:>9.3}", mean_precision(&baseline, &qrels, k));
    }
    println!();
    for run in &runs {
        print!("{:<10}", run.name());
        for k in TREC_CUTOFFS {
            let p = mean_precision(run, &qrels, k);
            let sig = paired_t_test(
                &per_query_precision(run, &qrels, k),
                &per_query_precision(&baseline, &qrels, k),
            )
            .is_some_and(|t| t.significant_improvement(0.05));
            print!("{:>8.3}{}", p, if sig { "†" } else { " " });
        }
        println!();
    }
    let best = PrecisionTable::evaluate(&runs[1], &qrels);
    println!(
        "\nSQE_T&S improves P@10 by {:+.1}% over the unexpanded query",
        (best.at(10) / mean_precision(&baseline, &qrels, 10) - 1.0) * 100.0
    );
}
