//! The paper's qualitative claims, asserted end-to-end on the small
//! preset. Each test names the claim it guards; the full-scale versions
//! are the tables in EXPERIMENTS.md.

use ireval::precision::mean_precision;
use ireval::{Qrels, Run};
use searchlite::{Analyzer, Index, IndexBuilder, QlParams};
use sqe::{MotifSet, SqeConfig, SqePipeline};
use synthwiki::{Dataset, TestBed, TestBedConfig};

struct World {
    bed: TestBed,
    indexes: Vec<Index>,
}

impl World {
    fn new() -> Self {
        let bed = TestBed::generate(&TestBedConfig::small());
        let indexes = bed
            .collections
            .iter()
            .map(|coll| {
                let mut b = IndexBuilder::new(Analyzer::english());
                for d in &coll.docs {
                    b.add_document(&d.id, &d.text).expect("generated ids are unique");
                }
                b.build()
            })
            .collect();
        World { bed, indexes }
    }

    fn qrels(&self, dataset: &Dataset) -> Qrels {
        let mut q = Qrels::new();
        for spec in &dataset.queries {
            q.add_query(&spec.id);
            for d in &dataset.relevant[&spec.id] {
                q.add_judgment(&spec.id, d);
            }
        }
        q
    }

    fn pipeline<'a>(&'a self, dataset: &Dataset) -> SqePipeline<'a> {
        SqePipeline::from_index(
            &self.bed.kb.graph,
            &self.indexes[dataset.collection],
            SqeConfig {
                ql: QlParams { mu: 15.0 },
                ..SqeConfig::default()
            },
        )
    }

    fn run(&self, dataset: &Dataset, name: &str, motifs: &MotifSet) -> Run {
        let p = self.pipeline(dataset);
        let mut run = Run::new(name);
        for q in &dataset.queries {
            let nodes: Vec<_> = q.targets.iter().map(|&e| self.bed.kb.article_of[e]).collect();
            let (hits, _) = p.rank_sqe(&q.text, &nodes, motifs);
            run.set_ranking(&q.id, p.external_ids(&hits));
        }
        run
    }
}

/// Section 2.2: "the triangular motif allows achieving better precision in
/// small tops … the square motif allows achieving precision in large tops"
/// — asserted as: T&S/S beat T at depth (the crossover direction).
#[test]
fn square_motifs_win_at_depth() {
    let w = World::new();
    let ds = w.bed.dataset("imageclef");
    let qrels = w.qrels(ds);
    let t = w.run(ds, "T", &MotifSet::triangular());
    let s = w.run(ds, "S", &MotifSet::square());
    let deep_t = mean_precision(&t, &qrels, 1000);
    let deep_s = mean_precision(&s, &qrels, 1000);
    assert!(
        deep_s > deep_t,
        "square must out-recall triangular at depth: S {deep_s:.4} vs T {deep_t:.4}"
    );
}

/// Section 4.1: the triangular motif introduces far fewer expansion
/// features than the square motif (paper: 0.76 vs ~20).
#[test]
fn triangular_features_are_scarce() {
    let w = World::new();
    let ds = w.bed.dataset("imageclef");
    let p = w.pipeline(ds);
    let (mut t_total, mut s_total) = (0usize, 0usize);
    for q in &ds.queries {
        let nodes: Vec<_> = q.targets.iter().map(|&e| w.bed.kb.article_of[e]).collect();
        t_total += p.build_query_graph(&nodes, &MotifSet::triangular()).num_expansions();
        s_total += p.build_query_graph(&nodes, &MotifSet::square()).num_expansions();
    }
    assert!(
        s_total >= t_total * 3,
        "square ({s_total}) must dwarf triangular ({t_total})"
    );
    assert!(t_total > 0, "triangular must fire at all");
}

/// Section 4.2 / Figure 6: manual entity selection upper-bounds automatic
/// linking.
#[test]
fn manual_selection_bounds_automatic() {
    let w = World::new();
    let ds = w.bed.dataset("imageclef");
    let qrels = w.qrels(ds);
    let p = w.pipeline(ds);
    let mut dict = entitylink::Dictionary::new();
    dict.extend(w.bed.kb.linker_entries(&w.bed.space));
    let linker = entitylink::EntityLinker::new(dict, entitylink::LinkerConfig::default());

    let mut manual = Run::new("M");
    let mut auto = Run::new("A");
    for q in &ds.queries {
        let m_nodes: Vec<_> = q.targets.iter().map(|&e| w.bed.kb.article_of[e]).collect();
        let a_nodes: Vec<_> = linker.link(&q.text).into_iter().take(3).map(|l| l.article).collect();
        manual.set_ranking(&q.id, p.rank_sqe_c(&q.text, &m_nodes));
        auto.set_ranking(&q.id, p.rank_sqe_c(&q.text, &a_nodes));
    }
    // Averaged over several cutoffs, manual must not lose to automatic.
    let avg = |run: &Run| -> f64 {
        [5usize, 10, 20, 100]
            .iter()
            .map(|&k| mean_precision(run, &qrels, k))
            .sum::<f64>()
    };
    assert!(
        avg(&manual) + 1e-9 >= avg(&auto),
        "manual {m:.3} must be ≥ automatic {a:.3}",
        m = avg(&manual),
        a = avg(&auto)
    );
}

/// Section 4.4: query-graph construction is fast — milliseconds per query
/// set even in a debug-friendly test environment.
#[test]
fn expansion_is_subsecond() {
    let w = World::new();
    let ds = w.bed.dataset("imageclef");
    let p = w.pipeline(ds);
    let start = std::time::Instant::now();
    for q in &ds.queries {
        let nodes: Vec<_> = q.targets.iter().map(|&e| w.bed.kb.article_of[e]).collect();
        let _ = p.build_query_graph(&nodes, &MotifSet::t_and_s());
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 1000,
        "expansion over the whole query set took {elapsed:?}"
    );
}

/// Table 4's ordering: building T&S costs at least as much as T alone
/// (asserted on work, not wall-clock: expansion counts).
#[test]
fn union_config_does_more_work() {
    let w = World::new();
    let ds = w.bed.dataset("imageclef");
    let p = w.pipeline(ds);
    for q in ds.queries.iter().take(6) {
        let nodes: Vec<_> = q.targets.iter().map(|&e| w.bed.kb.article_of[e]).collect();
        let t = p.build_query_graph(&nodes, &MotifSet::triangular()).num_expansions();
        let ts = p.build_query_graph(&nodes, &MotifSet::t_and_s()).num_expansions();
        assert!(ts >= t);
    }
}
