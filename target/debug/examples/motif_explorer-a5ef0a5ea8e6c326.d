/root/repo/target/debug/examples/motif_explorer-a5ef0a5ea8e6c326.d: examples/motif_explorer.rs

/root/repo/target/debug/examples/motif_explorer-a5ef0a5ea8e6c326: examples/motif_explorer.rs

examples/motif_explorer.rs:
