//! Drives each lint rule over its bad/good fixture pair. Fixtures live in
//! `tests/fixtures/` as data files (never compiled); path-scoped rules are
//! exercised by linting the fixture text under the hot/persisted path it
//! stands in for.

use analyzer::{lint_source, lint_workspace, LintConfig, Severity};

fn diags(rel: &str, src: &str) -> Vec<analyzer::Diagnostic> {
    lint_source(rel, src, &LintConfig::default())
}

fn rule_count(rel: &str, src: &str, rule: &str) -> usize {
    diags(rel, src).iter().filter(|d| d.rule == rule).count()
}

#[test]
fn nan_sort_bad_fires_per_call_site() {
    let src = include_str!("fixtures/nan_sort_bad.rs");
    assert_eq!(
        rule_count("crates/x/src/lib.rs", src, "no-nan-unsafe-sort"),
        3,
        "sort_by, max_by, and binary_search_by call sites must each fire"
    );
}

#[test]
fn nan_sort_good_is_clean() {
    let src = include_str!("fixtures/nan_sort_good.rs");
    assert_eq!(rule_count("crates/x/src/lib.rs", src, "no-nan-unsafe-sort"), 0);
}

#[test]
fn rng_bad_fires_for_both_sources() {
    let src = include_str!("fixtures/rng_bad.rs");
    assert_eq!(
        rule_count("crates/x/src/lib.rs", src, "no-nondeterministic-rng"),
        2,
        "thread_rng and SystemTime::now must each fire"
    );
}

#[test]
fn rng_bad_is_exempt_under_benches() {
    let src = include_str!("fixtures/rng_bad.rs");
    assert_eq!(
        rule_count("crates/bench/benches/e2e.rs", src, "no-nondeterministic-rng"),
        0
    );
}

#[test]
fn rng_good_is_clean() {
    let src = include_str!("fixtures/rng_good.rs");
    assert_eq!(rule_count("crates/x/src/lib.rs", src, "no-nondeterministic-rng"), 0);
}

#[test]
fn hot_path_bad_fires_only_on_hot_files() {
    let src = include_str!("fixtures/hot_path_bad.rs");
    let hot = diags("crates/searchlite/src/topk.rs", src);
    let unwraps: Vec<_> = hot
        .iter()
        .filter(|d| d.rule == "no-panicking-hot-path" && d.severity == Severity::Error)
        .collect();
    assert_eq!(unwraps.len(), 1, "one .unwrap() at error severity");
    let indexing: Vec<_> = hot
        .iter()
        .filter(|d| d.rule == "no-panicking-hot-path" && d.severity == Severity::Warn)
        .collect();
    assert_eq!(indexing.len(), 1, "one slice index at demoted severity");
    // The same text outside the hot list is not this rule's business.
    assert_eq!(rule_count("crates/x/src/lib.rs", src, "no-panicking-hot-path"), 0);
}

#[test]
fn hot_path_good_is_clean() {
    let src = include_str!("fixtures/hot_path_good.rs");
    assert_eq!(
        rule_count("crates/searchlite/src/topk.rs", src, "no-panicking-hot-path"),
        0,
        "expect with invariant message, get(), and test-module unwraps are all fine"
    );
}

#[test]
fn persist_bad_fires_per_type() {
    let src = include_str!("fixtures/persist_bad.rs");
    assert_eq!(
        rule_count("crates/kbgraph/src/graph.rs", src, "persist-types-derive-serde"),
        2,
        "struct and enum without serde derives must each fire"
    );
    assert_eq!(rule_count("crates/x/src/lib.rs", src, "persist-types-derive-serde"), 0);
}

#[test]
fn persist_good_is_clean() {
    let src = include_str!("fixtures/persist_good.rs");
    assert_eq!(
        rule_count("crates/kbgraph/src/graph.rs", src, "persist-types-derive-serde"),
        0,
        "derived types pass and the lint:allow opt-out holds"
    );
}

/// End-to-end: a workspace tree seeded with a bad fixture produces
/// error-severity findings via the directory walker, and vendor/ is
/// skipped.
#[test]
fn workspace_walk_finds_bad_fixture_and_skips_vendor() {
    let root = std::env::temp_dir().join(format!("sqe-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/x/src");
    let vendor_dir = root.join("vendor/dep/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::create_dir_all(&vendor_dir).unwrap();
    std::fs::write(src_dir.join("lib.rs"), include_str!("fixtures/nan_sort_bad.rs")).unwrap();
    std::fs::write(vendor_dir.join("lib.rs"), include_str!("fixtures/nan_sort_bad.rs")).unwrap();

    let diags = lint_workspace(&root, &LintConfig::default()).unwrap();
    std::fs::remove_dir_all(&root).unwrap();

    assert!(diags.iter().any(|d| d.severity == Severity::Error));
    assert!(
        diags.iter().all(|d| !d.path.starts_with("vendor/")),
        "vendored sources must not be linted"
    );
}
