//! Regeneration of the paper's Tables 1–3.

use ireval::precision::{PrecisionTable, TREC_CUTOFFS};
use sqe::MotifSet;

use crate::context::ExperimentContext;
use crate::report::{eval_row, fmt_pct, format_precision_table, pct_gain, EvalRow};
use crate::runs::PrfBase;

/// Table 1: ImageCLEF, manual entity selection — the QL baselines, the
/// three motif configurations, and the ground-truth upper bound.
pub fn table1(ctx: &ExperimentContext) -> String {
    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let ql_q = r.run_ql_q();
    let ql_e = r.run_ql_e(false);
    let ql_qe = r.run_ql_qe(false);
    let baselines = [&ql_q, &ql_e, &ql_qe];
    let rows = vec![
        eval_row(&ql_q, &qrels, &[]),
        eval_row(&ql_e, &qrels, &[]),
        eval_row(&ql_qe, &qrels, &[]),
        eval_row(&r.run_sqe(&MotifSet::triangular(), false), &qrels, &baselines),
        eval_row(&r.run_sqe(&MotifSet::t_and_s(), false), &qrels, &baselines),
        eval_row(&r.run_sqe(&MotifSet::square(), false), &qrels, &baselines),
        eval_row(&r.run_sqe_ub(), &qrels, &[]),
    ];
    let mut out = format_precision_table("Table 1: Image CLEF configuration comparison", &rows);
    // The paper's companion statistic: fraction of the upper bound that
    // blind motif traversal achieves.
    let ub = rows.last().expect("ub row");
    let mut ratios = Vec::new();
    for row in &rows[3..6] {
        for i in 0..TREC_CUTOFFS.len() {
            if ub.values[i] > 0.0 {
                ratios.push(row.values[i] / ub.values[i]);
            }
        }
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        out.push_str(&format!(
            "SQE achieves on average {:.2}% of SQE_UB (paper: 85.86%)\n",
            avg * 100.0
        ));
    }
    out.push_str(&format!(
        "avg expansion features/query: T={:.2} T&S={:.2} S={:.2} (paper: 0.76 / 20.96 / 20.48)\n",
        r.avg_expansion_features(&MotifSet::triangular()),
        r.avg_expansion_features(&MotifSet::t_and_s()),
        r.avg_expansion_features(&MotifSet::square()),
    ));
    out
}

/// One sub-table of Table 2 (a: imageclef, b: chic2012, c: chic2013).
pub fn table2(ctx: &ExperimentContext, dataset: &str) -> String {
    let r = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    let ql_q = r.run_ql_q();
    let ql_e_m = r.run_ql_e(false);
    let ql_e_a = r.run_ql_e(true);
    let ql_qe_m = r.run_ql_qe(false);
    let ql_qe_a = r.run_ql_qe(true);
    let baselines = [&ql_q, &ql_e_m, &ql_e_a, &ql_qe_m, &ql_qe_a];
    let rows = vec![
        eval_row(&ql_q, &qrels, &[]),
        eval_row(&ql_e_m, &qrels, &[]),
        eval_row(&ql_e_a, &qrels, &[]),
        eval_row(&ql_qe_m, &qrels, &[]),
        eval_row(&ql_qe_a, &qrels, &[]),
        eval_row(&r.run_ql_x(), &qrels, &baselines),
        eval_row(&r.run_sqe_c(false), &qrels, &baselines),
        eval_row(&r.run_sqe_c(true), &qrels, &baselines),
    ];
    format_precision_table(&format!("Table 2 ({dataset}): SQE_C evaluation"), &rows)
}

/// One sub-table of Table 3: PRF rows with %G against their Table-2
/// counterparts, and the SQE_C/PRF combination.
pub fn table3(ctx: &ExperimentContext, dataset: &str) -> String {
    let r = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    // References from Table 2.
    let ref_q = PrecisionTable::evaluate(&r.run_ql_q(), &qrels);
    let ref_e = PrecisionTable::evaluate(&r.run_ql_e(false), &qrels);
    let ref_qe = PrecisionTable::evaluate(&r.run_ql_qe(false), &qrels);
    let ref_sqe_c = PrecisionTable::evaluate(&r.run_sqe_c(false), &qrels);
    let prf_q = PrecisionTable::evaluate(&r.run_prf(PrfBase::UserQuery), &qrels);
    let prf_e = PrecisionTable::evaluate(&r.run_prf(PrfBase::Entities), &qrels);
    let prf_qe = PrecisionTable::evaluate(&r.run_prf(PrfBase::Both), &qrels);
    let sqe_prf = PrecisionTable::evaluate(&r.run_sqe_c_prf(), &qrels);

    let cutoffs = [5usize, 10, 15, 20, 30];
    let mut s = format!("=== Table 3 ({dataset}): PRF comparison ===\n");
    s.push_str(&format!("{:<12}", ""));
    for k in cutoffs {
        s.push_str(&format!("{:>8}{:>9}", format!("P@{k}"), "%G"));
    }
    s.push('\n');
    let mut row = |name: &str, got: &PrecisionTable, reference: &PrecisionTable| {
        s.push_str(&format!("{name:<12}"));
        for k in cutoffs {
            let g = pct_gain(got.at(k), reference.at(k));
            s.push_str(&format!("{:>8.3}{:>9}", got.at(k), fmt_pct(g)));
        }
        s.push('\n');
    };
    row("PRF_Q", &prf_q, &ref_q);
    row("PRF_E", &prf_e, &ref_e);
    row("PRF_Q&E", &prf_qe, &ref_qe);
    row("SQE_C/PRF", &sqe_prf, &ref_sqe_c);
    s
}

/// All three Table 2 sub-tables.
pub fn table2_all(ctx: &ExperimentContext) -> String {
    let mut s = String::new();
    for d in ["imageclef", "chic2012", "chic2013"] {
        s.push_str(&table2(ctx, d));
        s.push('\n');
    }
    s
}

/// All three Table 3 sub-tables.
pub fn table3_all(ctx: &ExperimentContext) -> String {
    let mut s = String::new();
    for d in ["imageclef", "chic2012", "chic2013"] {
        s.push_str(&table3(ctx, d));
        s.push('\n');
    }
    s
}

/// Rows of a table as `EvalRow`s, for integration tests that assert on
/// values rather than formatting.
pub fn table1_rows(ctx: &ExperimentContext) -> Vec<EvalRow> {
    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let ql_q = r.run_ql_q();
    let ql_e = r.run_ql_e(false);
    let ql_qe = r.run_ql_qe(false);
    let baselines = [&ql_q, &ql_e, &ql_qe];
    vec![
        eval_row(&ql_q, &qrels, &[]),
        eval_row(&ql_e, &qrels, &[]),
        eval_row(&ql_qe, &qrels, &[]),
        eval_row(&r.run_sqe(&MotifSet::triangular(), false), &qrels, &baselines),
        eval_row(&r.run_sqe(&MotifSet::t_and_s(), false), &qrels, &baselines),
        eval_row(&r.run_sqe(&MotifSet::square(), false), &qrels, &baselines),
        eval_row(&r.run_sqe_ub(), &qrels, &[]),
    ]
}

/// Ablation table: the design choices Section 2.2 fixes by hand,
/// each removed in turn from the `SQE_T&S` configuration (ImageCLEF,
/// manual entities).
pub fn ablation(ctx: &ExperimentContext) -> String {
    use ireval::Run;
    use kbgraph::KbGraph;
    use sqe::{expand, CategoryCondition, LinkCondition, PatternMotif, QueryGraphBuilder};

    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let pipeline = r.pipeline();
    let graph: &KbGraph = pipeline.graph();

    // Each variant builds its own query graph / expansion config.
    #[allow(clippy::type_complexity)]
    let variants: Vec<(&str, Box<dyn Fn(&synthwiki::QuerySpec) -> searchlite::Query>)> = vec![
        (
            "full (T&S)",
            Box::new(|q: &synthwiki::QuerySpec| {
                let nodes = r.manual_nodes(q);
                pipeline.expand(&q.text, &nodes, &MotifSet::t_and_s()).query
            }),
        ),
        (
            "no |m_a| weighting",
            Box::new(|q: &synthwiki::QuerySpec| {
                let nodes = r.manual_nodes(q);
                let mut qg = pipeline.build_query_graph(&nodes, &MotifSet::t_and_s());
                for e in &mut qg.expansions {
                    e.1 = 1;
                }
                expand::build_expanded_query(
                    graph,
                    &q.text,
                    &qg,
                    pipeline.searcher().analyzer(),
                    &ctx.sqe_config.expand,
                )
                .query
            }),
        ),
        (
            "one-way links",
            Box::new(|q: &synthwiki::QuerySpec| {
                let nodes = r.manual_nodes(q);
                let builder = QueryGraphBuilder::new(
                    graph,
                    vec![
                        Box::new(PatternMotif {
                            link: LinkCondition::OutLink,
                            category: CategoryCondition::Superset,
                        }),
                        Box::new(PatternMotif {
                            link: LinkCondition::OutLink,
                            category: CategoryCondition::Adjacent,
                        }),
                    ],
                );
                let qg = builder.build(&nodes);
                expand::build_expanded_query(
                    graph,
                    &q.text,
                    &qg,
                    pipeline.searcher().analyzer(),
                    &ctx.sqe_config.expand,
                )
                .query
            }),
        ),
        (
            "no user part",
            Box::new(|q: &synthwiki::QuerySpec| {
                let nodes = r.manual_nodes(q);
                let qg = pipeline.build_query_graph(&nodes, &MotifSet::t_and_s());
                let cfg = sqe::ExpandConfig {
                    w_user: 0.0,
                    ..ctx.sqe_config.expand
                };
                expand::build_expanded_query(
                    graph,
                    &q.text,
                    &qg,
                    pipeline.searcher().analyzer(),
                    &cfg,
                )
                .query
            }),
        ),
        (
            "no category conds",
            Box::new(|q: &synthwiki::QuerySpec| {
                let nodes = r.manual_nodes(q);
                let builder = QueryGraphBuilder::new(
                    graph,
                    vec![Box::new(PatternMotif {
                        link: LinkCondition::Mutual,
                        category: CategoryCondition::Unconstrained,
                    })],
                );
                let qg = builder.build(&nodes);
                expand::build_expanded_query(
                    graph,
                    &q.text,
                    &qg,
                    pipeline.searcher().analyzer(),
                    &ctx.sqe_config.expand,
                )
                .query
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, make_query) in &variants {
        let mut run = Run::new(name);
        for q in &r.dataset().queries {
            let query = make_query(q);
            let hits =
                searchlite::ql::rank(pipeline.searcher(), &query, ctx.sqe_config.ql, 1000);
            run.set_ranking(&q.id, pipeline.external_ids(&hits));
        }
        rows.push(eval_row(&run, &qrels, &[]));
    }
    format_precision_table(
        "Ablations: SQE_T&S design choices removed in turn (Image CLEF)",
        &rows,
    )
}

/// Dirichlet μ sweep: SQE_T&S's improvement over the unexpanded query
/// at several smoothing masses (robustness of the headline to the one
/// retrieval hyper-parameter the harness sets).
pub fn mu_sweep(ctx: &ExperimentContext) -> String {
    use ireval::precision::mean_precision;
    use ireval::Run;
    use sqe::{SqeConfig, SqePipeline};

    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let dataset = r.dataset();
    let runner_pipeline = r.pipeline();
    let searcher = runner_pipeline.searcher();
    let mut s = String::from("=== Dirichlet μ sweep (Image CLEF, P@10) ===\n");
    s.push_str(&format!(
        "{:<8}{:>10}{:>12}{:>14}\n",
        "μ", "QL_Q", "SQE_T&S", "improvement"
    ));
    for mu in [5.0, 15.0, 50.0, 150.0, 500.0] {
        let cfg = SqeConfig {
            ql: searchlite::QlParams { mu },
            ..ctx.sqe_config
        };
        let pipeline = SqePipeline::new(&ctx.bed.kb.graph, searcher.clone(), cfg);
        let mut base = Run::new("QL_Q");
        let mut sqe_run = Run::new("SQE");
        for q in &dataset.queries {
            let nodes = r.manual_nodes(q);
            base.set_ranking(&q.id, pipeline.external_ids(&pipeline.rank_user(&q.text)));
            let (hits, _) = pipeline.rank_sqe(&q.text, &nodes, &MotifSet::t_and_s());
            sqe_run.set_ranking(&q.id, pipeline.external_ids(&hits));
        }
        let b = mean_precision(&base, &qrels, 10);
        let x = mean_precision(&sqe_run, &qrels, 10);
        s.push_str(&format!(
            "{mu:<8}{b:>10.3}{x:>12.3}{:>13}%\n",
            crate::report::fmt_pct(crate::report::pct_gain(x, b))
        ));
    }
    s
}

/// Retrieval-model sensitivity: rerun the unexpanded baseline and
/// `SQE_T&S` under Okapi BM25 instead of Dirichlet query likelihood.
/// SQE's advantage must survive the change of ranking function —
/// otherwise the "improvement" would be a smoothing artifact.
pub fn sensitivity(ctx: &ExperimentContext) -> String {
    use ireval::Run;
    use searchlite::bm25::{self, Bm25Params};

    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let pipeline = r.pipeline();
    let params = Bm25Params::default();

    let mut base = Run::new("BM25_Q");
    let mut sqe_run = Run::new("BM25 SQE_T&S");
    for q in &r.dataset().queries {
        let nodes = r.manual_nodes(q);
        let user = sqe::expand::user_part(&q.text, pipeline.searcher().analyzer());
        let hits = bm25::rank(pipeline.searcher(), &user, params, 1000);
        base.set_ranking(&q.id, pipeline.external_ids(&hits));
        let expanded = pipeline.expand(&q.text, &nodes, &MotifSet::t_and_s());
        let hits = bm25::rank(pipeline.searcher(), &expanded.query, params, 1000);
        sqe_run.set_ranking(&q.id, pipeline.external_ids(&hits));
    }
    let rows = vec![
        eval_row(&base, &qrels, &[]),
        eval_row(&sqe_run, &qrels, &[&base]),
    ];
    format_precision_table(
        "Sensitivity: SQE under BM25 instead of query likelihood (Image CLEF)",
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_on_small_world() {
        let ctx = ExperimentContext::small();
        let t1 = table1(&ctx);
        assert!(t1.contains("SQE_T&S"));
        assert!(t1.contains("SQE_UB"));
        let t2 = table2(&ctx, "chic2012");
        assert!(t2.contains("SQE_C (A)"));
        let t3 = table3(&ctx, "chic2013");
        assert!(t3.contains("SQE_C/PRF"));
        assert!(t3.contains("%G"));
    }
}
