//! Dirichlet-smoothed query-likelihood retrieval.
//!
//! Implements the paper's retrieval model (Section 2.3): the query
//! likelihood `P(Q|D) = Π_i P(w_i|D)` with the Dirichlet-smoothed feature
//! function `P(w|D) = (tf_{w,D} + μ·P(w|C)) / (|D| + μ)`, generalized to
//! n-gram (exact phrase) features and per-feature weights:
//!
//! `score(D) = Σ_f (λ_f / Σλ) · log P(f|D)`.
//!
//! Documents are ranked among the candidates that match at least one query
//! feature (standard OR-mode evaluation).

use rustc_hash::FxHashMap;

use crate::index::{DocId, Index, TermId};
use crate::structured::{Feature, Query};
use crate::topk::TopK;

/// Parameters of the Dirichlet query-likelihood scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QlParams {
    /// Dirichlet smoothing mass μ. Indri's default is 2500; the paper's
    /// short caption-like documents favour a smaller value, configured by
    /// the experiment harness.
    pub mu: f64,
}

impl Default for QlParams {
    fn default() -> Self {
        QlParams { mu: 2500.0 }
    }
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matched document.
    pub doc: DocId,
    /// Weighted log query likelihood.
    pub score: f64,
}

/// A query feature resolved against a concrete index.
enum ResolvedFeature {
    /// In-vocabulary single term.
    Term { term: TermId, weight: f64, pc: f64 },
    /// Out-of-vocabulary term: contributes only background smoothing.
    OovTerm { weight: f64, pc: f64 },
    /// Exact phrase with precomputed per-document frequencies.
    Phrase {
        tfs: FxHashMap<u32, u32>,
        weight: f64,
        pc: f64,
    },
}

impl ResolvedFeature {
    fn weight(&self) -> f64 {
        match self {
            ResolvedFeature::Term { weight, .. }
            | ResolvedFeature::OovTerm { weight, .. }
            | ResolvedFeature::Phrase { weight, .. } => *weight,
        }
    }
}

/// Resolves the query against the index: maps tokens to term ids, runs
/// phrase intersections once, and computes collection probabilities.
fn resolve(index: &Index, query: &Query) -> Vec<ResolvedFeature> {
    let mut resolved = Vec::with_capacity(query.len());
    for wf in query.features() {
        match &wf.feature {
            Feature::Term(tok) => match index.term_id(tok) {
                Some(t) => resolved.push(ResolvedFeature::Term {
                    term: t,
                    weight: wf.weight,
                    pc: index.collection_prob(Some(t)),
                }),
                None => resolved.push(ResolvedFeature::OovTerm {
                    weight: wf.weight,
                    pc: index.collection_prob(None),
                }),
            },
            Feature::Phrase(tokens) => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| index.term_id(t)).collect();
                match ids {
                    Some(ids) => {
                        let postings = index.phrase_postings(&ids);
                        resolved.push(positional_feature(index, postings, wf.weight));
                    }
                    None => resolved.push(ResolvedFeature::OovTerm {
                        weight: wf.weight,
                        pc: index.collection_prob(None),
                    }),
                }
            }
            Feature::Unordered { tokens, window } => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| index.term_id(t)).collect();
                match ids {
                    Some(ids) => {
                        let postings = index.unordered_window_postings(&ids, *window);
                        resolved.push(positional_feature(index, postings, wf.weight));
                    }
                    None => resolved.push(ResolvedFeature::OovTerm {
                        weight: wf.weight,
                        pc: index.collection_prob(None),
                    }),
                }
            }
        }
    }
    resolved
}

/// Wraps positional postings (phrase or unordered window) as a resolved
/// feature with an on-the-fly collection probability.
fn positional_feature(
    index: &Index,
    postings: Vec<(DocId, u32)>,
    weight: f64,
) -> ResolvedFeature {
    let coll: u64 = postings.iter().map(|&(_, tf)| tf as u64).sum();
    let tfs: FxHashMap<u32, u32> = postings.into_iter().map(|(d, tf)| (d.0, tf)).collect();
    ResolvedFeature::Phrase {
        tfs,
        weight,
        pc: index.collection_prob_for_count(coll),
    }
}

/// Scores one document under the resolved features.
fn score_resolved(index: &Index, features: &[ResolvedFeature], doc: DocId, mu: f64) -> f64 {
    let total: f64 = features.iter().map(|f| f.weight()).sum();
    if total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let dl = index.doc_len(doc) as f64;
    let denom = (dl + mu).ln();
    let mut score = 0.0;
    for f in features {
        let (tf, w, pc) = match f {
            ResolvedFeature::Term { term, weight, pc } => {
                (index.tf(*term, doc) as f64, *weight, *pc)
            }
            ResolvedFeature::OovTerm { weight, pc } => (0.0, *weight, *pc),
            ResolvedFeature::Phrase { tfs, weight, pc } => {
                (tfs.get(&doc.0).copied().unwrap_or(0) as f64, *weight, *pc)
            }
        };
        score += w / total * ((tf + mu * pc).ln() - denom);
    }
    score
}

/// Scores a single document (used by feedback and by tests that check the
/// formula against hand calculations).
pub fn score_document(index: &Index, query: &Query, doc: DocId, params: QlParams) -> f64 {
    let resolved = resolve(index, query);
    score_resolved(index, &resolved, doc, params.mu)
}

/// Reusable buffers for [`rank_with_scratch`]: the candidate union and the
/// bounded top-k collector survive across queries so batch serving does
/// not reallocate per query.
#[derive(Debug)]
pub struct QlScratch {
    candidates: Vec<u32>,
    top: TopK,
}

impl QlScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        QlScratch {
            candidates: Vec::new(),
            top: TopK::new(0),
        }
    }
}

impl Default for QlScratch {
    fn default() -> Self {
        QlScratch::new()
    }
}

/// Ranks the top `k` documents for `query`. Candidates are the documents
/// matching at least one in-vocabulary feature; they are scored with the
/// full weighted log-likelihood (absent features contribute their
/// background-smoothing mass).
pub fn rank(index: &Index, query: &Query, params: QlParams, k: usize) -> Vec<SearchHit> {
    rank_with_scratch(index, query, params, k, &mut QlScratch::new())
}

/// [`rank`] with caller-owned scratch buffers; identical output.
pub fn rank_with_scratch(
    index: &Index,
    query: &Query,
    params: QlParams,
    k: usize,
    scratch: &mut QlScratch,
) -> Vec<SearchHit> {
    let resolved = resolve(index, query);
    if resolved.is_empty() {
        return Vec::new();
    }
    // Candidate union.
    let candidates = &mut scratch.candidates;
    candidates.clear();
    for f in &resolved {
        match f {
            ResolvedFeature::Term { term, .. } => {
                candidates.extend_from_slice(index.postings(*term).docs());
            }
            ResolvedFeature::Phrase { tfs, .. } => {
                candidates.extend(tfs.keys().copied());
            }
            ResolvedFeature::OovTerm { .. } => {}
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    scratch.top.reset(k);
    for &doc in candidates.iter() {
        let s = score_resolved(index, &resolved, DocId(doc), params.mu);
        scratch.top.push(doc, s);
    }
    scratch
        .top
        .drain_sorted()
        .into_iter()
        .map(|(doc, score)| SearchHit {
            doc: DocId(doc),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;

    fn tiny() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d0", "cable car climbs the hill"); // len 5
        b.add_document("d1", "cable car cable car"); // len 4
        b.add_document("d2", "graffiti on the wall"); // len 4
        b.build()
    }

    #[test]
    fn dirichlet_formula_matches_hand_calculation() {
        let idx = tiny();
        let q = Query::parse_text("cable", &Analyzer::plain());
        let params = QlParams { mu: 10.0 };
        // P(cable|C) = 3/13; doc d0: tf=1, |D|=5.
        let expected = (1.0f64 + 10.0 * (3.0 / 13.0)).ln() - (5.0f64 + 10.0).ln();
        let got = score_document(&idx, &q, DocId(0), params);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn higher_tf_scores_higher() {
        let idx = tiny();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(hits[0].doc, DocId(1), "doc with tf=2 per term wins");
        assert_eq!(hits.len(), 2, "only matching docs are candidates");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn phrase_feature_rewards_adjacency() {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("adj", "cable car network");
        b.add_document("sep", "cable network of the car");
        let idx = b.build();
        let mut q = Query::new();
        q.push_phrase_tokens(vec!["cable".into(), "car".into()], 1.0);
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "adj");
        // The separated doc still appears via background smoothing of the
        // phrase? No: it has phrase tf 0 and is not a candidate.
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unordered_window_feature_matches_separated_terms() {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("near", "cable red car");
        b.add_document("far", "cable one two three four five six seven car");
        let idx = b.build();
        let mut q = Query::new();
        q.push_unordered_text("cable car", &Analyzer::plain(), 4, 1.0);
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        let ids: Vec<&str> = hits.iter().map(|h| idx.external_id(h.doc)).collect();
        assert_eq!(ids, vec!["near"], "only the within-window doc matches");
    }

    #[test]
    fn oov_query_returns_empty() {
        let idx = tiny();
        let q = Query::parse_text("zeppelin", &Analyzer::plain());
        assert!(rank(&idx, &q, QlParams::default(), 10).is_empty());
    }

    #[test]
    fn empty_query_returns_empty() {
        let idx = tiny();
        let q = Query::new();
        assert!(rank(&idx, &q, QlParams::default(), 10).is_empty());
    }

    #[test]
    fn weights_shift_ranking() {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("c", "cable cable cable");
        b.add_document("g", "graffiti graffiti graffiti");
        let idx = b.build();
        let mut q = Query::new();
        q.push_term("cable".into(), 0.1);
        q.push_term("graffiti".into(), 0.9);
        let hits = rank(&idx, &q, QlParams { mu: 5.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "g");
        let mut q2 = Query::new();
        q2.push_term("cable".into(), 0.9);
        q2.push_term("graffiti".into(), 0.1);
        let hits2 = rank(&idx, &q2, QlParams { mu: 5.0 }, 10);
        assert_eq!(idx.external_id(hits2[0].doc), "c");
    }

    #[test]
    fn score_is_weight_normalized() {
        // Scaling all weights by a constant must not change scores.
        let idx = tiny();
        let mut q1 = Query::new();
        q1.push_term("cable".into(), 1.0);
        q1.push_term("hill".into(), 2.0);
        let mut q2 = Query::new();
        q2.push_term("cable".into(), 10.0);
        q2.push_term("hill".into(), 20.0);
        let s1 = score_document(&idx, &q1, DocId(0), QlParams::default());
        let s2 = score_document(&idx, &q2, DocId(0), QlParams::default());
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn k_limits_results() {
        let idx = tiny();
        let q = Query::parse_text("the", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams::default(), 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_rank() {
        let idx = tiny();
        let mut scratch = QlScratch::new();
        for text in ["cable car", "the hill", "graffiti", "cable"] {
            let q = Query::parse_text(text, &Analyzer::plain());
            let fresh = rank(&idx, &q, QlParams { mu: 10.0 }, 5);
            let reused = rank_with_scratch(&idx, &q, QlParams { mu: 10.0 }, 5, &mut scratch);
            assert_eq!(fresh, reused, "query {text:?}");
        }
    }

    #[test]
    fn shorter_doc_wins_at_equal_tf() {
        // Same tf, shorter document ⇒ higher P(w|D).
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("short", "cable hill");
        b.add_document("long", "cable hill extra words here padding");
        let idx = b.build();
        let q = Query::parse_text("cable", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "short");
    }
}
