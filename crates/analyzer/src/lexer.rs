//! A lightweight Rust lexer.
//!
//! The lint rules need far less than a full parse: identifier sequences,
//! punctuation, and the certainty that nothing inside a string literal or
//! comment is mistaken for code. This lexer delivers exactly that — a flat
//! token stream with line numbers — and handles the constructs that break
//! naive scanners: nested block comments, raw strings (`r#"…"#`), byte
//! strings, and the char-literal/lifetime ambiguity of `'`.
//!
//! It deliberately does not build multi-character operators; rules that
//! need `::` match two consecutive `:` punctuation tokens.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or lifetime (`'a` keeps its quote).
    Ident,
    /// Single punctuation character.
    Punct,
    /// String, char, byte, or numeric literal.
    Literal,
    /// Line or block comment, text included (suppressions live here).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a flat token stream. Unterminated constructs consume
/// the rest of the input rather than erroring: the linter must keep going
/// on files it half-understands.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start_line = line;
            let mut text = String::new();
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    text.push(b[i]);
                    i += 1;
                }
            } else {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        text.push(b[i]);
                        i += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text,
                line: start_line,
            });
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, br"…", b"…", b'…'.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < n && b[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let raw = j > i + 1 || (j < n && b[j] == '"' && (c == 'r' || hashes > 0));
            if j < n && b[j] == '"' && (raw || c == 'b') {
                // Raw string (any hashes) or byte string b"…".
                let start_line = line;
                let is_raw = c == 'r' || b[i + 1] == 'r' || hashes > 0;
                let mut text: String = b[i..=j].iter().collect();
                j += 1;
                while j < n {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    if !is_raw && b[j] == '\\' && j + 1 < n {
                        text.push(b[j]);
                        text.push(b[j + 1]);
                        j += 2;
                        continue;
                    }
                    text.push(b[j]);
                    if b[j] == '"' {
                        if is_raw {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                for h in 0..hashes {
                                    text.push(b[j + 1 + h]);
                                }
                                j += hashes;
                                j += 1;
                                break;
                            }
                        } else {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line: start_line,
                });
                i = j;
                continue;
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                // Byte char b'…': delegate to the char path below by
                // consuming the prefix here.
                let start_line = line;
                let mut text = String::from("b");
                let (consumed, t) = lex_char(&b[i + 1..]);
                text.push_str(&t);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line: start_line,
                });
                i += 1 + consumed;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '"' {
            let start_line = line;
            let mut text = String::from("\"");
            i += 1;
            while i < n {
                if b[i] == '\n' {
                    line += 1;
                }
                if b[i] == '\\' && i + 1 < n {
                    text.push(b[i]);
                    text.push(b[i + 1]);
                    i += 2;
                    continue;
                }
                text.push(b[i]);
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text,
                line: start_line,
            });
            continue;
        }
        if c == '\'' {
            let (consumed, text) = lex_char(&b[i..]);
            let kind = if text.ends_with('\'') && text.len() > 1 {
                TokKind::Literal
            } else {
                TokKind::Ident // lifetime, e.g. `'a`
            };
            toks.push(Tok { kind, text, line });
            i += consumed;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Lexes a char literal or lifetime starting at the leading `'`.
/// Returns `(chars consumed, text)`; lifetimes keep their quote and have
/// no trailing one.
fn lex_char(b: &[char]) -> (usize, String) {
    debug_assert_eq!(b.first(), Some(&'\''));
    let n = b.len();
    if n >= 2 && b[1] == '\\' {
        // Escaped char literal: consume to the closing quote.
        let mut j = 2;
        while j < n && b[j] != '\'' {
            j += 1;
        }
        let end = (j + 1).min(n);
        return (end, b[..end].iter().collect());
    }
    if n >= 3 && b[2] == '\'' && b[1] != '\'' {
        return (3, b[..3].iter().collect());
    }
    // Lifetime: `'` followed by identifier characters.
    let mut j = 1;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    (j.max(1), b[..j.max(1)].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.bar(x);");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "bar".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_code() {
        let t = lex("let s = \"partial_cmp // not a comment\";");
        assert!(t.iter().all(|t| t.kind != TokKind::Comment));
        assert!(!t.iter().any(|t| t.is_ident("partial_cmp")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = lex(r####"let s = r#"quote " inside"#; x"####);
        assert!(t.iter().any(|t| t.is_ident("x")));
        assert_eq!(
            t.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn nested_block_comments() {
        let t = lex("/* outer /* inner */ still outer */ code");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, TokKind::Comment);
        assert!(t[1].is_ident("code"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let t = lex("let c: char = 'x'; fn f<'a>(v: &'a str) {}");
        let lits: Vec<_> = t.iter().filter(|t| t.kind == TokKind::Literal).collect();
        assert_eq!(lits[0].text, "'x'");
        assert!(t.iter().any(|t| t.kind == TokKind::Ident && t.text == "'a"));
    }

    #[test]
    fn escaped_char_literal() {
        let t = lex(r"let c = '\n'; next");
        assert!(t.iter().any(|t| t.kind == TokKind::Literal && t.text == r"'\n'"));
        assert!(t.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let t = lex("a\nb\n\nc");
        let lines: Vec<u32> = t.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn line_numbers_span_block_comments() {
        let t = lex("/* one\ntwo */ after");
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn numbers_including_floats() {
        let t = kinds("1.5 + 0x1f + 2..3");
        assert_eq!(t[0], (TokKind::Literal, "1.5".into()));
        assert_eq!(t[2], (TokKind::Literal, "0x1f".into()));
        // `2..3` must not eat the range dots.
        assert_eq!(t[4], (TokKind::Literal, "2".into()));
        assert_eq!(t[5], (TokKind::Punct, ".".into()));
        assert_eq!(t[6], (TokKind::Punct, ".".into()));
        assert_eq!(t[7], (TokKind::Literal, "3".into()));
    }
}
