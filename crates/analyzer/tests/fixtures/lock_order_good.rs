// Fixture: the same two mutexes, acquired in one global order
// (accounts before ledger) everywhere.

pub fn transfer(&self) {
    let from = self.accounts.lock();
    let to = self.ledger.lock();
    from.apply(&to);
}

pub fn reconcile(&self) {
    let a = self.accounts.lock();
    let l = self.ledger.lock();
    l.reconcile_with(&a);
}
