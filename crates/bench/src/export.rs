//! Export runs and qrels in trec_eval format plus a JSON summary, so the
//! reproduction can be cross-checked with the real evaluation toolchain.

use std::fs;
use std::io;
use std::path::Path;

use ireval::precision::{PrecisionTable, TREC_CUTOFFS};
use ireval::trec;

use crate::context::ExperimentContext;
use crate::runs::PrfBase;

/// Exports one dataset: `qrels.txt`, one `run.<name>.txt` per
/// configuration, and `summary.json` with the mean precisions.
pub fn export_dataset(
    ctx: &ExperimentContext,
    dataset: &str,
    dir: &Path,
) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let runner = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    fs::write(dir.join("qrels.txt"), trec::write_qrels(&qrels))?;

    let runs = vec![
        runner.run_ql_q(),
        runner.run_ql_e(false),
        runner.run_ql_e(true),
        runner.run_ql_qe(false),
        runner.run_ql_qe(true),
        runner.run_ql_x(),
        runner.run_sqe(&sqe::MotifSet::triangular(), false),
        runner.run_sqe(&sqe::MotifSet::t_and_s(), false),
        runner.run_sqe(&sqe::MotifSet::square(), false),
        runner.run_sqe_c(false),
        runner.run_sqe_c(true),
        runner.run_prf(PrfBase::UserQuery),
        runner.run_sqe_c_prf(),
    ];

    let mut written = Vec::new();
    let mut summary = serde_json::Map::new();
    for run in &runs {
        let slug: String = run
            .name()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let file = format!("run.{slug}.txt");
        fs::write(dir.join(&file), trec::write_run(run))?;
        written.push(file);
        let table = PrecisionTable::evaluate(run, &qrels);
        let values: serde_json::Map<String, serde_json::Value> = TREC_CUTOFFS
            .iter()
            .map(|&k| {
                (
                    format!("P@{k}"),
                    serde_json::json!((table.at(k) * 1000.0).round() / 1000.0),
                )
            })
            .collect();
        summary.insert(run.name().to_owned(), serde_json::Value::Object(values));
    }
    fs::write(
        dir.join("summary.json"),
        serde_json::to_string_pretty(&serde_json::Value::Object(summary))?,
    )?;
    written.push("qrels.txt".to_owned());
    written.push("summary.json".to_owned());
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireval::precision::mean_precision;

    #[test]
    fn export_roundtrips_through_trec_format() {
        let ctx = ExperimentContext::small();
        let dir = std::env::temp_dir().join("sqe_export_test");
        let files = export_dataset(&ctx, "imageclef", &dir).unwrap();
        assert!(files.iter().any(|f| f.contains("SQE_C")));
        assert!(dir.join("qrels.txt").exists());
        assert!(dir.join("summary.json").exists());

        // Re-parse and re-evaluate: identical precision.
        let qrels_text = fs::read_to_string(dir.join("qrels.txt")).unwrap();
        let qrels = ireval::trec::parse_qrels(&qrels_text).unwrap();
        let run_text = fs::read_to_string(dir.join("run.SQE_C__M_.txt")).unwrap();
        let run = ireval::trec::parse_run(&run_text, "SQE_C (M)").unwrap();
        let reparsed = mean_precision(&run, &qrels, 10);
        let direct_qrels = ctx.qrels("imageclef");
        let direct = mean_precision(&ctx.runner("imageclef").run_sqe_c(false), &direct_qrels, 10);
        // Written qrels drop zero-relevant queries (standard trec format);
        // imageclef has none, so the values must agree exactly.
        assert!(
            (reparsed - direct).abs() < 1e-12,
            "{reparsed} vs {direct}"
        );
        let summary: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("summary.json")).unwrap()).unwrap();
        assert!(summary.get("SQE_C (M)").is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
