//! The determinism wall: the concurrent query service must produce
//! byte-identical trec run files to the sequential, uncached pipeline —
//! for every dataset, every motif configuration, every worker count, and
//! both cold and warm expansion caches.
//!
//! This is the contract that makes the serving layer (work stealing +
//! LRU caching + scratch reuse) adoptable at all: parallelism and caching
//! are pure speed, never a ranking change.

use ireval::trec;
use ireval::Run;
use kbgraph::ArticleId;
use searchlite::{Analyzer, Index, IndexBuilder, QlParams};
use sqe::{QueryService, ServeConfig, SqeConfig, SqePipeline};
use synthwiki::{Dataset, TestBed, TestBedConfig};

const DATASETS: [&str; 3] = ["imageclef", "chic2012", "chic2013"];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn build_world() -> (TestBed, Vec<Index>) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text);
            }
            b.build()
        })
        .collect();
    (bed, indexes)
}

fn config() -> SqeConfig {
    SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    }
}

/// The batch input: every query's text plus its manually linked nodes.
fn batch_of(bed: &TestBed, dataset: &Dataset) -> Vec<(String, Vec<ArticleId>)> {
    dataset
        .queries
        .iter()
        .map(|q| {
            let nodes = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            (q.text.clone(), nodes)
        })
        .collect()
}

/// Packs per-query rankings into a trec run file (the byte-comparison
/// currency of this wall).
fn run_file(name: &str, dataset: &Dataset, rankings: &[Vec<String>]) -> String {
    let mut run = Run::new(name);
    for (q, ids) in dataset.queries.iter().zip(rankings) {
        run.set_ranking(&q.id, ids.clone());
    }
    trec::write_run(&run)
}

#[test]
fn service_run_files_are_byte_identical_for_every_motif_config() {
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::new(&bed.kb.graph, index, config());
        for (cfg_name, tri, sq) in [
            ("SQE_T", true, false),
            ("SQE_S", false, true),
            ("SQE_TS", true, true),
        ] {
            // Reference: the sequential, uncached pipeline.
            let reference: Vec<Vec<String>> = batch
                .iter()
                .map(|(text, nodes)| {
                    pipeline.external_ids(&pipeline.rank_sqe(text, nodes, tri, sq).0)
                })
                .collect();
            let want = run_file(cfg_name, dataset, &reference);
            for workers in WORKER_COUNTS {
                let serve_cfg = ServeConfig {
                    workers,
                    ..ServeConfig::default()
                };
                let service =
                    QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
                for replay in ["cold", "warm"] {
                    let served: Vec<Vec<String>> = service
                        .run_batch(&batch, tri, sq)
                        .iter()
                        .map(|hits| service.external_ids(hits))
                        .collect();
                    let got = run_file(cfg_name, dataset, &served);
                    assert_eq!(
                        got, want,
                        "{ds_name}/{cfg_name}: {replay} service run at {workers} workers \
                         must be byte-identical to the sequential pipeline"
                    );
                }
            }
        }
    }
}

#[test]
fn service_sqe_c_run_files_are_byte_identical() {
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::new(&bed.kb.graph, index, config());
        let reference: Vec<Vec<String>> = batch
            .iter()
            .map(|(text, nodes)| pipeline.rank_sqe_c(text, nodes))
            .collect();
        let want = run_file("SQE_C", dataset, &reference);
        for workers in WORKER_COUNTS {
            let serve_cfg = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let service = QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
            for replay in ["cold", "warm"] {
                let served = service.run_batch_sqe_c(&batch);
                let got = run_file("SQE_C", dataset, &served);
                assert_eq!(
                    got, want,
                    "{ds_name}/SQE_C: {replay} service run at {workers} workers \
                     must be byte-identical to the sequential pipeline"
                );
            }
        }
        // The warm replays actually exercised the cache (not a no-op wall).
        let serve_cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let service = QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
        service.run_batch_sqe_c(&batch);
        service.run_batch_sqe_c(&batch);
        let snap = service.metrics_snapshot();
        assert!(
            snap.cache_hits > 0,
            "{ds_name}: the warm replay must hit the expansion cache"
        );
    }
}

#[test]
fn invalidated_cache_still_reproduces_the_same_bytes() {
    // Generation bumps force recomputation; on an unchanged graph the
    // recomputed expansions — and therefore the run files — are identical.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let batch = batch_of(&bed, dataset);
    let service = QueryService::new(
        &bed.kb.graph,
        index,
        config(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let before = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
    service.invalidate_cache();
    let after = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
    assert_eq!(before, after);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.invalidations, 1);
}
