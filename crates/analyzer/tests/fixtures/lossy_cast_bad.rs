// Fixture: narrowing casts on length/position expressions at a
// construction boundary. Linted as a kbgraph source path.

pub fn seal(offsets: &mut Vec<u32>, targets: &[u32]) {
    offsets.push(targets.len() as u32);
}

pub fn encode(pos: usize) -> u32 {
    pos as u32
}
