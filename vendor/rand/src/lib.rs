//! Vendored stand-in for the `rand` crate (offline build).
//!
//! Provides the slice of the rand 0.8 API this workspace uses:
//! [`rngs::SmallRng`] / [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range` (half-open and inclusive
//! integer/float ranges), `gen_bool`, and `gen` (unit-interval floats,
//! full-range integers, fair bools).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid and deterministic per seed, which is what the synthetic dataset
//! generator needs. The exact stream differs from crates-io `SmallRng`, so
//! any test asserting literal generated values must assert against this
//! stream (EXPERIMENTS.md documents the recalibration).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of rand's trait: `seed_from_u64` only,
/// which is the only constructor the workspace calls).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly like rand does for small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; the SplitMix64
            // expansion cannot produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" generator; alias quality is irrelevant offline, so it
    /// shares the SmallRng implementation.
    pub type StdRng = SmallRng;
}

/// Types producible uniformly from raw bits via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a range via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range like rand does.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing convenience methods; blanket-implemented for every
/// [`RngCore`] like the real crate.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics if `p` is outside `[0, 1]` (matches rand).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        f64::sample(self) < p
    }

    /// Draws a value of any [`Standard`]-distributed type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
