//! CFG round-trip guarantee, mirroring `parser_roundtrip.rs` one layer
//! up: every workspace function must lower to a control-flow graph that
//! **covers** its body — each source statement is placed in exactly one
//! basic block (pinned by an independent AST-side count), and every
//! block that carries statements is reachable from the entry. This is
//! what makes the dataflow rules trustworthy: a statement the CFG drops
//! is a lock acquisition or float cast the lattice silently never sees.

use std::path::Path;

use analyzer::ast::{Block, Expr};
use analyzer::cfg::Cfg;

/// Independent mirror of the builder's placement rule: how many
/// [`analyzer::cfg::Stmt::Expr`] entries lowering an AST statement must
/// produce. Structured statements contribute their header (`if`
/// condition, `match` scrutinee, `while` condition, `for` iterable —
/// bare `loop` has none) plus their lowered branches; everything else is
/// one linear statement.
fn expected_block(b: &Block) -> usize {
    b.stmts.iter().map(expected_stmt).sum()
}

fn expected_stmt(s: &Expr) -> usize {
    match s {
        Expr::If { then, else_, .. } => {
            1 + expected_block(then) + else_.as_deref().map_or(0, expected_stmt)
        }
        Expr::While { body, .. } => 1 + expected_block(body),
        Expr::Loop { body, .. } => expected_block(body),
        Expr::For { body, .. } => 1 + expected_block(body),
        Expr::Match { arms, .. } => 1 + arms.iter().map(expected_stmt).sum::<usize>(),
        Expr::Block(b) => expected_block(b),
        _ => 1,
    }
}

#[test]
fn every_workspace_fn_lowers_to_a_covering_cfg() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = analyzer::workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 50, "workspace walk found too few files");
    let mut lowered_fns = 0usize;
    let mut placed_total = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path).expect("read workspace file");
        let file = analyzer::parser::parse_file(&rel, &src);
        file.for_each_fn(&mut |_, _, def| {
            let Some(cfg) = Cfg::build(def) else {
                assert!(
                    def.body.is_none(),
                    "{rel}: `{}` has a body but no CFG",
                    def.name
                );
                return;
            };
            let body = def.body.as_ref().expect("Cfg::build implies a body");
            lowered_fns += 1;

            // Coverage: the CFG places exactly the statements the AST has.
            let expected = expected_block(body);
            assert_eq!(
                cfg.placed_stmts(),
                expected,
                "{rel}: `{}` (line {}) placed {} statements, AST has {}",
                def.name,
                def.line,
                cfg.placed_stmts(),
                expected
            );
            placed_total += expected;

            // Reachability: every statement-bearing block hangs off the
            // entry. Empty unreachable blocks are fine (a `loop` without
            // `break` legitimately leaves its after-block dangling), but
            // an orphaned block *with* statements would mean the lattice
            // never visits live code.
            let reach = cfg.reachable();
            assert!(reach[cfg.entry], "{rel}: `{}` entry unreachable", def.name);
            for (i, b) in cfg.blocks.iter().enumerate() {
                let has_stmts = b
                    .stmts
                    .iter()
                    .any(|s| matches!(s, analyzer::cfg::Stmt::Expr(_)));
                assert!(
                    !has_stmts || reach[i],
                    "{rel}: `{}` (line {}) block {i} carries statements but is \
                     unreachable from entry",
                    def.name,
                    def.line
                );
            }
        });
    }
    assert!(
        lowered_fns > 300,
        "suspiciously few functions lowered across the workspace: {lowered_fns}"
    );
    assert!(
        placed_total > 2000,
        "suspiciously few statements placed across the workspace: {placed_total}"
    );
}

/// Spot-check on a hand-written function whose statement count is known:
/// the structural headers and branch bodies all land, and every
/// statement-bearing block is reachable (no divergence to strand code).
#[test]
fn covering_cfg_reaches_every_statement_without_dead_code() {
    let src = r#"
pub fn shape(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for x in xs {
        if *x > 2 {
            acc += x;
        } else {
            acc += 1;
        }
    }
    match acc {
        0 => acc = 1,
        _ => {
            acc += 2;
            acc *= 3;
        }
    }
    acc
}
"#;
    let file = analyzer::parser::parse_file("crates/x/src/lib.rs", src);
    assert!(file.errors.is_empty(), "{:?}", file.errors);
    file.for_each_fn(&mut |_, _, def| {
        let cfg = Cfg::build(def).expect("body present");
        let body = def.body.as_ref().expect("body present");
        assert_eq!(cfg.placed_stmts(), expected_block(body));
        let reach = cfg.reachable();
        for (i, b) in cfg.blocks.iter().enumerate() {
            let has_stmts = b
                .stmts
                .iter()
                .any(|s| matches!(s, analyzer::cfg::Stmt::Expr(_)));
            assert!(
                !has_stmts || reach[i],
                "block {i} carries statements but is unreachable"
            );
        }
    });
}
