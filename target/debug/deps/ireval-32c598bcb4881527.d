/root/repo/target/debug/deps/ireval-32c598bcb4881527.d: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

/root/repo/target/debug/deps/ireval-32c598bcb4881527: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

crates/ireval/src/lib.rs:
crates/ireval/src/precision.rs:
crates/ireval/src/qrels.rs:
crates/ireval/src/run.rs:
crates/ireval/src/stats.rs:
crates/ireval/src/trec.rs:
