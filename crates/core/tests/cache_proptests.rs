//! Model-based property tests for the expansion LRU cache.
//!
//! A reference model (a plain MRU-ordered `Vec` plus a generation
//! counter) interprets arbitrary interleavings of lookup / insert /
//! invalidate against `sqe::cache::LruCache`, checking after every step:
//!
//! * capacity is never exceeded,
//! * recency order matches the model exactly,
//! * every hit equals a fresh recompute of the key *under the current
//!   generation* (so a stale post-invalidation value can never leak),
//! * the eviction counter counts exactly the model's live evictions.

use kbgraph::ArticleId;
use proptest::prelude::*;
use sqe::cache::{CacheKey, LruCache};
use sqe::{MotifSet, MotifSpec};

/// The deterministic "expensive computation" the cache memoizes: a pure
/// function of the key and the invalidation generation.
fn compute(key: u32, generation: u64) -> u64 {
    u64::from(key) * 1_000_003 + generation * 31 + 7
}

/// One step of the interpreted workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u32),
    Insert(u32),
    Invalidate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Invalidate is rare so runs build up state between generation bumps;
    // the small key space forces collisions and evictions.
    (0u8..10, 0u32..8).prop_map(|(kind, key)| match kind {
        0..=4 => Op::Get(key),
        5..=8 => Op::Insert(key),
        _ => Op::Invalidate,
    })
}

/// The reference model: MRU-first key list + generation counter + live
/// eviction count.
struct Model {
    capacity: usize,
    mru: Vec<u32>,
    generation: u64,
    evictions: u64,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            capacity,
            mru: Vec::new(),
            generation: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: u32) {
        self.mru.retain(|&k| k != key);
        self.mru.insert(0, key);
    }

    fn get(&mut self, key: u32) -> Option<u64> {
        if self.mru.contains(&key) {
            self.touch(key);
            Some(compute(key, self.generation))
        } else {
            None
        }
    }

    fn insert(&mut self, key: u32) {
        if self.capacity == 0 {
            return;
        }
        if self.mru.contains(&key) {
            self.touch(key);
            return;
        }
        if self.mru.len() == self.capacity {
            self.mru.pop();
            self.evictions += 1;
        }
        self.mru.insert(0, key);
    }

    fn invalidate(&mut self) {
        self.generation += 1;
        self.mru.clear();
    }
}

proptest! {
    /// Arbitrary op interleavings: the cache agrees with the model on
    /// every observable (hit values, recency order, sizes, evictions).
    #[test]
    fn cache_agrees_with_model(capacity in 1usize..6, ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut cache: LruCache<u32, u64> = LruCache::new(capacity);
        let mut model = Model::new(capacity);
        for op in ops {
            match op {
                Op::Get(k) => {
                    let got = cache.get(&k);
                    let want = model.get(k);
                    prop_assert_eq!(got, want, "lookup of {} diverged", k);
                    if let Some(v) = got {
                        // Every hit equals a fresh recompute under the
                        // current generation.
                        prop_assert_eq!(v, compute(k, model.generation));
                    }
                }
                Op::Insert(k) => {
                    cache.insert(k, compute(k, model.generation));
                    model.insert(k);
                }
                Op::Invalidate => {
                    cache.invalidate();
                    model.invalidate();
                }
            }
            // Capacity invariant: occupied slots (even stale ones) never
            // exceed the seeded capacity.
            prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
            // Recency invariant: live keys, MRU first, match the model.
            prop_assert_eq!(cache.recency_keys(), model.mru.clone());
            // Live evictions match (stale reclamation is not an eviction).
            prop_assert_eq!(cache.evictions(), model.evictions);
            prop_assert_eq!(cache.generation(), model.generation);
        }
    }

    /// A zero-capacity cache never stores or evicts anything.
    #[test]
    fn zero_capacity_never_stores(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut cache: LruCache<u32, u64> = LruCache::new(0);
        for op in ops {
            match op {
                Op::Get(k) => prop_assert_eq!(cache.get(&k), None),
                Op::Insert(k) => cache.insert(k, compute(k, 0)),
                Op::Invalidate => cache.invalidate(),
            }
            prop_assert_eq!(cache.len(), 0);
            prop_assert_eq!(cache.evictions(), 0);
        }
    }

    /// The cache key canonicalizes query-node order: any rotation of the
    /// node list produces the same key, and flag changes never collide.
    #[test]
    fn cache_key_order_insensitive(
        nodes in prop::collection::vec(0u32..50, 0..10),
        rot in 0usize..10,
        tri_bit in 0u8..2,
        sq_bit in 0u8..2,
    ) {
        let set_for = |tri: bool, sq: bool| {
            let mut specs = Vec::new();
            if tri {
                specs.push(MotifSpec::triangular());
            }
            if sq {
                specs.push(MotifSpec::square());
            }
            MotifSet::new(specs)
        };
        let (tri, sq) = (tri_bit == 1, sq_bit == 1);
        let fp = set_for(tri, sq).fingerprint();
        let flipped = set_for(!tri, sq).fingerprint();
        let ids: Vec<ArticleId> = nodes.iter().map(|&n| ArticleId::new(n)).collect();
        let mut rotated = ids.clone();
        if !rotated.is_empty() {
            let r = rot % rotated.len();
            rotated.rotate_left(r);
        }
        prop_assert_eq!(CacheKey::new(&ids, fp), CacheKey::new(&rotated, fp));
        prop_assert_ne!(CacheKey::new(&ids, fp), CacheKey::new(&ids, flipped));
    }
}
