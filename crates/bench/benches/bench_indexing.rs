//! Index-construction benchmarks: analyzer throughput and inverted-index
//! building over the synthetic collections.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use searchlite::{Analyzer, IndexBuilder};
use synthwiki::{TestBed, TestBedConfig};

fn bench_indexing(c: &mut Criterion) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let docs: Vec<(String, String)> = bed.collections[0]
        .docs
        .iter()
        .take(2000)
        .map(|d| (d.id.clone(), d.text.clone()))
        .collect();
    let total_bytes: u64 = docs.iter().map(|(_, t)| t.len() as u64).sum();

    let mut group = c.benchmark_group("indexing");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("build_index_2k_docs", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new(Analyzer::english());
            for (id, text) in &docs {
                builder.add_document(id, text).expect("generated ids are unique");
            }
            builder.build().num_terms()
        })
    });
    group.finish();

    let analyzer = Analyzer::english();
    let sample = &docs[0].1;
    c.bench_function("analyze_one_caption", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            analyzer.analyze_into(std::hint::black_box(sample), &mut buf);
            buf.len()
        })
    });

    c.bench_function("porter_stem", |b| {
        b.iter(|| searchlite::analysis::porter_stem(std::hint::black_box("relational")))
    });
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
