//! Incremental construction of a [`KbGraph`].

use rustc_hash::FxHashMap;

use crate::csr::Csr;
use crate::graph::KbGraph;
use crate::ids::{ArticleId, CategoryId};

/// Builds a [`KbGraph`] incrementally.
///
/// Titles are deduplicated: adding an article (or category) with a title
/// that already exists returns the existing id. Edges may be added in any
/// order and duplicated freely; the final CSRs are sorted and deduplicated.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    article_titles: Vec<String>,
    category_titles: Vec<String>,
    article_index: FxHashMap<String, ArticleId>,
    category_index: FxHashMap<String, CategoryId>,
    article_links: Vec<(u32, u32)>,
    memberships: Vec<(u32, u32)>,
    subcategories: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints for the expected graph size.
    pub fn with_capacity(articles: usize, categories: usize, links: usize) -> Self {
        GraphBuilder {
            article_titles: Vec::with_capacity(articles),
            category_titles: Vec::with_capacity(categories),
            article_index: FxHashMap::default(),
            category_index: FxHashMap::default(),
            article_links: Vec::with_capacity(links),
            memberships: Vec::with_capacity(links / 2),
            subcategories: Vec::with_capacity(categories),
        }
    }

    /// Adds (or finds) an article by title.
    pub fn add_article(&mut self, title: &str) -> ArticleId {
        if let Some(&id) = self.article_index.get(title) {
            return id;
        }
        let id = ArticleId::new(
            u32::try_from(self.article_titles.len())
                .expect("invariant: article count fits in u32 ids"),
        );
        self.article_titles.push(title.to_owned());
        self.article_index.insert(title.to_owned(), id);
        id
    }

    /// Adds (or finds) a category by title.
    pub fn add_category(&mut self, title: &str) -> CategoryId {
        if let Some(&id) = self.category_index.get(title) {
            return id;
        }
        let id = CategoryId::new(
            u32::try_from(self.category_titles.len())
                .expect("invariant: category count fits in u32 ids"),
        );
        self.category_titles.push(title.to_owned());
        self.category_index.insert(title.to_owned(), id);
        id
    }

    /// Looks up an article id by exact title without inserting.
    pub fn find_article(&self, title: &str) -> Option<ArticleId> {
        self.article_index.get(title).copied()
    }

    /// Looks up a category id by exact title without inserting.
    pub fn find_category(&self, title: &str) -> Option<CategoryId> {
        self.category_index.get(title).copied()
    }

    /// Adds a directed hyperlink `from → to` between articles. Self-links
    /// are ignored (Wikipedia articles do not meaningfully link to
    /// themselves for expansion purposes).
    pub fn add_article_link(&mut self, from: ArticleId, to: ArticleId) {
        if from != to {
            self.article_links.push((from.raw(), to.raw()));
        }
    }

    /// Adds a reciprocal pair of hyperlinks between two articles.
    pub fn add_mutual_link(&mut self, a: ArticleId, b: ArticleId) {
        self.add_article_link(a, b);
        self.add_article_link(b, a);
    }

    /// Declares that `article` belongs to `category`.
    pub fn add_membership(&mut self, article: ArticleId, category: CategoryId) {
        self.memberships.push((article.raw(), category.raw()));
    }

    /// Declares that `child` is a sub-category of `parent`. Self-loops are
    /// ignored.
    pub fn add_subcategory(&mut self, child: CategoryId, parent: CategoryId) {
        if child != parent {
            self.subcategories.push((child.raw(), parent.raw()));
        }
    }

    /// Number of articles added so far.
    pub fn num_articles(&self) -> usize {
        self.article_titles.len()
    }

    /// Number of categories added so far.
    pub fn num_categories(&self) -> usize {
        self.category_titles.len()
    }

    /// Finalizes the graph: builds all forward and reverse CSRs.
    pub fn build(self) -> KbGraph {
        let a = self.article_titles.len();
        let c = self.category_titles.len();
        let article_links = Csr::from_edges(a, &self.article_links);
        let article_links_rev = article_links.reversed(a);
        let memberships = Csr::from_edges(a, &self.memberships);
        let members = memberships.reversed(c);
        let subcats = Csr::from_edges(c, &self.subcategories);
        let subcats_rev = subcats.reversed(c);
        // No audit here: the CSRs are consistent by construction, and the
        // audit's *semantic* checks (e.g. acyclic category hierarchy) are
        // about input data quality, which the builder deliberately does
        // not police — callers feed it arbitrary edge lists.
        // lint:allow(must-audit-after-mutation)
        KbGraph::from_parts(
            self.article_titles,
            self.category_titles,
            article_links,
            article_links_rev,
            memberships,
            members,
            subcats,
            subcats_rev,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_titles() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_article("cable car");
        let a2 = b.add_article("cable car");
        assert_eq!(a1, a2);
        assert_eq!(b.num_articles(), 1);
    }

    #[test]
    fn find_without_insert() {
        let mut b = GraphBuilder::new();
        assert!(b.find_article("x").is_none());
        let id = b.add_article("x");
        assert_eq!(b.find_article("x"), Some(id));
        assert!(b.find_category("x").is_none());
        let c = b.add_category("x");
        assert_eq!(b.find_category("x"), Some(c));
    }

    #[test]
    fn self_links_dropped() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        b.add_article_link(a, a);
        let g = b.build();
        assert_eq!(g.article_links().num_edges(), 0);
    }

    #[test]
    fn mutual_link_adds_both_directions() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        b.add_mutual_link(a, x);
        let g = b.build();
        assert!(g.links_to(a, x));
        assert!(g.links_to(x, a));
        assert!(g.doubly_linked(a, x));
    }

    #[test]
    fn membership_has_reverse() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let c = b.add_category("c");
        b.add_membership(a, c);
        let g = b.build();
        assert_eq!(g.categories_of(a), &[c.raw()]);
        assert_eq!(g.members_of(c), &[a.raw()]);
    }

    #[test]
    fn subcategory_self_loop_dropped() {
        let mut b = GraphBuilder::new();
        let c = b.add_category("c");
        b.add_subcategory(c, c);
        let g = b.build();
        assert!(g.parents_of(c).is_empty());
    }

    #[test]
    fn articles_and_categories_share_titles_independently() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("transport");
        let c = b.add_category("transport");
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 0);
        let g = b.build();
        assert_eq!(g.article_title(a), "transport");
        assert_eq!(g.category_title(c), "transport");
    }
}
