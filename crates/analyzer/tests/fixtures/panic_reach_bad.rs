// Fixture: helper crate file with a panic source. Linted as
// `crates/kbgraph/src/lookup.rs` alongside a hot-path entry file that
// calls `kbgraph::lookup`, so the unwrap is reachable cross-file.

pub fn lookup(xs: &[u32], i: usize) -> u32 {
    xs.get(i).copied().unwrap()
}
