/root/repo/target/debug/deps/searchlite-2b68cc4ae328ca80.d: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

/root/repo/target/debug/deps/libsearchlite-2b68cc4ae328ca80.rlib: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

/root/repo/target/debug/deps/libsearchlite-2b68cc4ae328ca80.rmeta: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

crates/searchlite/src/lib.rs:
crates/searchlite/src/analysis.rs:
crates/searchlite/src/bm25.rs:
crates/searchlite/src/index.rs:
crates/searchlite/src/prf.rs:
crates/searchlite/src/ql.rs:
crates/searchlite/src/stats.rs:
crates/searchlite/src/structured.rs:
crates/searchlite/src/topk.rs:
