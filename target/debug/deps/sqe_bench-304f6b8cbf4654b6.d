/root/repo/target/debug/deps/sqe_bench-304f6b8cbf4654b6.d: crates/bench/src/lib.rs crates/bench/src/context.rs crates/bench/src/export.rs crates/bench/src/report.rs crates/bench/src/runs.rs crates/bench/src/tables.rs crates/bench/src/timing.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/sqe_bench-304f6b8cbf4654b6: crates/bench/src/lib.rs crates/bench/src/context.rs crates/bench/src/export.rs crates/bench/src/report.rs crates/bench/src/runs.rs crates/bench/src/tables.rs crates/bench/src/timing.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/context.rs:
crates/bench/src/export.rs:
crates/bench/src/report.rs:
crates/bench/src/runs.rs:
crates/bench/src/tables.rs:
crates/bench/src/timing.rs:
crates/bench/src/figures.rs:
