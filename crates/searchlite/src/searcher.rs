//! Cross-segment read view with merged corpus statistics.
//!
//! A [`Searcher`] presents any set of [`Segment`]s as one logical corpus:
//! global doc ids are segment-local ids offset by the segment's base,
//! global term ids are assigned by first occurrence across segments in
//! segment order, and `collection_len` / `collection_tf` / `doc_freq` are
//! exact integer sums over the segments. Because every statistic the
//! Dirichlet-QL and BM25 scorers consume is *identical* to what a
//! monolithic [`Index`] over the same document stream would report, and
//! the tie-breaking ids (doc and term) coincide too, ranking through a
//! `Searcher` is byte-identical regardless of how the corpus is
//! partitioned — the property the serve-determinism wall pins.
//!
//! The view is immutable and cheap to clone (one `Arc`); live ingestion
//! (`crate::SegmentedIndex`) publishes a fresh `Searcher` per epoch.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::analysis::Analyzer;
use crate::index::{DocId, Index, PositionalScratch, TermId};
use crate::segment::Segment;

/// Local term id marking "term absent from this segment".
const ABSENT: u32 = u32::MAX;

#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — derived view, rebuilt from segments
struct SearcherInner {
    analyzer: Analyzer,
    segments: Vec<Arc<Segment>>,
    /// `bases[i]` = global doc id of segment `i`'s first document.
    bases: Vec<u32>,
    num_docs: u32,
    collection_len: u64,
    /// Analyzed token → global term id.
    dict: FxHashMap<String, u32>,
    /// Global term id → (first segment containing it, local id there);
    /// the surface form is read from that segment's term table.
    locators: Vec<(u32, u32)>,
    /// Global term id → summed collection frequency.
    coll_tf: Vec<u64>,
    /// Global term id → summed document frequency (segments hold
    /// disjoint documents, so the sum is exact).
    doc_freq: Vec<u32>,
    /// `seg_local[s][g]` = segment `s`'s local id for global term `g`,
    /// or [`ABSENT`].
    seg_local: Vec<Vec<u32>>,
    /// `seg_global[s][l]` = global id of segment `s`'s local term `l`.
    seg_global: Vec<Vec<u32>>,
    /// Segment-set epoch this view was published at (see
    /// `crate::SegmentedIndex`); caches key invalidation off it.
    epoch: u64,
}

/// Immutable, cheaply clonable read view over a set of segments. Mirrors
/// the read API of [`Index`] with global doc/term ids; all scoring
/// modules (`ql`, `bm25`, `prf`, `stats`) consume this type.
#[derive(Debug, Clone)]
// lint:allow(persist-types-derive-serde) — derived view, rebuilt from segments
pub struct Searcher {
    inner: Arc<SearcherInner>,
}

impl Searcher {
    /// Builds the merged view over `segments` (in segment order, which is
    /// global document order). `epoch` identifies the segment set for
    /// cache invalidation. An empty segment list is a valid empty corpus.
    pub fn new(analyzer: Analyzer, segments: Vec<Arc<Segment>>, epoch: u64) -> Searcher {
        // Pass 1: global term table by first occurrence, merged statistics.
        let mut dict: FxHashMap<String, u32> = FxHashMap::default();
        let mut locators: Vec<(u32, u32)> = Vec::new();
        let mut coll_tf: Vec<u64> = Vec::new();
        let mut doc_freq: Vec<u32> = Vec::new();
        let mut seg_global: Vec<Vec<u32>> = Vec::with_capacity(segments.len());
        let mut bases: Vec<u32> = Vec::with_capacity(segments.len());
        let mut num_docs = 0u32;
        let mut collection_len = 0u64;
        for (s, seg) in segments.iter().enumerate() {
            let s32 = u32::try_from(s).expect("invariant: segment count fits in u32");
            bases.push(num_docs);
            let idx = seg.index();
            let mut globals = Vec::with_capacity(idx.num_terms());
            for (local, token) in idx.terms().iter().enumerate() {
                let local32 =
                    u32::try_from(local).expect("invariant: term count fits in u32 ids");
                let g = *dict.entry(token.clone()).or_insert_with(|| {
                    let g = u32::try_from(locators.len())
                        .expect("invariant: merged term count fits in u32 ids");
                    locators.push((s32, local32));
                    coll_tf.push(0);
                    doc_freq.push(0);
                    g
                });
                coll_tf[g as usize] += idx.collection_tf(TermId(local32));
                doc_freq[g as usize] += u32::try_from(idx.postings(TermId(local32)).doc_freq())
                    .expect("invariant: doc freq bounded by u32 doc count");
                globals.push(g);
            }
            seg_global.push(globals);
            num_docs += u32::try_from(idx.num_docs()).expect("invariant: doc count fits in u32");
            collection_len += idx.collection_len();
        }
        // Pass 2: the inverse maps, one dense row per segment.
        let num_terms = locators.len();
        let mut seg_local: Vec<Vec<u32>> = Vec::with_capacity(segments.len());
        for globals in &seg_global {
            let mut row = vec![ABSENT; num_terms];
            for (local, &g) in globals.iter().enumerate() {
                row[g as usize] =
                    u32::try_from(local).expect("invariant: term count fits in u32 ids");
            }
            seg_local.push(row);
        }
        Searcher {
            inner: Arc::new(SearcherInner {
                analyzer,
                segments,
                bases,
                num_docs,
                collection_len,
                dict,
                locators,
                coll_tf,
                doc_freq,
                seg_local,
                seg_global,
                epoch,
            }),
        }
    }

    /// Wraps a monolithic index as a single-segment view at epoch 0.
    pub fn from_index(index: Index) -> Searcher {
        let analyzer = index.analyzer().clone();
        Searcher::new(analyzer, vec![Arc::new(Segment::new(0, index))], 0)
    }

    /// The analyzer shared by every segment; queries must use the same.
    pub fn analyzer(&self) -> &Analyzer {
        &self.inner.analyzer
    }

    /// The segments under this view, in global document order.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.inner.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.inner.segments.len()
    }

    /// The segment-set epoch this view was published at.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Total number of documents across segments.
    pub fn num_docs(&self) -> usize {
        self.inner.num_docs as usize
    }

    /// Number of distinct terms across segments.
    pub fn num_terms(&self) -> usize {
        self.inner.locators.len()
    }

    /// Total token count of the logical collection (`|C|`).
    pub fn collection_len(&self) -> u64 {
        self.inner.collection_len
    }

    /// Segment owning global doc `d`, as (segment index, local doc id).
    fn seg_of(&self, d: DocId) -> (usize, DocId) {
        let s = self.inner.bases.partition_point(|&b| b <= d.0) - 1;
        (s, DocId(d.0 - self.inner.bases[s]))
    }

    /// Looks up the global id of an *analyzed* token.
    pub fn term_id(&self, token: &str) -> Option<TermId> {
        self.inner.dict.get(token).copied().map(TermId)
    }

    /// The surface (analyzed) form of a global term.
    pub fn term(&self, t: TermId) -> &str {
        let (s, local) = self.inner.locators[t.index()];
        self.inner.segments[s as usize].index().term(TermId(local))
    }

    /// Summed collection frequency of a global term.
    pub fn collection_tf(&self, t: TermId) -> u64 {
        self.inner.coll_tf[t.index()]
    }

    /// Summed document frequency of a global term.
    pub fn doc_freq(&self, t: TermId) -> usize {
        self.inner.doc_freq[t.index()] as usize
    }

    /// Collection language-model probability `P(w|C)` with the same
    /// 0.5-count floor as [`Index::collection_prob`].
    pub fn collection_prob(&self, t: Option<TermId>) -> f64 {
        let c = self.inner.collection_len.max(1) as f64;
        match t {
            Some(t) => (self.inner.coll_tf[t.index()] as f64).max(0.5) / c,
            None => 0.5 / c,
        }
    }

    /// Collection probability for an arbitrary count (phrase features).
    pub fn collection_prob_for_count(&self, count: u64) -> f64 {
        let c = self.inner.collection_len.max(1) as f64;
        (count as f64).max(0.5) / c
    }

    /// Document length in analyzed tokens (`|D|`).
    pub fn doc_len(&self, d: DocId) -> u32 {
        let (s, local) = self.seg_of(d);
        self.inner.segments[s].index().doc_len(local)
    }

    /// The external id of a document.
    pub fn external_id(&self, d: DocId) -> &str {
        let (s, local) = self.seg_of(d);
        self.inner.segments[s].index().external_id(local)
    }

    /// Term frequency of global term `t` in global doc `d`.
    pub fn tf(&self, t: TermId, d: DocId) -> u32 {
        let (s, local) = self.seg_of(d);
        match self.inner.seg_local[s][t.index()] {
            ABSENT => 0,
            l => self.inner.segments[s].index().tf(TermId(l), local),
        }
    }

    /// Appends the global ids of every document containing `t`, in
    /// ascending order (segments are visited in base order and each
    /// posting list is sorted). Replaces `Index::postings(t).docs()`
    /// for candidate generation.
    pub fn push_docs(&self, t: TermId, out: &mut Vec<u32>) {
        for (s, seg) in self.inner.segments.iter().enumerate() {
            let l = self.inner.seg_local[s][t.index()];
            if l == ABSENT {
                continue;
            }
            let base = self.inner.bases[s];
            out.extend(seg.index().postings(TermId(l)).docs().iter().map(|&d| d + base));
        }
    }

    /// All `(doc, tf)` postings of a global term, in global doc order.
    pub fn term_postings(&self, t: TermId) -> Vec<(DocId, u32)> {
        let mut out = Vec::with_capacity(self.doc_freq(t));
        for (s, seg) in self.inner.segments.iter().enumerate() {
            let l = self.inner.seg_local[s][t.index()];
            if l == ABSENT {
                continue;
            }
            let base = self.inner.bases[s];
            out.extend(
                seg.index()
                    .postings(TermId(l))
                    .iter()
                    .map(|(d, f)| (DocId(d.0 + base), f)),
            );
        }
        out
    }

    /// All documents containing the exact phrase, with phrase
    /// frequencies, in global doc order. `scratch.terms` is reused as
    /// the global→local translation buffer, the rest of the scratch
    /// feeds the per-segment positional kernels.
    pub fn phrase_postings_with(
        &self,
        terms: &[TermId],
        scratch: &mut PositionalScratch,
    ) -> Vec<(DocId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut local = std::mem::take(&mut scratch.terms);
        'segments: for (s, seg) in self.inner.segments.iter().enumerate() {
            local.clear();
            for &t in terms {
                match self.inner.seg_local[s][t.index()] {
                    ABSENT => continue 'segments,
                    l => local.push(TermId(l)),
                }
            }
            let base = self.inner.bases[s];
            for (d, f) in seg.index().phrase_postings_with(&local, scratch) {
                out.push((DocId(d.0 + base), f));
            }
        }
        scratch.terms = local;
        out
    }

    /// All documents where the terms co-occur within the window, with
    /// unordered-window frequencies, in global doc order.
    pub fn unordered_window_postings_with(
        &self,
        terms: &[TermId],
        window: u32,
        scratch: &mut PositionalScratch,
    ) -> Vec<(DocId, u32)> {
        if terms.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut local = std::mem::take(&mut scratch.terms);
        'segments: for (s, seg) in self.inner.segments.iter().enumerate() {
            local.clear();
            for &t in terms {
                match self.inner.seg_local[s][t.index()] {
                    ABSENT => continue 'segments,
                    l => local.push(TermId(l)),
                }
            }
            let base = self.inner.bases[s];
            for (d, f) in seg
                .index()
                .unordered_window_postings_with(&local, window, scratch)
            {
                out.push((DocId(d.0 + base), f));
            }
        }
        scratch.terms = local;
        out
    }

    /// Iterates the distinct terms of a document with their frequencies,
    /// as global term ids (order follows the owning segment's local
    /// term order; consumers aggregate into maps).
    pub fn doc_terms(&self, d: DocId) -> impl Iterator<Item = (TermId, u32)> + '_ {
        let (s, local) = self.seg_of(d);
        let globals = &self.inner.seg_global[s];
        self.inner.segments[s]
            .index()
            .doc_terms(local)
            .map(move |(t, f)| (TermId(globals[t.index()]), f))
    }

    /// Analyzes raw text and maps the tokens to global term ids
    /// (`None` for out-of-vocabulary tokens).
    pub fn analyze_to_terms(&self, text: &str) -> Vec<Option<TermId>> {
        self.inner
            .analyzer
            .analyze(text)
            .iter()
            .map(|t| self.term_id(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    const DOCS: [(&str, &str); 6] = [
        ("d0", "cable car climbs the hill"),
        ("d1", "cable car cable car"),
        ("d2", "the hill of graffiti"),
        ("d3", "funicular railway on the hill"),
        ("d4", "graffiti covers the cable"),
        ("d5", "car on the funicular railway"),
    ];

    fn monolithic() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in DOCS {
            b.add_document(id, text).expect("unique test ids");
        }
        b.build()
    }

    fn segmented(splits: &[usize]) -> Searcher {
        let mut segs = Vec::new();
        let mut start = 0;
        for (i, &end) in splits.iter().chain(std::iter::once(&DOCS.len())).enumerate() {
            let mut b = IndexBuilder::new(Analyzer::plain());
            for (id, text) in &DOCS[start..end] {
                b.add_document(id, text).expect("unique test ids");
            }
            segs.push(Arc::new(Segment::new(i as u64, b.build())));
            start = end;
        }
        Searcher::new(Analyzer::plain(), segs, 0)
    }

    #[test]
    fn merged_statistics_equal_monolithic() {
        let mono = monolithic();
        for splits in [vec![], vec![3], vec![2, 4], vec![1, 2, 3, 4, 5]] {
            let s = segmented(&splits);
            assert_eq!(s.num_docs(), mono.num_docs(), "splits {splits:?}");
            assert_eq!(s.num_terms(), mono.num_terms(), "splits {splits:?}");
            assert_eq!(s.collection_len(), mono.collection_len());
            for d in 0..mono.num_docs() {
                let d = DocId(u32::try_from(d).expect("small test corpus"));
                assert_eq!(s.doc_len(d), mono.doc_len(d));
                assert_eq!(s.external_id(d), mono.external_id(d));
            }
            for t in 0..mono.num_terms() {
                let t = TermId(u32::try_from(t).expect("small test corpus"));
                assert_eq!(s.term(t), mono.term(t), "term ids must coincide");
                assert_eq!(s.collection_tf(t), mono.collection_tf(t));
                assert_eq!(s.doc_freq(t), mono.postings(t).doc_freq());
                assert_eq!(
                    s.term_postings(t),
                    mono.postings(t).iter().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn term_ids_match_monolithic_assignment_order() {
        let mono = monolithic();
        let s = segmented(&[2, 4]);
        for (token, want) in [("cable", 0u32), ("car", 1), ("climbs", 2)] {
            assert_eq!(mono.term_id(token), Some(TermId(want)));
            assert_eq!(s.term_id(token), Some(TermId(want)));
        }
        assert_eq!(s.term_id("spaceship"), None);
    }

    #[test]
    fn tf_and_push_docs_cross_segment() {
        let mono = monolithic();
        let s = segmented(&[2, 4]);
        let cable = s.term_id("cable").expect("indexed");
        for d in 0..DOCS.len() {
            let d = DocId(u32::try_from(d).expect("small test corpus"));
            assert_eq!(s.tf(cable, d), mono.tf(cable, d));
        }
        let mut docs = Vec::new();
        s.push_docs(cable, &mut docs);
        assert_eq!(docs, mono.postings(cable).docs());
    }

    #[test]
    fn phrase_and_window_postings_cross_segment() {
        let mono = monolithic();
        let mut scratch = PositionalScratch::new();
        for splits in [vec![3], vec![1, 2, 3, 4, 5]] {
            let s = segmented(&splits);
            let cable = s.term_id("cable").expect("indexed");
            let car = s.term_id("car").expect("indexed");
            assert_eq!(
                s.phrase_postings_with(&[cable, car], &mut scratch),
                mono.phrase_postings(&[cable, car]),
                "splits {splits:?}"
            );
            assert_eq!(
                s.unordered_window_postings_with(&[cable, car], 8, &mut scratch),
                mono.unordered_window_postings(&[cable, car], 8),
                "splits {splits:?}"
            );
        }
    }

    #[test]
    fn doc_terms_translates_to_global_ids() {
        let mono = monolithic();
        let s = segmented(&[2, 4]);
        for d in 0..DOCS.len() {
            let d = DocId(u32::try_from(d).expect("small test corpus"));
            let mut got: Vec<(TermId, u32)> = s.doc_terms(d).collect();
            let mut want: Vec<(TermId, u32)> = mono.doc_terms(d).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_searcher_is_a_valid_empty_corpus() {
        let s = Searcher::new(Analyzer::plain(), Vec::new(), 0);
        assert_eq!(s.num_docs(), 0);
        assert_eq!(s.num_terms(), 0);
        assert_eq!(s.collection_len(), 0);
        assert_eq!(s.term_id("anything"), None);
        assert!(s.collection_prob(None) > 0.0);
    }

    #[test]
    fn from_index_wraps_one_segment() {
        let s = Searcher::from_index(monolithic());
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.num_docs(), DOCS.len());
    }
}
