//! Persistence and interchange: everything the reproduction materializes
//! must round-trip losslessly so external tooling can verify it.

use searchlite::{Analyzer, Index, IndexBuilder, QlParams};
use synthwiki::persist;
use synthwiki::{TestBed, TestBedConfig};

#[test]
fn dataset_export_roundtrips() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let ds = bed.dataset("chic2013");
    let coll = bed.collection_of(ds);

    let docs = persist::collection_from_jsonl(&persist::collection_to_jsonl(coll)).unwrap();
    assert_eq!(docs.len(), coll.docs.len());
    let queries = persist::queries_from_json(&persist::queries_to_json(ds)).unwrap();
    assert_eq!(queries.len(), ds.queries.len());

    // The exported qrels agree with ireval's parser.
    let qrels_text = persist::qrels_to_trec(ds);
    let qrels = ireval::trec::parse_qrels(&qrels_text).unwrap();
    for q in &ds.queries {
        let expected = ds.relevant[&q.id].len();
        if expected > 0 {
            assert_eq!(qrels.num_relevant(&q.id), expected, "query {}", q.id);
        }
    }
}

#[test]
fn index_persistence_preserves_full_retrieval() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let coll = &bed.collections[0];
    let mut b = IndexBuilder::new(Analyzer::english());
    for d in coll.docs.iter().take(800) {
        b.add_document(&d.id, &d.text);
    }
    let index = b.build();
    let restored = Index::from_json(&index.to_json()).unwrap();

    let ds = bed.dataset("imageclef");
    for q in ds.queries.iter().take(5) {
        let query = searchlite::Query::parse_text(&q.text, index.analyzer());
        let h1 = searchlite::ql::rank(&index, &query, QlParams { mu: 15.0 }, 50);
        let h2 = searchlite::ql::rank(&restored, &query, QlParams { mu: 15.0 }, 50);
        assert_eq!(h1, h2, "query {}", q.id);
    }
}

#[test]
fn graph_persistence_preserves_motifs() {
    use sqe::{Motif, Square, Triangular};
    let bed = TestBed::generate(&TestBedConfig::small());
    let g = &bed.kb.graph;
    let restored = kbgraph::KbGraph::from_json(&g.to_json()).unwrap();
    for e in bed.space.entities.iter().step_by(61).take(12) {
        let a = bed.kb.article_of[e.id];
        assert_eq!(
            Triangular.expansions(g, a),
            Triangular.expansions(&restored, a)
        );
        assert_eq!(Square.expansions(g, a), Square.expansions(&restored, a));
    }
}
