//! Surface-form dictionary with commonness priors.

use std::collections::BTreeMap;

use kbgraph::ArticleId;
use searchlite::Analyzer;

/// One candidate meaning of a surface form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sense {
    /// The article this surface form may refer to.
    pub article: ArticleId,
    /// Prior probability-like weight of this sense (Dexter's commonness:
    /// how often the surface form links to this article in anchor text).
    pub commonness: f64,
}

/// A normalized surface form → senses dictionary.
///
/// Surface forms are analyzed with a non-stemming pipeline (lowercasing +
/// tokenization); "Cable-Car", "cable car" and "CABLE CAR" all hit the
/// same entry, while stemming is avoided because entity names are not
/// ordinary vocabulary.
#[derive(Debug)]
pub struct Dictionary {
    // BTreeMaps keep every dictionary traversal (debug dumps, future
    // persistence) in key order; lookups stay O(log n) on short keys.
    entries: BTreeMap<String, Vec<Sense>>,
    /// token → senses of entries whose surface contains the token
    /// (the Alchemy-style fallback index).
    containment: BTreeMap<String, Vec<Sense>>,
    /// Longest entry length in tokens (bounds the spotting window).
    max_tokens: usize,
    analyzer: Analyzer,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary::new()
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary {
            entries: BTreeMap::new(),
            containment: BTreeMap::new(),
            max_tokens: 0,
            analyzer: Analyzer::plain(),
        }
    }

    /// Normalizes a surface form to its dictionary key.
    pub fn normalize(&self, surface: &str) -> String {
        self.analyzer.analyze(surface).join(" ")
    }

    /// Adds a sense for a surface form. Multiple senses per surface are
    /// kept sorted by descending commonness (ties by article id for
    /// determinism). Re-adding the same (surface, article) keeps the
    /// higher commonness.
    pub fn add(&mut self, surface: &str, article: ArticleId, commonness: f64) {
        let tokens = self.analyzer.analyze(surface);
        if tokens.is_empty() {
            return;
        }
        self.max_tokens = self.max_tokens.max(tokens.len());
        let key = tokens.join(" ");
        let senses = self.entries.entry(key).or_default();
        match senses.iter_mut().find(|s| s.article == article) {
            Some(s) => s.commonness = s.commonness.max(commonness),
            None => senses.push(Sense {
                article,
                commonness,
            }),
        }
        senses.sort_by(|a, b| {
            scorecmp::by_score_desc_then_id(a.commonness, b.commonness, a.article, b.article)
        });
        for tok in tokens {
            let bucket = self.containment.entry(tok).or_default();
            if !bucket.iter().any(|s| s.article == article) {
                bucket.push(Sense {
                    article,
                    commonness,
                });
                bucket.sort_by(|a, b| {
                    scorecmp::by_score_desc_then_id(a.commonness, b.commonness, a.article, b.article)
                });
            }
        }
    }

    /// Overrides the commonness of an existing `(surface, article)` sense
    /// (used by anchor-statistics re-estimation); senses are re-sorted.
    /// No-op when the pair is unknown.
    pub fn set_commonness(&mut self, surface: &str, article: ArticleId, commonness: f64) {
        let key = self.normalize(surface);
        if let Some(senses) = self.entries.get_mut(&key) {
            if let Some(s) = senses.iter_mut().find(|s| s.article == article) {
                s.commonness = commonness;
                senses.sort_by(|a, b| {
                    scorecmp::by_score_desc_then_id(a.commonness, b.commonness, a.article, b.article)
                });
            }
        }
    }

    /// Bulk-loads `(surface, article, commonness)` entries.
    pub fn extend<I: IntoIterator<Item = (String, ArticleId, f64)>>(&mut self, entries: I) {
        for (surface, article, commonness) in entries {
            self.add(&surface, article, commonness);
        }
    }

    /// Exact lookup of an *already normalized* key (space-joined analyzed
    /// tokens). Senses come back best-first.
    pub fn lookup(&self, key: &str) -> Option<&[Sense]> {
        self.entries.get(key).map(|v| v.as_slice())
    }

    /// Fallback lookup: senses of any entry containing `token`.
    pub fn lookup_containing(&self, token: &str) -> Option<&[Sense]> {
        self.containment.get(token).map(|v| v.as_slice())
    }

    /// Longest surface form length in tokens.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// Number of distinct surface forms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The analyzer used for normalization (queries must be tokenized the
    /// same way when spotting).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Iterates `(normalized key, senses)` in key order — the persistence
    /// traversal. Keys are already analyzed, so rebuilding via
    /// [`Dictionary::from_entries`] reproduces this dictionary exactly.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&str, &[Sense])> + '_ {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Rebuilds a dictionary from [`Dictionary::iter_entries`] output.
    /// Keys are re-analyzed on insertion; because they are already in
    /// normalized form this is a fixpoint, and the containment index and
    /// `max_tokens` are re-derived.
    pub fn from_entries<'a, I>(entries: I) -> Dictionary
    where
        I: IntoIterator<Item = (&'a str, Vec<Sense>)>,
    {
        let mut d = Dictionary::new();
        for (key, senses) in entries {
            for s in senses {
                d.add(key, s.article, s.commonness);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_folds_case_and_punctuation() {
        let mut d = Dictionary::new();
        d.add("Cable-Car", ArticleId::new(1), 1.0);
        assert!(d.lookup("cable car").is_some());
        assert_eq!(d.normalize("CABLE  car!"), "cable car");
    }

    #[test]
    fn senses_sorted_by_commonness() {
        let mut d = Dictionary::new();
        d.add("jaguar", ArticleId::new(1), 0.3);
        d.add("jaguar", ArticleId::new(2), 0.7);
        let senses = d.lookup("jaguar").unwrap();
        assert_eq!(senses[0].article, ArticleId::new(2));
        assert_eq!(senses[1].article, ArticleId::new(1));
    }

    #[test]
    fn readding_keeps_max_commonness() {
        let mut d = Dictionary::new();
        d.add("x", ArticleId::new(1), 0.2);
        d.add("x", ArticleId::new(1), 0.8);
        d.add("x", ArticleId::new(1), 0.5);
        let senses = d.lookup("x").unwrap();
        assert_eq!(senses.len(), 1);
        assert!((senses[0].commonness - 0.8).abs() < 1e-12);
    }

    #[test]
    fn containment_index_finds_partial_titles() {
        let mut d = Dictionary::new();
        d.add("cable car", ArticleId::new(1), 1.0);
        let senses = d.lookup_containing("cable").unwrap();
        assert_eq!(senses[0].article, ArticleId::new(1));
        assert!(d.lookup("cable").is_none(), "exact lookup must not match");
    }

    #[test]
    fn max_tokens_tracks_longest_entry() {
        let mut d = Dictionary::new();
        assert_eq!(d.max_tokens(), 0);
        d.add("a b c", ArticleId::new(1), 1.0);
        d.add("q", ArticleId::new(2), 1.0);
        assert_eq!(d.max_tokens(), 3);
    }

    #[test]
    fn empty_surface_ignored() {
        let mut d = Dictionary::new();
        d.add("  --  ", ArticleId::new(1), 1.0);
        assert!(d.is_empty());
    }

    #[test]
    fn entries_roundtrip_reproduces_dictionary() {
        let mut d = Dictionary::new();
        d.add("Cable-Car", ArticleId::new(1), 0.9);
        d.add("jaguar", ArticleId::new(2), 0.7);
        d.add("jaguar", ArticleId::new(1), 0.3);
        d.add("san francisco cable car", ArticleId::new(1), 1.0);
        let rebuilt = Dictionary::from_entries(
            d.iter_entries().map(|(k, v)| (k, v.to_vec())),
        );
        assert_eq!(rebuilt.len(), d.len());
        assert_eq!(rebuilt.max_tokens(), d.max_tokens());
        let pairs: Vec<_> = d.iter_entries().collect();
        let rebuilt_pairs: Vec<_> = rebuilt.iter_entries().collect();
        assert_eq!(pairs, rebuilt_pairs);
        assert_eq!(
            rebuilt.lookup_containing("cable").map(<[Sense]>::len),
            d.lookup_containing("cable").map(<[Sense]>::len)
        );
    }

    #[test]
    fn tie_broken_by_article_id() {
        let mut d = Dictionary::new();
        d.add("x", ArticleId::new(9), 0.5);
        d.add("x", ArticleId::new(3), 0.5);
        assert_eq!(d.lookup("x").unwrap()[0].article, ArticleId::new(3));
    }
}
