//! `experiments load-bench`: an **open-loop** load generator for the
//! admission-controlled serving path.
//!
//! Unlike [`crate::serve_bench`] — which is closed-loop (each worker
//! issues its next query only when the previous one finishes, so the
//! offered load can never exceed capacity) — this bench dispatches
//! requests on a fixed Poisson-ish schedule that does not slow down when
//! the service does. Past saturation the closed loop saturates
//! gracefully; the open loop exposes queueing collapse: unbounded
//! waiting, unbounded p99. The sweep runs every offered-load level twice:
//!
//! * **unprotected**: every request runs the full SQE_T&S pipeline with
//!   no admission and no deadline — the latency tail collapses past
//!   capacity;
//! * **protected**: requests are admitted at arrival time (bounded
//!   pending queue, deterministic token bucket, CoDel-style queue-delay
//!   shedding) and served under a per-request deadline through the
//!   degraded-mode ladder SQE_T&S → SQE_T → unexpanded.
//!
//! The workload is the dataset's query replay expanded with seeded
//! [`entitylink::perturb_query`] variants, re-linked per variant, so the
//! expansion cache sees realistic partial hit-rates instead of a fixed
//! loop. The report is written to `BENCH_load.json`; CI runs `--smoke`
//! on the small bed and archives the file as an artifact.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use entitylink::{perturb_query, NoiseRng, PerturbationModel};
use kbgraph::ArticleId;
use searchlite::{Analyzer, SearchHit, ShardRouter};
use serde::Serialize;
use sqe::{
    AdmissionConfig, Clock, Deadline, MetricsSnapshot, MonotonicClock, QueryService, ServeConfig,
    ServeOutcome, ShardedService, ShedReason, Ticket,
};

use crate::context::ExperimentContext;

/// Open-loop load-generator options.
#[derive(Debug, Clone)]
pub struct LoadBenchOptions {
    /// Worker threads pulling admitted requests off the arrival queue.
    pub workers: usize,
    /// Shards to scatter over; 1 = the single-shard [`QueryService`].
    pub shards: usize,
    /// Offered-load levels as multiples of the calibrated capacity
    /// (ignored when `explicit_rates` is non-empty).
    pub multipliers: Vec<f64>,
    /// Absolute offered rates in queries/second; overrides `multipliers`.
    pub explicit_rates: Vec<f64>,
    /// Arrivals dispatched per (mode, level) run.
    pub arrivals: usize,
    /// Per-request deadline budget as a multiple of the calibrated full
    /// (SQE_T&S) p95 cost.
    pub deadline_mult: f64,
    /// Perturbation variants per replay query (variant 0 = the original).
    pub variants: u64,
    /// Expansion-cache capacity handed to every service.
    pub cache_capacity: usize,
    /// Seed for arrival times and workload shuffling.
    pub seed: u64,
}

impl Default for LoadBenchOptions {
    fn default() -> Self {
        LoadBenchOptions {
            workers: 4,
            shards: 1,
            multipliers: vec![0.5, 0.9, 1.2, 2.0, 4.0],
            explicit_rates: Vec::new(),
            arrivals: 2000,
            deadline_mult: 4.0,
            variants: 4,
            cache_capacity: 4096,
            seed: 42,
        }
    }
}

impl LoadBenchOptions {
    /// The CI smoke preset: two levels, two workers, a short run.
    pub fn smoke() -> Self {
        LoadBenchOptions {
            workers: 2,
            multipliers: vec![0.5, 2.0],
            arrivals: 160,
            variants: 2,
            ..LoadBenchOptions::default()
        }
    }
}

/// One (mode, offered-load) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LoadLevelReport {
    /// `"unprotected"` or `"protected"`.
    pub mode: String,
    /// Offered load as a multiple of calibrated capacity (0 when the
    /// rate was given explicitly).
    pub multiplier: f64,
    /// Offered arrival rate (queries/second).
    pub offered_qps: f64,
    /// Requests dispatched.
    pub arrivals: u64,
    /// Requests that produced a ranking (full or degraded).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Shed counts keyed by [`ShedReason::name`].
    pub shed_by_reason: BTreeMap<String, u64>,
    /// Requests abandoned at a stage boundary after their deadline.
    pub deadline_exceeded: u64,
    /// Completions per ladder rung, ordered as the service's motif
    /// ladder (full → triangular → unexpanded by default).
    pub degraded_mix: Vec<u64>,
    /// Completions per second of wall time.
    pub achieved_qps: f64,
    /// Completions that finished within the deadline budget, per second
    /// (the same budget is applied to both modes so they compare).
    pub goodput_qps: f64,
    /// shed / arrivals.
    pub shed_rate: f64,
    /// Exact median of arrival→completion latency (ms).
    pub p50_ms: f64,
    /// Exact 99th percentile (ms).
    pub p99_ms: f64,
    /// Exact 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Σ in-service execution time / wall time — the concurrency the
    /// run actually achieved (comparable with `BENCH_serve.json`).
    pub achieved_concurrency: f64,
    /// Dispatch of the first arrival → last completion (ms).
    pub wall_ms: f64,
}

/// The whole open-loop report (`BENCH_load.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadBenchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Dataset whose replay (plus variants) forms the workload.
    pub dataset: String,
    /// Worker threads serving admitted requests.
    pub workers: usize,
    /// Shards per service (1 = monolithic).
    pub shards: usize,
    /// Perturbation variants per replay query.
    pub variants: u64,
    /// Distinct (text, nodes) workload items after perturbation.
    pub workload_size: usize,
    /// Arrival/shuffle seed.
    pub seed: u64,
    /// Calibrated per-rung p95 costs (ms), full → unexpanded.
    pub calibrated_cost_ms: Vec<f64>,
    /// Estimated capacity of the full rung (queries/second).
    pub capacity_qps_est: f64,
    /// Per-request deadline budget (ms).
    pub deadline_budget_ms: f64,
    /// One cell per (mode, offered-load level).
    pub levels: Vec<LoadLevelReport>,
}

/// Either service flavour behind one dispatch loop.
enum BenchService<'a> {
    Mono(QueryService<'a>),
    Sharded(ShardedService<'a>),
}

impl BenchService<'_> {
    fn admit(&self) -> Result<Ticket, ShedReason> {
        match self {
            BenchService::Mono(s) => s.admit(),
            BenchService::Sharded(s) => s.admit(),
        }
    }

    fn serve_admitted(
        &self,
        ticket: Ticket,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
    ) -> ServeOutcome<Vec<SearchHit>> {
        match self {
            BenchService::Mono(s) => s.serve_admitted(ticket, text, nodes, deadline),
            BenchService::Sharded(s) => s.serve_admitted(ticket, text, nodes, deadline),
        }
    }

    fn serve_at_rung(&self, rung: usize, text: &str, nodes: &[ArticleId]) -> Vec<SearchHit> {
        match self {
            BenchService::Mono(s) => s.serve_at_rung(rung, text, nodes),
            BenchService::Sharded(s) => s.serve_at_rung(rung, text, nodes),
        }
    }

    fn record_ladder_cost(&self, rung: usize, nanos: u64) {
        match self {
            BenchService::Mono(s) => s.record_ladder_cost(rung, nanos),
            BenchService::Sharded(s) => s.record_ladder_cost(rung, nanos),
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        match self {
            BenchService::Mono(s) => s.metrics_snapshot(),
            BenchService::Sharded(s) => s.metrics_snapshot(),
        }
    }

    fn reset_metrics(&self) {
        match self {
            BenchService::Mono(s) => s.reset_metrics(),
            BenchService::Sharded(s) => s.reset_metrics(),
        }
    }
}

/// What one request contributed to the run.
enum Obs {
    /// A ranking came back, at the given ladder rung index.
    Served { level: usize, arrival: u64, done: u64 },
    /// Admission (or the on-start CoDel check) rejected it.
    Shed { reason: &'static str },
    /// The deadline blew at a stage boundary mid-run.
    Deadline { arrival: u64, done: u64 },
}

/// One dispatched unit of work.
struct Job {
    idx: usize,
    ticket: Option<Ticket>,
    arrival: u64,
    deadline: Deadline,
}

/// Builds the perturbed replay workload: every dataset query expanded
/// into `variants` deterministic paraphrase/typo variants, each
/// re-linked through the automatic entity linker (the perturbed text
/// can link to a different node set — exactly the cache stress the
/// fixed replay of `serve-bench` never produces).
fn build_workload(
    ctx: &ExperimentContext,
    dataset: &str,
    variants: u64,
) -> Vec<(String, Vec<ArticleId>)> {
    let ds = ctx.bed.dataset(dataset);
    let model = PerturbationModel::light();
    let mut out = Vec::with_capacity(ds.queries.len() * variants.max(1) as usize);
    for q in &ds.queries {
        for v in 0..variants.max(1) {
            let text = perturb_query(&q.text, v, &model);
            let nodes: Vec<ArticleId> =
                ctx.linker.link(&text).iter().take(3).map(|l| l.article).collect();
            out.push((text, nodes));
        }
    }
    out
}

/// Builds one service with the given admission configuration, sharing
/// the bench's clock so arrival stamps and deadlines live in the same
/// timebase as the controller's decisions.
fn build_service<'a>(
    ctx: &'a ExperimentContext,
    opts: &LoadBenchOptions,
    admission: AdmissionConfig,
    clock: &Arc<MonotonicClock>,
) -> BenchService<'a> {
    let serve_cfg = ServeConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        admission,
        ..ServeConfig::default()
    };
    let ds = ctx.bed.dataset("imageclef");
    if opts.shards > 1 {
        let service = ShardedService::with_clock(
            &ctx.bed.kb.graph,
            Analyzer::english(),
            ShardRouter::new(opts.shards),
            ctx.sqe_config,
            serve_cfg,
            Arc::clone(clock) as Arc<dyn sqe::Clock>,
        );
        if let Some(coll) = ctx.bed.collections.get(ds.collection) {
            for doc in &coll.docs {
                service
                    .add_document(&doc.id, &doc.text)
                    .expect("invariant: test-bed document ids are unique");
            }
        }
        service.seal_all();
        service.reset_metrics(); // drop the ingest-phase counters
        BenchService::Sharded(service)
    } else {
        let index = ctx
            .indexes
            .get(ds.collection)
            .expect("invariant: every dataset's collection is indexed");
        BenchService::Mono(QueryService::with_clock(
            &ctx.bed.kb.graph,
            index,
            ctx.sqe_config,
            serve_cfg,
            Arc::clone(clock) as Arc<dyn sqe::Clock>,
        ))
    }
}

/// Runs every workload item once per ladder rung, which both measures
/// the per-rung cost distributions and warms the expansion cache. The
/// service records each run into its ladder histograms, so afterwards
/// the metrics snapshot *is* the calibration.
fn calibrate(service: &BenchService<'_>, workload: &[(String, Vec<ArticleId>)]) -> Vec<u64> {
    let rungs = service.metrics_snapshot().ladder_cost.len();
    for rung in 0..rungs {
        for (text, nodes) in workload {
            let hits = service.serve_at_rung(rung, text, nodes);
            std::hint::black_box(hits.len());
        }
    }
    let snap = service.metrics_snapshot();
    snap.ladder_cost.iter().map(|h| h.p95_nanos).collect()
}

/// Re-seeds the degraded-mode ladder after a metrics reset so the first
/// protected request already selects rungs from calibrated costs.
fn prime_ladder(service: &BenchService<'_>, costs: &[u64]) {
    for (rung, &cost) in costs.iter().enumerate() {
        service.record_ladder_cost(rung, cost);
    }
}

/// Exact (not bucketed) percentile over a sorted latency vector; the
/// rank convention matches `LatencyHistogram::quantile_upper_nanos`.
fn exact_percentile_ms(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0) as f64 / 1e6
}

fn bump(mix: &mut [u64], idx: usize) {
    if let Some(slot) = mix.get_mut(idx) {
        *slot += 1;
    }
}

/// Dispatches `opts.arrivals` requests at `rate_qps` in an open loop and
/// drains them through `opts.workers` pool threads. The dispatcher
/// compensates for sleep overshoot by sending immediately when behind
/// schedule, so the *average* offered rate holds even when inter-arrival
/// gaps undershoot the OS timer resolution.
#[allow(clippy::too_many_arguments)]
fn run_one_level(
    service: &BenchService<'_>,
    clock: &MonotonicClock,
    workload: &[(String, Vec<ArticleId>)],
    opts: &LoadBenchOptions,
    rate_qps: f64,
    protected: bool,
    budget_nanos: u64,
    run_seed: u64,
) -> (Vec<Obs>, u64) {
    let (tx, rx) = crossbeam::channel::unbounded::<Job>();
    let mut rng = NoiseRng::new(run_seed);
    let mut observations: Vec<Obs> = Vec::with_capacity(opts.arrivals);
    let start = clock.now_nanos();
    let worker_obs = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move |_| {
                    let mut local: Vec<Obs> = Vec::new();
                    while let Ok(job) = rx.recv() {
                        let Some((text, nodes)) = workload.get(job.idx) else {
                            continue;
                        };
                        match job.ticket {
                            Some(ticket) => {
                                let outcome =
                                    service.serve_admitted(ticket, text, nodes, job.deadline);
                                let done = clock.now_nanos();
                                local.push(match outcome {
                                    ServeOutcome::Ok(hits) => {
                                        std::hint::black_box(hits.len());
                                        Obs::Served { level: 0, arrival: job.arrival, done }
                                    }
                                    ServeOutcome::Degraded(rung, hits) => {
                                        std::hint::black_box(hits.len());
                                        Obs::Served {
                                            level: rung.index(),
                                            arrival: job.arrival,
                                            done,
                                        }
                                    }
                                    ServeOutcome::Shed(reason) => {
                                        Obs::Shed { reason: reason.name() }
                                    }
                                    ServeOutcome::DeadlineExceeded(_) => {
                                        Obs::Deadline { arrival: job.arrival, done }
                                    }
                                });
                            }
                            None => {
                                let hits = service.serve_at_rung(0, text, nodes);
                                std::hint::black_box(hits.len());
                                let done = clock.now_nanos();
                                local.push(Obs::Served {
                                    level: 0,
                                    arrival: job.arrival,
                                    done,
                                });
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        drop(rx);

        // The open loop: arrival k is scheduled at the cumulative sum of
        // seeded exponential inter-arrival gaps, independent of how the
        // service is doing.
        let mut cum_nanos = 0.0f64;
        for _ in 0..opts.arrivals {
            let u = rng.next_f64();
            cum_nanos += -(1.0 - u).ln() / rate_qps.max(1e-9) * 1e9;
            let target = start.saturating_add(cum_nanos as u64);
            let now = clock.now_nanos();
            if target > now {
                std::thread::sleep(Duration::from_nanos(target - now));
            }
            let idx = ((rng.next_f64() * workload.len() as f64) as usize)
                .min(workload.len().saturating_sub(1));
            let arrival = clock.now_nanos();
            if protected {
                match service.admit() {
                    Ok(ticket) => {
                        let deadline = Deadline::within(arrival, budget_nanos);
                        let _ = tx.send(Job { idx, ticket: Some(ticket), arrival, deadline });
                    }
                    Err(reason) => observations.push(Obs::Shed { reason: reason.name() }),
                }
            } else {
                let _ = tx.send(Job {
                    idx,
                    ticket: None,
                    arrival,
                    deadline: Deadline::NONE,
                });
            }
        }
        drop(tx);
        let mut merged: Vec<Obs> = Vec::new();
        for h in handles {
            merged.extend(
                h.join()
                    .expect("invariant: load-bench worker threads never panic"),
            );
        }
        merged
    })
    .expect("invariant: load-bench scope threads never panic");
    observations.extend(worker_obs);
    (observations, start)
}

/// Folds one run's observations plus the post-run metrics snapshot into
/// a [`LoadLevelReport`].
#[allow(clippy::too_many_arguments)]
fn summarize(
    observations: &[Obs],
    snap: &MetricsSnapshot,
    mode: &str,
    multiplier: f64,
    offered_qps: f64,
    arrivals: u64,
    budget_nanos: u64,
    run_start: u64,
) -> LoadLevelReport {
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut shed_by_reason: BTreeMap<String, u64> = BTreeMap::new();
    let mut deadline_exceeded = 0u64;
    let mut degraded_mix = vec![0u64; snap.ladder_cost.len()];
    let mut latencies: Vec<u64> = Vec::with_capacity(observations.len());
    let mut last_done = run_start;
    for obs in observations {
        match obs {
            Obs::Served { level, arrival, done } => {
                completed += 1;
                bump(&mut degraded_mix, *level);
                latencies.push(done.saturating_sub(*arrival));
                last_done = last_done.max(*done);
            }
            Obs::Shed { reason } => {
                shed += 1;
                *shed_by_reason.entry((*reason).to_owned()).or_insert(0) += 1;
            }
            Obs::Deadline { arrival, done } => {
                deadline_exceeded += 1;
                latencies.push(done.saturating_sub(*arrival));
                last_done = last_done.max(*done);
            }
        }
    }
    let wall_nanos = last_done.saturating_sub(run_start).max(1);
    let wall_secs = wall_nanos as f64 / 1e9;
    // Goodput counts requests answered within the budget. A
    // deadline-blown attempt's latency necessarily exceeds the budget
    // (the deadline is arrival + budget), so the filter keeps only
    // completions.
    let good = latencies.iter().filter(|&&l| l <= budget_nanos).count() as u64;
    let busy_nanos: u64 = snap.stages.last().map(|h| h.sum_nanos).unwrap_or(0);
    latencies.sort_unstable();
    LoadLevelReport {
        mode: mode.to_owned(),
        multiplier,
        offered_qps,
        arrivals,
        completed,
        shed,
        shed_by_reason,
        deadline_exceeded,
        degraded_mix,
        achieved_qps: completed as f64 / wall_secs,
        goodput_qps: good as f64 / wall_secs,
        shed_rate: shed as f64 / arrivals.max(1) as f64,
        p50_ms: exact_percentile_ms(&latencies, 0.50),
        p99_ms: exact_percentile_ms(&latencies, 0.99),
        p999_ms: exact_percentile_ms(&latencies, 0.999),
        achieved_concurrency: busy_nanos as f64 / wall_nanos as f64,
        wall_ms: wall_nanos as f64 / 1e6,
    }
}

/// Runs the whole sweep: calibrate, derive the level rates, then run
/// every level unprotected and protected.
pub fn run_load_bench(
    ctx: &ExperimentContext,
    context_name: &str,
    opts: &LoadBenchOptions,
) -> LoadBenchReport {
    let dataset = "imageclef";
    let workload = build_workload(ctx, dataset, opts.variants);
    let clock = Arc::new(MonotonicClock::new());

    // The unprotected service doubles as the calibration target; the
    // calibration pass warms its cache exactly like a cold+warm replay.
    let unprotected = build_service(ctx, opts, AdmissionConfig::unlimited(), &clock);
    let costs = calibrate(&unprotected, &workload);
    let cal_snap = unprotected.metrics_snapshot();
    let mean_full_nanos = cal_snap
        .ladder_cost
        .first()
        .map(|h| h.mean_nanos)
        .unwrap_or(0.0)
        .max(1.0);
    let capacity_qps = opts.workers.max(1) as f64 / (mean_full_nanos / 1e9);
    let budget_nanos = (opts.deadline_mult
        * costs.first().copied().unwrap_or(1_000_000) as f64)
        .max(1.0) as u64;

    // Token rate 2× capacity is a deliberate backstop, not the primary
    // valve: queue-delay shedding and deadline-driven degradation are
    // what bound the tail; the bucket only caps pathological bursts.
    let admission = AdmissionConfig {
        queue_capacity: (opts.workers.max(1) * 16) as u64,
        rate_per_sec: (capacity_qps * 2.0).ceil().max(1.0) as u64,
        burst: (opts.workers.max(1) * 4) as u64,
        codel_target_nanos: costs.first().copied().unwrap_or(1_000_000),
        codel_interval_nanos: costs.first().copied().unwrap_or(1_000_000).saturating_mul(4),
        default_deadline_nanos: 0,
    };
    let protected = build_service(ctx, opts, admission, &clock);
    // Warm the protected service's cache the same way so the two modes
    // differ only in policy, then restart its metrics from calibration.
    let _ = calibrate(&protected, &workload);

    let rates: Vec<(f64, f64)> = if opts.explicit_rates.is_empty() {
        opts.multipliers.iter().map(|&m| (m, m * capacity_qps)).collect()
    } else {
        opts.explicit_rates.iter().map(|&r| (0.0, r)).collect()
    };

    let mut levels = Vec::with_capacity(rates.len() * 2);
    for (i, &(multiplier, rate_qps)) in rates.iter().enumerate() {
        let run_seed = opts.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (svc, mode, is_protected) in [
            (&unprotected, "unprotected", false),
            (&protected, "protected", true),
        ] {
            svc.reset_metrics();
            prime_ladder(svc, &costs);
            let (obs, run_start) = run_one_level(
                svc,
                &clock,
                &workload,
                opts,
                rate_qps,
                is_protected,
                budget_nanos,
                run_seed ^ (is_protected as u64),
            );
            levels.push(summarize(
                &obs,
                &svc.metrics_snapshot(),
                mode,
                multiplier,
                rate_qps,
                opts.arrivals as u64,
                budget_nanos,
                run_start,
            ));
        }
    }

    let calibrated_cost_ms: Vec<f64> = costs.iter().map(|&c| c as f64 / 1e6).collect();
    LoadBenchReport {
        context: context_name.to_owned(),
        dataset: dataset.to_owned(),
        workers: opts.workers,
        shards: opts.shards.max(1),
        variants: opts.variants,
        workload_size: workload.len(),
        seed: opts.seed,
        calibrated_cost_ms,
        capacity_qps_est: capacity_qps,
        deadline_budget_ms: budget_nanos as f64 / 1e6,
        levels,
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &LoadBenchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_load.json` (or any other path).
pub fn write_report(report: &LoadBenchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary table of the report.
pub fn format_report(report: &LoadBenchReport) -> String {
    let mut s = format!(
        "=== load-bench ({} bed, {} workers, {} shard(s), budget {:.2} ms, capacity ~{:.0} qps) ===\n{:<13}{:>6}{:>9}{:>7}{:>6}{:>6}  {:>13}{:>9}{:>9}{:>9}\n",
        report.context,
        report.workers,
        report.shards,
        report.deadline_budget_ms,
        report.capacity_qps_est,
        "mode",
        "x cap",
        "offered",
        "done",
        "shed",
        "ddl",
        "mix f/t/u",
        "p50 ms",
        "p99 ms",
        "goodput"
    );
    for l in &report.levels {
        s.push_str(&format!(
            "{:<13}{:>6.1}{:>9.0}{:>7}{:>6}{:>6}  {:>4}/{:>3}/{:>3}{:>9.2}{:>9.2}{:>9.0}\n",
            l.mode,
            l.multiplier,
            l.offered_qps,
            l.completed,
            l.shed,
            l.deadline_exceeded,
            l.degraded_mix.first().copied().unwrap_or(0),
            l.degraded_mix.get(1).copied().unwrap_or(0),
            l.degraded_mix.get(2).copied().unwrap_or(0),
            l.p50_ms,
            l.p99_ms,
            l.goodput_qps
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_reports_every_level_in_both_modes() {
        let ctx = ExperimentContext::small();
        let opts = LoadBenchOptions::smoke();
        let report = run_load_bench(&ctx, "small", &opts);
        assert_eq!(report.levels.len(), 2 * opts.multipliers.len());
        assert_eq!(report.workload_size, 12 * opts.variants as usize);
        assert!(report.capacity_qps_est > 0.0);
        assert!(report.deadline_budget_ms > 0.0);
        // Calibration observed every rung.
        for &c in &report.calibrated_cost_ms {
            assert!(c > 0.0, "calibrated cost must be positive, got {c}");
        }
        for l in &report.levels {
            assert_eq!(l.arrivals, opts.arrivals as u64);
            // Every arrival is accounted for exactly once.
            assert_eq!(
                l.completed + l.shed + l.deadline_exceeded,
                l.arrivals,
                "{} x{} loses requests",
                l.mode,
                l.multiplier
            );
            assert_eq!(l.degraded_mix.iter().sum::<u64>(), l.completed);
            assert_eq!(l.shed_by_reason.values().sum::<u64>(), l.shed);
            assert!(l.p999_ms >= l.p99_ms && l.p99_ms >= l.p50_ms);
            assert!(l.wall_ms > 0.0);
            if l.mode == "unprotected" {
                // No admission, no deadline: everything completes at the
                // full rung.
                assert_eq!(l.completed, l.arrivals);
                assert_eq!(l.shed, 0);
                assert_eq!(l.deadline_exceeded, 0);
                assert_eq!(l.degraded_mix.iter().skip(1).sum::<u64>(), 0);
            }
        }
        // The JSON round-trips through the vendored serde.
        let parsed: serde_json::Value =
            serde_json::from_str(&report_json(&report)).expect("report JSON parses");
        let mode = parsed
            .get("levels")
            .and_then(|l| l.as_array())
            .and_then(|l| l.first())
            .and_then(|l| l.get("mode"))
            .and_then(|m| m.as_str());
        assert_eq!(mode, Some("unprotected"));
        let table = format_report(&report);
        assert!(table.contains("protected"));
        assert!(table.contains("goodput"));
    }

    #[test]
    fn perturbed_workload_varies_but_keeps_originals() {
        let ctx = ExperimentContext::small();
        let workload = build_workload(&ctx, "imageclef", 3);
        let ds = ctx.bed.dataset("imageclef");
        assert_eq!(workload.len(), ds.queries.len() * 3);
        // Variant 0 of every query is the original text.
        for (q, chunk) in ds.queries.iter().zip(workload.chunks(3)) {
            let original = chunk.first().map(|(t, _)| t.as_str());
            assert_eq!(original, Some(q.text.as_str()));
        }
        // Perturbation produces at least one variant text differing from
        // its original (deterministically, given the fixed seed chain).
        let varied = ds
            .queries
            .iter()
            .zip(workload.chunks(3))
            .any(|(q, chunk)| chunk.iter().skip(1).any(|(t, _)| t != &q.text));
        assert!(varied, "perturbation must vary some variant");
    }
}
