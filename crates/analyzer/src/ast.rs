//! Lightweight AST for the v2 analysis layer.
//!
//! The parser ([`crate::parser`]) produces one [`SourceFile`] per workspace
//! file: a tree of items (functions, impls, modules, structs) whose function
//! bodies are lowered into a deliberately small expression language. The AST
//! is *lossy by design* — operator precedence, patterns, and type structure
//! are flattened — but it preserves exactly what the cross-file rules need:
//! call sites, method chains, casts, indexing, macro invocations, `for`
//! loops, and `let` bindings with their type ascriptions.
//!
//! Everything a rule cannot interpret parses into [`Expr::Other`] with its
//! children preserved, so traversal ([`Expr::walk`]) still reaches every
//! nested call site. Parse *errors* are reserved for structural damage
//! (unbalanced delimiters); ordinary unfamiliar syntax must never error.

/// A parse error. The parser is total over well-delimited input; errors
/// only arise from unbalanced `(`/`[`/`{` nesting.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One parsed workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Top-level items.
    pub items: Vec<Item>,
    /// Structural parse errors (empty for all well-formed Rust).
    pub errors: Vec<ParseError>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A function definition.
    Fn(FnDef),
    /// An inline module: `mod name { ... }`.
    Mod {
        /// Module name.
        name: String,
        /// 1-based line of the `mod` keyword.
        line: u32,
        /// Items inside the module body.
        items: Vec<Item>,
        /// True when the module carries `#[cfg(test)]`.
        is_test: bool,
    },
    /// An `impl` block; `ty` is the head identifier of the self type
    /// (`Csr` for `impl Csr`, `NanUnsafeSort` for `impl Rule for NanUnsafeSort`).
    Impl {
        /// Head identifier of the implemented-on type.
        ty: String,
        /// 1-based line of the `impl` keyword.
        line: u32,
        /// Items (mostly functions) inside the block.
        items: Vec<Item>,
    },
    /// A struct definition with named fields (tuple structs keep numeric
    /// field names "0", "1", ...).
    Struct {
        /// Type name.
        name: String,
        /// 1-based line.
        line: u32,
        /// `(field name, type text)` pairs.
        fields: Vec<(String, String)>,
    },
    /// Anything else (enums, traits without bodies we track, uses, consts).
    Other,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `(param name, type text)` pairs; `self` receivers are skipped.
    pub params: Vec<(String, String)>,
    /// Return type text after `->`, empty for `()`.
    pub ret: String,
    /// Body block; `None` for trait method declarations.
    pub body: Option<Block>,
    /// True when the function carries `#[test]` or lives under
    /// `#[cfg(test)]` (set by the parser from enclosing context).
    pub is_test: bool,
}

/// A `{ ... }` block lowered to a statement list.
#[derive(Debug)]
pub struct Block {
    /// Statements (and the trailing expression, if any) in order.
    pub stmts: Vec<Expr>,
    /// Items nested inside the block (e.g. helper `fn`s).
    pub items: Vec<Item>,
    /// 1-based line of the opening brace.
    pub line: u32,
}

/// A lowered expression.
#[derive(Debug)]
pub enum Expr {
    /// A path: `foo`, `Csr::from_raw_parts`, `self`.
    Path {
        /// `::`-separated segments (turbofish generics dropped).
        segs: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// A literal token (string, char, number).
    Lit {
        /// Literal source text, quotes included.
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// A call through a path or arbitrary callee: `f(a)`, `Csr::new(x)`.
    Call {
        /// Callee expression (usually `Expr::Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the opening paren.
        line: u32,
    },
    /// A method call: `recv.name::<T>(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Turbofish text (`Vec<_>` for `collect::<Vec<_>>()`), empty if none.
        turbofish: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: u32,
    },
    /// Field access or tuple index: `recv.name`, `recv.0`.
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name ("0" for tuple fields).
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// A macro invocation: `name!(...)` / `name![...]` / `name!{...}`.
    Macro {
        /// Macro path joined with `::` (usually one segment).
        name: String,
        /// Loosely parsed interior expressions.
        inner: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// An `expr as Type` cast.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Target type text (`u32`, `&[u8]`, ...).
        ty: String,
        /// 1-based line of the `as`.
        line: u32,
    },
    /// Indexing: `recv[index]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 1-based line of the opening bracket.
        line: u32,
    },
    /// A `for pat in iter { body }` loop.
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 1-based line of the `for`.
        line: u32,
    },
    /// A `let` statement.
    Let {
        /// Bound name when the pattern is a single identifier.
        name: Option<String>,
        /// Type ascription text, if any.
        ty: Option<String>,
        /// Initializer.
        init: Option<Box<Expr>>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// A closure; parameters are dropped, the body is kept.
    Closure {
        /// Closure body expression.
        body: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A nested block expression.
    Block(Block),
    /// An `if cond { then } [else ...]` expression. `else_` holds the
    /// else branch: another [`Expr::If`] for `else if`, an
    /// [`Expr::Block`] for a plain `else { ... }`.
    If {
        /// Condition (`if let` keeps the binding inside as an `Expr::Let`).
        cond: Box<Expr>,
        /// Then branch.
        then: Block,
        /// Else branch, if any.
        else_: Option<Box<Expr>>,
        /// 1-based line of the `if`.
        line: u32,
    },
    /// A `while cond { body }` loop (`while let` keeps its binding in
    /// `cond`).
    While {
        /// Loop condition.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 1-based line of the `while`.
        line: u32,
    },
    /// A bare `loop { body }`.
    Loop {
        /// Loop body.
        body: Block,
        /// 1-based line of the `loop`.
        line: u32,
    },
    /// A `match scrutinee { ... }`. Arms hold guard and body expressions
    /// in source order; patterns are dropped.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arm guards and bodies.
        arms: Vec<Expr>,
        /// 1-based line of the `match`.
        line: u32,
    },
    /// `return [value]` (also covers `yield`).
    Return {
        /// Returned value, if any.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `break [value]` (loop labels are dropped).
    Break {
        /// Break value, if any.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `continue` (loop labels are dropped).
    Continue {
        /// 1-based line.
        line: u32,
    },
    /// The postfix `?` operator: `expr?`.
    Try {
        /// Operand.
        expr: Box<Expr>,
        /// 1-based line of the `?`.
        line: u32,
    },
    /// An assignment or compound assignment: `lhs = rhs`, `lhs += rhs`,
    /// `lhs <<= rhs`, ...
    Assign {
        /// Operator text (`=`, `+=`, `<<=`, ...).
        op: String,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
    },
    /// Any structured node the rules don't interpret directly (binary
    /// operator chains, tuples, array literals). Children are preserved
    /// for traversal.
    Other {
        /// Child expressions in source order.
        children: Vec<Expr>,
        /// 1-based line of the first token.
        line: u32,
    },
}

impl Expr {
    /// 1-based line of the node.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Index { line, .. }
            | Expr::For { line, .. }
            | Expr::Let { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Match { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line, .. }
            | Expr::Continue { line, .. }
            | Expr::Try { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Other { line, .. } => *line,
            Expr::Block(b) => b.line,
        }
    }

    /// Preorder walk over this expression and every nested child,
    /// including blocks of `for` loops and nested block expressions.
    /// Items nested inside blocks are *not* entered (they are separate
    /// definitions, walked via their own `FnDef`).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Macro { inner, .. } => {
                for e in inner {
                    e.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Index { recv, index, .. } => {
                recv.walk(f);
                index.walk(f);
            }
            Expr::For { iter, body, .. } => {
                iter.walk(f);
                for s in &body.stmts {
                    s.walk(f);
                }
            }
            Expr::Let { init, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Block(b) => {
                for s in &b.stmts {
                    s.walk(f);
                }
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                cond.walk(f);
                for s in &then.stmts {
                    s.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::While { cond, body, .. } => {
                cond.walk(f);
                for s in &body.stmts {
                    s.walk(f);
                }
            }
            Expr::Loop { body, .. } => {
                for s in &body.stmts {
                    s.walk(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            Expr::Return { value, .. } | Expr::Break { value, .. } => {
                if let Some(e) = value {
                    e.walk(f);
                }
            }
            Expr::Continue { .. } => {}
            Expr::Try { expr, .. } => expr.walk(f),
            Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Other { children, .. } => {
                for c in children {
                    c.walk(f);
                }
            }
        }
    }

    /// Flattens the node back to approximate source text (identifier and
    /// punctuation soup). Used by heuristic rules to name operands in
    /// messages and to match guard expressions.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.write_text(&mut out);
        out
    }

    fn write_text(&self, out: &mut String) {
        match self {
            Expr::Path { segs, .. } => out.push_str(&segs.join("::")),
            Expr::Lit { text, .. } => out.push_str(text),
            Expr::Call { callee, args, .. } => {
                callee.write_text(out);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_text(out);
                }
                out.push(')');
            }
            Expr::MethodCall {
                recv, method, args, ..
            } => {
                recv.write_text(out);
                out.push('.');
                out.push_str(method);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_text(out);
                }
                out.push(')');
            }
            Expr::Field { recv, name, .. } => {
                recv.write_text(out);
                out.push('.');
                out.push_str(name);
            }
            Expr::Macro { name, .. } => {
                out.push_str(name);
                out.push_str("!(..)");
            }
            Expr::Cast { expr, ty, .. } => {
                expr.write_text(out);
                out.push_str(" as ");
                out.push_str(ty);
            }
            Expr::Index { recv, index, .. } => {
                recv.write_text(out);
                out.push('[');
                index.write_text(out);
                out.push(']');
            }
            Expr::For { .. } => out.push_str("for .. {}"),
            Expr::Let { name, .. } => {
                out.push_str("let ");
                if let Some(n) = name {
                    out.push_str(n);
                }
            }
            Expr::Closure { .. } => out.push_str("|..| .."),
            Expr::Block(_) => out.push_str("{..}"),
            Expr::If { cond, .. } => {
                out.push_str("if ");
                cond.write_text(out);
                out.push_str(" {..}");
            }
            Expr::While { cond, .. } => {
                out.push_str("while ");
                cond.write_text(out);
                out.push_str(" {..}");
            }
            Expr::Loop { .. } => out.push_str("loop {..}"),
            Expr::Match { scrutinee, .. } => {
                out.push_str("match ");
                scrutinee.write_text(out);
                out.push_str(" {..}");
            }
            Expr::Return { value, .. } => {
                out.push_str("return");
                if let Some(v) = value {
                    out.push(' ');
                    v.write_text(out);
                }
            }
            Expr::Break { .. } => out.push_str("break"),
            Expr::Continue { .. } => out.push_str("continue"),
            Expr::Try { expr, .. } => {
                expr.write_text(out);
                out.push('?');
            }
            Expr::Assign { op, lhs, rhs, .. } => {
                lhs.write_text(out);
                out.push(' ');
                out.push_str(op);
                out.push(' ');
                rhs.write_text(out);
            }
            Expr::Other { children, .. } => {
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    c.write_text(out);
                }
            }
        }
    }

    /// The leftmost identifier of the expression (`out` for
    /// `out.targets.len()`), used to correlate guards with operands.
    pub fn root_ident(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.first().map(String::as_str),
            Expr::Call { callee, .. } => callee.root_ident(),
            Expr::MethodCall { recv, .. } => recv.root_ident(),
            Expr::Field { recv, .. } => recv.root_ident(),
            Expr::Cast { expr, .. } => expr.root_ident(),
            Expr::Index { recv, .. } => recv.root_ident(),
            Expr::If { cond, .. } | Expr::While { cond, .. } => cond.root_ident(),
            Expr::Match { scrutinee, .. } => scrutinee.root_ident(),
            Expr::Try { expr, .. } => expr.root_ident(),
            Expr::Assign { lhs, .. } => lhs.root_ident(),
            Expr::Return { value, .. } | Expr::Break { value, .. } => {
                value.as_deref().and_then(Expr::root_ident)
            }
            Expr::Other { children, .. } => children.iter().find_map(|c| c.root_ident()),
            _ => None,
        }
    }
}

impl SourceFile {
    /// Preorder walk over every function in the file (module- and
    /// impl-nested included, plus helper fns nested inside bodies).
    /// The callback receives the impl-type qualifier (`Some("Csr")` inside
    /// `impl Csr`) and whether the function is test code.
    pub fn for_each_fn<'a>(&'a self, f: &mut impl FnMut(Option<&'a str>, bool, &'a FnDef)) {
        fn rec<'a>(
            items: &'a [Item],
            ty: Option<&'a str>,
            in_test: bool,
            f: &mut impl FnMut(Option<&'a str>, bool, &'a FnDef),
        ) {
            for item in items {
                match item {
                    Item::Fn(def) => {
                        let is_test = in_test || def.is_test;
                        f(ty, is_test, def);
                        if let Some(body) = &def.body {
                            rec_block(body, ty, is_test, f);
                        }
                    }
                    Item::Mod { items, is_test, .. } => {
                        rec(items, None, in_test || *is_test, f);
                    }
                    Item::Impl { ty: t, items, .. } => {
                        rec(items, Some(t.as_str()), in_test, f);
                    }
                    Item::Struct { .. } | Item::Other => {}
                }
            }
        }
        fn rec_block<'a>(
            b: &'a Block,
            ty: Option<&'a str>,
            in_test: bool,
            f: &mut impl FnMut(Option<&'a str>, bool, &'a FnDef),
        ) {
            rec(&b.items, ty, in_test, f);
            // Blocks nested in statements may themselves hold items; the
            // statement walk does not enter items, so descend explicitly.
            for s in &b.stmts {
                s.walk(&mut |e| match e {
                    Expr::Block(inner) => rec(&inner.items, ty, in_test, f),
                    Expr::For { body, .. }
                    | Expr::While { body, .. }
                    | Expr::Loop { body, .. } => rec(&body.items, ty, in_test, f),
                    Expr::If { then, .. } => rec(&then.items, ty, in_test, f),
                    _ => {}
                });
            }
        }
        rec(&self.items, None, false, f)
    }
}
