// Fixture: the same pipeline made deterministic at the source — a
// BTreeMap iterates in key order, so the accumulated total (and the
// report written from it) is a pure function of the map contents.

pub fn total_score(weights: &BTreeMap<String, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn scale(total: f64) -> f64 {
    total * 0.5
}

pub fn emit(out: &mut Vec<u8>, weights: &BTreeMap<String, f64>) {
    write_report(out, scale(total_score(weights)));
}
