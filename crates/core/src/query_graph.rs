//! Query graph construction.
//!
//! "SQE consists in, given the query nodes as a starting point, identify
//! all the nodes of the Wikipedia graph that are part of a motif and add
//! them to the query graph. At the same time, while the motifs are being
//! traversed, we build a set of pairs ⟨a, |m_a|⟩, where a is an article
//! that has appeared among the expansion nodes, and |m_a| is the number of
//! motifs in which it has appeared." (Section 2.2)

use kbgraph::{ArticleId, KbGraph};
use rustc_hash::FxHashMap;

use crate::motif::Motif;
use crate::spec::MotifSet;

/// The query graph: query nodes plus weighted expansion nodes.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    /// The articles the user's query was linked to.
    pub query_nodes: Vec<ArticleId>,
    /// Expansion articles with their motif multiplicities `|m_a|`,
    /// sorted by descending multiplicity then article id.
    pub expansions: Vec<(ArticleId, u32)>,
}

impl QueryGraph {
    /// Number of expansion nodes.
    pub fn num_expansions(&self) -> usize {
        self.expansions.len()
    }

    /// The multiplicity of an expansion article, 0 if absent.
    pub fn multiplicity(&self, a: ArticleId) -> u32 {
        self.expansions
            .iter()
            .find(|&&(x, _)| x == a)
            .map_or(0, |&(_, m)| m)
    }

    /// Keeps only the `n` highest-multiplicity expansions.
    pub fn truncate(&mut self, n: usize) {
        self.expansions.truncate(n);
    }

    /// Renders the query graph (query nodes, expansion nodes, and their
    /// categories) as Graphviz DOT in the style of the paper's Figures
    /// 3–4: black round query nodes, white round expansion nodes, square
    /// categories.
    pub fn to_dot(&self, graph: &KbGraph, name: &str) -> String {
        use kbgraph::dot::{to_dot, NodeRole};
        use kbgraph::{CategoryId, Node};
        let mut nodes: Vec<(Node, NodeRole)> = Vec::new();
        let mut cats: Vec<u32> = Vec::new();
        for &qn in &self.query_nodes {
            nodes.push((Node::Article(qn), NodeRole::Query));
            cats.extend_from_slice(graph.categories_of(qn));
        }
        for &(a, _) in &self.expansions {
            nodes.push((Node::Article(a), NodeRole::Expansion));
            cats.extend_from_slice(graph.categories_of(a));
        }
        cats.sort_unstable();
        cats.dedup();
        for c in cats {
            nodes.push((Node::Category(CategoryId::new(c)), NodeRole::Context));
        }
        to_dot(graph, &nodes, name)
    }
}

/// Reusable buffers for [`QueryGraphBuilder::build_with_scratch`]: the
/// multiplicity map and the per-motif traversal buffer survive across
/// queries so batch serving does not reallocate per query.
#[derive(Debug, Default)]
pub struct QueryGraphScratch {
    counts: FxHashMap<ArticleId, u32>,
    motif_buf: Vec<(ArticleId, u32)>,
}

impl QueryGraphScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        QueryGraphScratch::default()
    }
}

/// Builds query graphs by running a motif set from every query node.
pub struct QueryGraphBuilder<'g> {
    graph: &'g KbGraph,
    motifs: Vec<Box<dyn Motif>>,
}

impl<'g> QueryGraphBuilder<'g> {
    /// Creates a builder over the KB with the given motif set.
    pub fn new(graph: &'g KbGraph, motifs: Vec<Box<dyn Motif>>) -> Self {
        QueryGraphBuilder { graph, motifs }
    }

    /// Builds from a canonical [`MotifSet`], compiling every spec to its
    /// CSR traversal. The paper's configurations are
    /// [`MotifSet::triangular`] (`SQE_T`), [`MotifSet::square`]
    /// (`SQE_S`) and [`MotifSet::t_and_s`] (`SQE_T&S`).
    pub fn from_set(graph: &'g KbGraph, motifs: &MotifSet) -> Self {
        QueryGraphBuilder::new(graph, motifs.compile())
    }

    /// The underlying KB graph.
    pub fn graph(&self) -> &KbGraph {
        self.graph
    }

    /// Builds the query graph of a set of query nodes: the union of all
    /// motif expansions over all query nodes, with `|m_a|` summed across
    /// motifs *and* query nodes. Query nodes never appear among their own
    /// expansions.
    pub fn build(&self, query_nodes: &[ArticleId]) -> QueryGraph {
        self.build_with_scratch(query_nodes, &mut QueryGraphScratch::new())
    }

    /// [`QueryGraphBuilder::build`] with caller-owned scratch buffers;
    /// identical output (the multiplicity map is drained and the result
    /// fully sorted, so map iteration order never leaks).
    pub fn build_with_scratch(
        &self,
        query_nodes: &[ArticleId],
        scratch: &mut QueryGraphScratch,
    ) -> QueryGraph {
        scratch.counts.clear();
        for &qn in query_nodes {
            for motif in &self.motifs {
                scratch.motif_buf.clear();
                motif.expansions_into(self.graph, qn, &mut scratch.motif_buf);
                for &(a, m) in &scratch.motif_buf {
                    if !query_nodes.contains(&a) {
                        *scratch.counts.entry(a).or_insert(0) += m;
                    }
                }
            }
        }
        let mut expansions: Vec<(ArticleId, u32)> = scratch.counts.drain().collect();
        expansions.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        QueryGraph {
            query_nodes: query_nodes.to_vec(),
            expansions,
        }
    }

    /// Builds query graphs for many queries, spreading whole-query work
    /// items over `threads` workers via the work-stealing executor (the
    /// parallelization the paper's Section 4.4 suggests). Results keep
    /// input order.
    pub fn build_many(&self, queries: &[Vec<ArticleId>], threads: usize) -> Vec<QueryGraph> {
        crate::serve::run_indexed(queries, threads, QueryGraphScratch::new, |q, scratch| {
            self.build_with_scratch(q, scratch)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;

    /// Two query nodes sharing one expansion partner (via triangles) and
    /// each having a private square partner.
    fn toy() -> (KbGraph, Vec<ArticleId>, ArticleId) {
        let mut b = GraphBuilder::new();
        let q1 = b.add_article("q1");
        let q2 = b.add_article("q2");
        let shared = b.add_article("shared");
        let c = b.add_category("c");
        b.add_membership(q1, c);
        b.add_membership(q2, c);
        b.add_membership(shared, c);
        b.add_mutual_link(q1, shared);
        b.add_mutual_link(q2, shared);
        (b.build(), vec![q1, q2], shared)
    }

    #[test]
    fn multiplicity_sums_over_query_nodes() {
        let (g, qns, shared) = toy();
        let builder = QueryGraphBuilder::from_set(&g, &MotifSet::triangular());
        let qg = builder.build(&qns);
        assert_eq!(qg.num_expansions(), 1);
        // One triangle from q1 and one from q2.
        assert_eq!(qg.multiplicity(shared), 2);
    }

    #[test]
    fn query_nodes_excluded_from_expansions() {
        let mut b = GraphBuilder::new();
        let q1 = b.add_article("q1");
        let q2 = b.add_article("q2");
        let c = b.add_category("c");
        b.add_membership(q1, c);
        b.add_membership(q2, c);
        b.add_mutual_link(q1, q2);
        let g = b.build();
        let builder = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s());
        let qg = builder.build(&[q1, q2]);
        assert_eq!(
            qg.num_expansions(),
            0,
            "query nodes expand each other but must not be expansion nodes"
        );
    }

    #[test]
    fn empty_motif_set_builds_empty_graph() {
        let (g, qns, _) = toy();
        let builder = QueryGraphBuilder::new(&g, Vec::new());
        let qg = builder.build(&qns);
        assert!(qg.expansions.is_empty());
        assert_eq!(qg.query_nodes, qns);
    }

    #[test]
    fn both_motifs_sum_multiplicities() {
        // A pair that closes one triangle AND one square.
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let x = b.add_article("x");
        let c = b.add_category("c");
        let sub = b.add_category("sub");
        b.add_membership(q, c);
        b.add_membership(x, c);
        b.add_membership(x, sub);
        b.add_subcategory(sub, c);
        b.add_mutual_link(q, x);
        let g = b.build();
        let t = QueryGraphBuilder::from_set(&g, &MotifSet::triangular()).build(&[q]);
        let s = QueryGraphBuilder::from_set(&g, &MotifSet::square()).build(&[q]);
        let ts = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s()).build(&[q]);
        assert_eq!(ts.multiplicity(x), t.multiplicity(x) + s.multiplicity(x));
    }

    #[test]
    fn expansions_sorted_by_multiplicity() {
        let (g, qns, _) = toy();
        let builder = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s());
        let qg = builder.build(&qns);
        for w in qg.expansions.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn truncate_keeps_top() {
        let mut qg = QueryGraph {
            query_nodes: vec![],
            expansions: vec![
                (ArticleId::new(1), 5),
                (ArticleId::new(2), 3),
                (ArticleId::new(3), 1),
            ],
        };
        qg.truncate(2);
        assert_eq!(qg.num_expansions(), 2);
        assert_eq!(qg.multiplicity(ArticleId::new(3)), 0);
    }

    #[test]
    fn dot_rendering_includes_roles() {
        let (g, qns, shared) = toy();
        let qg = QueryGraphBuilder::from_set(&g, &MotifSet::triangular()).build(&qns);
        let dot = qg.to_dot(&g, "test");
        assert!(dot.contains("fillcolor=black"), "query nodes black");
        assert!(dot.contains("fillcolor=white"), "expansion nodes white");
        assert!(dot.contains("shape=box"), "categories as boxes");
        let _ = shared;
    }

    #[test]
    fn build_many_matches_sequential() {
        let (g, qns, _) = toy();
        let builder = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s());
        let queries: Vec<Vec<ArticleId>> = vec![qns.clone(), vec![qns[0]], vec![qns[1]]];
        let seq = builder.build_many(&queries, 1);
        let par = builder.build_many(&queries, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.expansions, b.expansions);
        }
    }
}
