//! SQE_C: rank-range combination of several result lists.
//!
//! Section 2.2.1 / 4.1: "we have configured SQE_C combining the results
//! achieved by the executions of SQE_T, SQE_T&S and SQE_S in a way that
//! the first five results come from SQE_T, the next 195 results come from
//! SQE_T&S and the rest of the results come from SQE_S."

/// One segment of the combined ranking: take results from `run` until the
/// combined list reaches `until_rank` (1-based, inclusive). The last
/// segment should use `usize::MAX` to absorb the tail.
#[derive(Debug, Clone)]
pub struct RankSegment<'a> {
    /// The source ranking (document ids, best first).
    pub run: &'a [String],
    /// Fill the combined list up to this rank with this source.
    pub until_rank: usize,
}

/// Stitches ranked lists by rank range, skipping documents already taken
/// by an earlier segment. Sources shorter than their range simply yield
/// fewer documents; later segments continue the fill.
pub fn combine_rankings(segments: &[RankSegment<'_>]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut seen: rustc_hash::FxHashSet<&str> = rustc_hash::FxHashSet::default();
    for seg in segments {
        let mut source = seg.run.iter();
        while out.len() < seg.until_rank {
            match source.next() {
                Some(doc) => {
                    if seen.insert(doc.as_str()) {
                        out.push(doc.clone());
                    }
                }
                None => break,
            }
        }
    }
    out
}

/// The paper's SQE_C configuration: ranks 1–5 from `sqe_t`, 6–200 from
/// `sqe_ts`, the rest (up to `depth`) from `sqe_s`.
pub fn sqe_c(
    sqe_t: &[String],
    sqe_ts: &[String],
    sqe_s: &[String],
    depth: usize,
) -> Vec<String> {
    combine_rankings(&[
        RankSegment {
            run: sqe_t,
            until_rank: 5.min(depth),
        },
        RankSegment {
            run: sqe_ts,
            until_rank: 200.min(depth),
        },
        RankSegment {
            run: sqe_s,
            until_rank: depth,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn segments_fill_their_ranges() {
        let a = docs("a", 10);
        let b = docs("b", 10);
        let combined = combine_rankings(&[
            RankSegment {
                run: &a,
                until_rank: 3,
            },
            RankSegment {
                run: &b,
                until_rank: 6,
            },
        ]);
        assert_eq!(combined, vec!["a0", "a1", "a2", "b0", "b1", "b2"]);
    }

    #[test]
    fn duplicates_across_segments_skipped() {
        let a = vec!["x".to_owned(), "y".to_owned()];
        let b = vec!["y".to_owned(), "z".to_owned(), "w".to_owned()];
        let combined = combine_rankings(&[
            RankSegment {
                run: &a,
                until_rank: 2,
            },
            RankSegment {
                run: &b,
                until_rank: 4,
            },
        ]);
        assert_eq!(combined, vec!["x", "y", "z", "w"]);
    }

    #[test]
    fn short_source_passes_to_next_segment() {
        let a = vec!["only".to_owned()];
        let b = docs("b", 5);
        let combined = combine_rankings(&[
            RankSegment {
                run: &a,
                until_rank: 3,
            },
            RankSegment {
                run: &b,
                until_rank: 5,
            },
        ]);
        assert_eq!(combined.len(), 5);
        assert_eq!(combined[0], "only");
        assert_eq!(combined[1], "b0");
    }

    #[test]
    fn paper_configuration_ranges() {
        let t = docs("t", 300);
        let ts = docs("m", 300);
        let s = docs("s", 300);
        let combined = sqe_c(&t, &ts, &s, 1000);
        // 5 from T, 195 from T&S, then all 300 of S (none seen before).
        assert_eq!(combined.len(), 5 + 195 + 300);
        assert!(combined[..5].iter().all(|d| d.starts_with('t')));
        assert!(combined[5..200].iter().all(|d| d.starts_with('m')));
        assert!(combined[200..].iter().all(|d| d.starts_with('s')));
    }

    #[test]
    fn depth_truncates_all_segments() {
        let t = docs("t", 300);
        let ts = docs("m", 300);
        let s = docs("s", 300);
        let combined = sqe_c(&t, &ts, &s, 3);
        assert_eq!(combined, vec!["t0", "t1", "t2"]);
    }

    #[test]
    fn empty_sources_yield_empty() {
        let combined = sqe_c(&[], &[], &[], 100);
        assert!(combined.is_empty());
    }

    #[test]
    fn empty_middle_source_falls_through_to_tail_segment() {
        // SQE_T&S empty: ranks 6+ come straight from SQE_S.
        let t = docs("t", 10);
        let s = docs("s", 10);
        let combined = sqe_c(&t, &[], &s, 1000);
        assert_eq!(combined.len(), 15);
        assert!(combined[..5].iter().all(|d| d.starts_with('t')));
        assert!(combined[5..].iter().all(|d| d.starts_with('s')));
    }

    #[test]
    fn empty_leading_source_starts_with_second_segment() {
        let ts = docs("m", 10);
        let s = docs("s", 10);
        let combined = sqe_c(&[], &ts, &s, 1000);
        assert_eq!(combined.len(), 20);
        assert_eq!(combined[0], "m0", "T empty: rank 1 comes from T&S");
    }

    #[test]
    fn fewer_than_five_in_sqe_t_tops_up_from_ts() {
        // SQE_T returns only 2 results: ranks 3–5 must come from SQE_T&S,
        // not stay empty.
        let t = docs("t", 2);
        let ts = docs("m", 10);
        let s = docs("s", 10);
        let combined = sqe_c(&t, &ts, &s, 1000);
        assert_eq!(
            &combined[..5],
            &["t0", "t1", "m0", "m1", "m2"],
            "the first-five range is topped up by the next segment"
        );
        assert_eq!(combined.len(), 2 + 10 + 10);
    }

    #[test]
    fn duplicate_across_all_three_segments_keeps_earliest_rank() {
        // "dup" appears in every run; only its first (T) occurrence may
        // survive, and later segments must not re-emit or re-rank it.
        let t = vec!["dup".to_owned(), "t1".to_owned()];
        let ts = vec!["dup".to_owned(), "m1".to_owned()];
        let s = vec!["s1".to_owned(), "dup".to_owned(), "s2".to_owned()];
        let combined = sqe_c(&t, &ts, &s, 1000);
        assert_eq!(combined, vec!["dup", "t1", "m1", "s1", "s2"]);
        assert_eq!(
            combined.iter().filter(|d| d.as_str() == "dup").count(),
            1,
            "duplicates keep exactly the earlier rank"
        );
    }

    #[test]
    fn duplicate_skips_do_not_consume_rank_budget() {
        // The first-five range takes five *distinct* documents from T&S
        // even when some of its head duplicates T.
        let t = vec!["a".to_owned()];
        let ts = vec![
            "a".to_owned(),
            "b".to_owned(),
            "c".to_owned(),
            "d".to_owned(),
            "e".to_owned(),
            "f".to_owned(),
        ];
        let combined = sqe_c(&t, &ts, &[], 5);
        assert_eq!(combined, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn zero_depth_yields_empty() {
        let t = docs("t", 3);
        assert!(sqe_c(&t, &t, &t, 0).is_empty());
    }

    #[test]
    fn segment_with_until_rank_below_current_length_is_skipped() {
        // A later segment whose range is already filled contributes
        // nothing (until_rank is a target length, not a quota).
        let a = docs("a", 5);
        let b = docs("b", 5);
        let combined = combine_rankings(&[
            RankSegment {
                run: &a,
                until_rank: 4,
            },
            RankSegment {
                run: &b,
                until_rank: 2,
            },
        ]);
        assert_eq!(combined, vec!["a0", "a1", "a2", "a3"]);
    }
}
