/root/repo/target/debug/examples/motif_learning-c6330552fc7e2d1c.d: examples/motif_learning.rs

/root/repo/target/debug/examples/motif_learning-c6330552fc7e2d1c: examples/motif_learning.rs

examples/motif_learning.rs:
