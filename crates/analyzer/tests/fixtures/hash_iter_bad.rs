// Fixture: hash-container iteration linearized into ordered output with
// no total-order sort — both the collect-chain and for-loop shapes.

use rustc_hash::FxHashMap;

pub fn ranked_titles(m: &FxHashMap<String, f64>) -> Vec<String> {
    m.keys().cloned().collect::<Vec<String>>()
}

pub fn render(m: &FxHashMap<String, f64>, out: &mut Vec<String>) {
    for (k, _score) in m.iter() {
        out.push(k.clone());
    }
}
