// Fixture: two functions acquire the same two mutexes in opposite
// orders — a deadlock waiting for the right interleaving.

pub fn transfer(&self) {
    let from = self.accounts.lock();
    let to = self.ledger.lock();
    from.apply(&to);
}

pub fn reconcile(&self) {
    let l = self.ledger.lock();
    let a = self.accounts.lock();
    l.reconcile_with(&a);
}
