//! Workspace symbol table: the cross-file half of the v2 analysis.
//!
//! [`WorkspaceModel`] owns every parsed [`SourceFile`] and derives the
//! lookup structures the ast rules share: struct field types (for
//! hash-container detection through `self.field`), crate attribution from
//! paths, and a flat function index consumed by [`crate::callgraph`].
//!
//! All derived tables use `BTreeMap` so analysis output is deterministic
//! — the linter practices what it lints.

use std::collections::BTreeMap;

use crate::ast::{FnDef, SourceFile};

/// The parsed workspace plus derived symbol tables.
pub struct WorkspaceModel {
    files: Vec<SourceFile>,
    /// `(type name, field name)` → field type text.
    field_types: BTreeMap<(String, String), String>,
}

/// Crate name a workspace-relative path belongs to (`kbgraph` for
/// `crates/kbgraph/src/csr.rs`; the root package for `src/`, `tests/`,
/// `examples/`).
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(end) = rest.find('/') {
            return &rest[..end];
        }
    }
    "sqe-repro"
}

/// True when a path is test-only code by location: integration test
/// trees. (In-file `#[cfg(test)]` modules are tracked per function.)
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

impl WorkspaceModel {
    /// Builds the model and its symbol tables from parsed files.
    pub fn new(files: Vec<SourceFile>) -> Self {
        let mut field_types = BTreeMap::new();
        for file in &files {
            collect_fields(&file.items, &mut field_types);
        }
        WorkspaceModel { files, field_types }
    }

    /// The parsed files, in the order given (the engine sorts by path).
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Declared type text of `ty.field`, if the struct was parsed.
    pub fn field_type(&self, ty: &str, field: &str) -> Option<&str> {
        self.field_types
            .get(&(ty.to_string(), field.to_string()))
            .map(String::as_str)
    }

    /// Iterates every known `(type, field, field type)` triple, in
    /// deterministic (type, field) order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.field_types
            .iter()
            .map(|((t, f), ty)| (t.as_str(), f.as_str(), ty.as_str()))
    }

    /// Visits every function in the workspace with its file, impl-type
    /// qualifier, and effective test-ness (location- or attribute-derived).
    pub fn for_each_fn<'a>(
        &'a self,
        f: &mut impl FnMut(&'a SourceFile, Option<&'a str>, bool, &'a FnDef),
    ) {
        for file in &self.files {
            let path_test = is_test_path(&file.rel);
            file.for_each_fn(&mut |ty, is_test, def| {
                f(file, ty, path_test || is_test, def);
            });
        }
    }
}

fn collect_fields(items: &[crate::ast::Item], out: &mut BTreeMap<(String, String), String>) {
    use crate::ast::Item;
    for item in items {
        match item {
            Item::Struct { name, fields, .. } => {
                for (fname, fty) in fields {
                    out.insert((name.clone(), fname.clone()), fty.clone());
                }
            }
            Item::Mod { items, .. } | Item::Impl { items, .. } => collect_fields(items, out),
            Item::Fn(def) => {
                if let Some(b) = &def.body {
                    collect_fields(&b.items, out);
                }
            }
            Item::Other => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/kbgraph/src/csr.rs"), "kbgraph");
        assert_eq!(crate_of("src/lib.rs"), "sqe-repro");
        assert_eq!(crate_of("tests/e2e.rs"), "sqe-repro");
    }

    #[test]
    fn field_types_indexed() {
        let f = parse_file(
            "crates/x/src/lib.rs",
            "pub struct S { pub m: FxHashMap<String, u32>, n: usize }",
        );
        let model = WorkspaceModel::new(vec![f]);
        assert!(model.field_type("S", "m").unwrap().contains("FxHashMap"));
        assert_eq!(model.field_type("S", "n"), Some("usize"));
        assert_eq!(model.field_type("S", "zz"), None);
    }

    #[test]
    fn test_paths_flag_fns() {
        let f = parse_file("crates/x/tests/it.rs", "fn helper() {}");
        let model = WorkspaceModel::new(vec![f]);
        let mut seen = Vec::new();
        model.for_each_fn(&mut |_, _, is_test, def| seen.push((def.name.clone(), is_test)));
        assert_eq!(seen, vec![("helper".to_string(), true)]);
    }
}
