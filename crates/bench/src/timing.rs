//! Table 4: query-graph construction and total expansion times.
//!
//! Timings follow a warmup + median-of-k protocol ([`TimingProtocol`]):
//! single wall-clock samples on a warm-cache-sensitive workload are noisy
//! enough to scramble the paper's T < S < T&S ordering, while the median
//! of several samples (each optionally averaging several inner
//! iterations) is stable enough to assert orderings in tests.

use std::time::Instant;

use crate::context::ExperimentContext;

/// Measurement protocol: `warmup` untimed executions, then `samples`
/// timed ones (each averaging `inner_iters` executions); the reported
/// value is the median sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingProtocol {
    /// Untimed executions before sampling (fills caches, pages code in).
    pub warmup: usize,
    /// Timed samples; the median is reported.
    pub samples: usize,
    /// Executions per sample (averaged), to lift tiny workloads above
    /// timer resolution.
    pub inner_iters: usize,
}

impl Default for TimingProtocol {
    fn default() -> Self {
        TimingProtocol {
            warmup: 1,
            samples: 5,
            inner_iters: 1,
        }
    }
}

impl TimingProtocol {
    /// A heavier protocol for tests that assert orderings between
    /// close timings.
    pub fn thorough() -> Self {
        TimingProtocol {
            warmup: 2,
            samples: 9,
            inner_iters: 5,
        }
    }
}

/// Median of the samples under the NaN-safe total order (0 when empty).
fn median_ms(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    let mid = n / 2;
    let take = |i: usize| samples.get(i).copied().unwrap_or(0.0);
    if n % 2 == 1 {
        take(mid)
    } else {
        (take(mid - 1) + take(mid)) / 2.0
    }
}

/// Runs `work` under the protocol and returns the median per-execution
/// milliseconds (shared with `store_bench`).
pub(crate) fn measure_ms(protocol: TimingProtocol, mut work: impl FnMut()) -> f64 {
    for _ in 0..protocol.warmup {
        work();
    }
    let samples_n = protocol.samples.max(1);
    let iters = protocol.inner_iters.max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(samples_n);
    for _ in 0..samples_n {
        let start = Instant::now();
        for _ in 0..iters {
            work();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    median_ms(&mut samples)
}

/// Timing of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetTiming {
    /// Dataset name.
    pub dataset: String,
    /// Milliseconds to build all query graphs with the triangular motif.
    pub sqe_t_ms: f64,
    /// Milliseconds with both motifs.
    pub sqe_ts_ms: f64,
    /// Milliseconds with the square motif.
    pub sqe_s_ms: f64,
    /// Milliseconds for the whole SQE_C pipeline (expansion + retrieval +
    /// combination) over all queries.
    pub total_ms: f64,
}

/// Measures Table 4 for one dataset with the default protocol.
pub fn measure_dataset(ctx: &ExperimentContext, dataset: &str) -> DatasetTiming {
    measure_dataset_with(ctx, dataset, TimingProtocol::default())
}

/// Measures Table 4 for one dataset under an explicit protocol.
pub fn measure_dataset_with(
    ctx: &ExperimentContext,
    dataset: &str,
    protocol: TimingProtocol,
) -> DatasetTiming {
    let r = ctx.runner(dataset);
    let pipeline = r.pipeline();
    let queries = &r.dataset().queries;
    let time_config = |motifs: &sqe::MotifSet| -> f64 {
        measure_ms(protocol, || {
            for q in queries {
                let nodes = r.manual_nodes(q);
                let qg = pipeline.build_query_graph(&nodes, motifs);
                std::hint::black_box(qg.num_expansions());
            }
        })
    };
    let sqe_t_ms = time_config(&sqe::MotifSet::triangular());
    let sqe_ts_ms = time_config(&sqe::MotifSet::t_and_s());
    let sqe_s_ms = time_config(&sqe::MotifSet::square());
    let total_ms = measure_ms(protocol, || {
        for q in queries {
            let nodes = r.manual_nodes(q);
            std::hint::black_box(pipeline.rank_sqe_c(&q.text, &nodes).len());
        }
    });
    DatasetTiming {
        dataset: dataset.to_owned(),
        sqe_t_ms,
        sqe_ts_ms,
        sqe_s_ms,
        total_ms,
    }
}

/// Formats Table 4 over the three datasets.
pub fn table4(ctx: &ExperimentContext) -> String {
    let mut s = String::from("=== Table 4: execution times (ms, whole query set) ===\n");
    s.push_str(&format!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}\n",
        "", "SQE_T", "SQE_T&S", "SQE_S", "Total Time"
    ));
    for d in ["imageclef", "chic2012", "chic2013"] {
        let t = measure_dataset(ctx, d);
        s.push_str(&format!(
            "{:<12}{:>12.2}{:>12.2}{:>12.2}{:>14.2}\n",
            t.dataset, t.sqe_t_ms, t.sqe_ts_ms, t.sqe_s_ms, t.total_ms
        ));
    }
    s.push_str("(paper, ms: ImageCLEF 47/94/52, CHiC12 74/178/106, CHiC13 52/120/69;\n");
    s.push_str(" totals 1373/8908/5361 — absolute values depend on hardware and scale,\n");
    s.push_str(" the shape to check: T < S < T&S and expansion ≪ total;\n");
    s.push_str(" each cell is the median of 5 samples after 1 warmup)\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut odd = [3.0, 1.0, 1000.0];
        assert_eq!(median_ms(&mut odd), 3.0);
        let mut even = [4.0, 2.0, 8.0, 1000.0];
        assert_eq!(median_ms(&mut even), 6.0);
        let mut empty: [f64; 0] = [];
        assert_eq!(median_ms(&mut empty), 0.0);
    }

    #[test]
    fn protocol_averages_inner_iterations() {
        // inner_iters divides the sample: timing k iterations of a
        // sleep-free counter loop still reports per-execution time.
        let mut runs = 0u32;
        let p = TimingProtocol {
            warmup: 2,
            samples: 3,
            inner_iters: 4,
        };
        let ms = measure_ms(p, || runs += 1);
        assert_eq!(runs, 2 + 3 * 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn timing_runs_and_orders() {
        let ctx = ExperimentContext::small();
        let t = measure_dataset_with(&ctx, "imageclef", TimingProtocol::thorough());
        assert!(t.sqe_t_ms > 0.0);
        assert!(t.total_ms > 0.0);
        // The paper's Table 4 shape, assertable thanks to warmup +
        // median-of-k: triangular traversal is cheaper than square
        // (superset check vs. pairwise category adjacency), and running
        // both motifs costs more than either alone.
        assert!(
            t.sqe_t_ms < t.sqe_s_ms,
            "T ({}) must be cheaper than S ({})",
            t.sqe_t_ms,
            t.sqe_s_ms
        );
        assert!(
            t.sqe_s_ms < t.sqe_ts_ms,
            "S ({}) must be cheaper than T&S ({})",
            t.sqe_s_ms,
            t.sqe_ts_ms
        );
        // Expansion alone is far cheaper than the full SQE_C pipeline.
        assert!(t.sqe_ts_ms < t.total_ms);
    }
}
