//! Byte-stability wall for format v1.
//!
//! Two guarantees beyond the unit tests:
//!
//! 1. **Canonical encoding at scale** — on a full synthetic test bed,
//!    encoding is a pure function of the contents: encoding twice, and
//!    re-encoding the *decoded* world, both reproduce the original
//!    bytes exactly. This is what makes snapshot files diffable and
//!    content-addressable.
//! 2. **Format freeze** — a fixed toy world must hash to a pinned
//!    golden checksum. If this test fails, the on-disk format changed:
//!    bump [`sqe_store::format::VERSION`], keep a decode path for v1,
//!    and only then update the constant.

use entitylink::Dictionary;
use kbgraph::GraphBuilder;
use searchlite::{Analyzer, Index, IndexBuilder};
use sqe_store::crc32::crc32;
use sqe_store::{encode_snapshot, Snapshot, SnapshotContents};
use synthwiki::{TestBed, TestBedConfig};

fn encode(graph: &kbgraph::KbGraph, named: &[(&str, &Index)], dict: &Dictionary) -> Vec<u8> {
    encode_snapshot(&SnapshotContents {
        graph,
        indexes: named,
        dict,
    })
    .expect("world encodes")
}

#[test]
fn testbed_snapshot_bytes_are_stable_and_canonical() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes: Vec<Index> = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text);
            }
            b.build()
        })
        .collect();
    let named: Vec<(&str, &Index)> = bed
        .collections
        .iter()
        .map(|c| c.name.as_str())
        .zip(indexes.iter())
        .collect();
    let mut dict = Dictionary::new();
    dict.extend(bed.kb.linker_entries(&bed.space));

    let first = encode(&bed.kb.graph, &named, &dict);
    let second = encode(&bed.kb.graph, &named, &dict);
    assert_eq!(first, second, "encoding the same world twice must be byte-identical");

    // Decode, then re-encode the decoded structures: still the same
    // bytes, so decode is lossless and encode is canonical (independent
    // of whether the inputs were freshly built or themselves loaded).
    let (graph, owned, dict2) = Snapshot::from_bytes(&first)
        .expect("snapshot decodes")
        .into_parts();
    let renamed: Vec<(&str, &Index)> = owned.iter().map(|(n, i)| (n.as_str(), i)).collect();
    let third = encode(&graph, &renamed, &dict2);
    assert_eq!(
        first, third,
        "re-encoding the decoded world must reproduce the original bytes"
    );
}

#[test]
fn golden_toy_snapshot_checksum_is_pinned() {
    let mut b = GraphBuilder::new();
    let cable = b.add_article("cable car");
    let funi = b.add_article("funicular");
    let rail = b.add_category("rail transport");
    b.add_article_link(cable, funi);
    b.add_article_link(funi, cable);
    b.add_membership(cable, rail);
    b.add_membership(funi, rail);
    let graph = b.build();
    let mut ib = IndexBuilder::new(Analyzer::english());
    ib.add_document("d0", "the cable car climbs");
    ib.add_document("d1", "a funicular railway");
    let index = ib.build();
    let mut dict = Dictionary::new();
    dict.add("cable car", cable, 1.0);
    dict.add("funicular", funi, 1.0);

    let bytes = encode(&graph, &[("toy", &index)], &dict);
    // Pinned at format v1. A mismatch means the byte layout drifted —
    // that is a format change, not a test to update casually.
    assert_eq!(
        crc32(&bytes),
        0xEF43_C309,
        "snapshot format drifted from the pinned v1 golden bytes \
         ({} bytes, crc {:#010x})",
        bytes.len(),
        crc32(&bytes)
    );
}
