//! Retrieval-path benchmarks: Dirichlet QL ranking for the baseline, the
//! expanded query, and the full SQE_C combination (Tables 1–2's inner
//! loop).

use criterion::{criterion_group, criterion_main, Criterion};
use sqe_bench::ExperimentContext;

fn bench_retrieval(c: &mut Criterion) {
    let ctx = ExperimentContext::small();
    let runner = ctx.runner("imageclef");
    let pipeline = runner.pipeline();
    let q = &runner.dataset().queries[0];
    let nodes = runner.manual_nodes(q);

    c.bench_function("rank/QL_Q", |b| {
        b.iter(|| pipeline.rank_user(std::hint::black_box(&q.text)).len())
    });
    c.bench_function("rank/QL_E", |b| {
        b.iter(|| pipeline.rank_entities(std::hint::black_box(&nodes)).len())
    });
    let motifs = sqe::MotifSet::t_and_s();
    c.bench_function("rank/SQE_T&S", |b| {
        b.iter(|| {
            pipeline
                .rank_sqe(std::hint::black_box(&q.text), &nodes, &motifs)
                .0
                .len()
        })
    });
    c.bench_function("rank/SQE_C", |b| {
        b.iter(|| pipeline.rank_sqe_c(std::hint::black_box(&q.text), &nodes).len())
    });
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
