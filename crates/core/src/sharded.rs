//! Sharded scatter-gather serving: N independent shards behind one
//! service, bit-identical to a single-shard build.
//!
//! [`ShardedService`] routes every document to one of N shards by a
//! deterministic hash of its external id ([`ShardRouter`]); each shard
//! is its own [`SegmentedIndex`] with its own seal/merge lifecycle and
//! its own published [`Searcher`] view. A query is *scattered*: each
//! shard resolves it locally and reports integer statistic
//! contributions; the *gather* step sums those integers into the exact
//! global statistics a monolithic index would hold, derives the f64
//! smoothing terms once, scores per shard, and merges the per-shard
//! top-k lists under the `scorecmp` total order (see
//! [`searchlite::shard`]). Run files written from the merged ranking
//! are therefore byte-identical for any shard count and any routing.
//!
//! # Identity of results
//!
//! Hits carry the **global ingest ordinal** as their [`DocId`]: the
//! position the document would occupy in a monolithic build ingesting
//! the same sequence. Per-shard local ids are monotone in that ordinal
//! (documents append in arrival order), so per-shard top-k lists mapped
//! through each shard's ordinal table merge into exactly the monolithic
//! top-k, ties and all.
//!
//! # Epoch vector
//!
//! Each shard publishes independently; [`ShardedService::epoch_vector`]
//! exposes the per-shard segment-set epochs. Sealing one shard bumps
//! exactly one vector entry and invalidates the shared expansion cache
//! exactly once — republishing an unchanged shard leaves the cache warm
//! (the same exactly-once contract [`QueryService`](crate::serve::QueryService) has, per shard).

use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use kbgraph::{ArticleId, KbGraph};
use searchlite::bm25::Bm25Params;
use searchlite::index::PositionalScratch;
use searchlite::ql::SearchHit;
use searchlite::shard::{
    bm25_global_stats, bm25_rank_shard, bm25_resolve_shard, merge_top_k, ql_global_pcs,
    ql_rank_shard, ql_resolve_shard, Bm25ShardResolve, QlShardResolve,
};
use searchlite::{Analyzer, DocId, IngestError, Query, SealReport, Searcher, SegmentedIndex, ShardRouter};
use sqe_admission::{
    select_rung, AdmissionController, Deadline, RungId, ServeOutcome, ShedReason, Stage, Ticket,
};

use crate::cache::{CacheKey, CachedExpansions, ExpansionCache};
use crate::combine;
use crate::expand;
use crate::metrics::{Clock, MetricsSnapshot, NullClock, ServeMetrics};
use crate::pipeline::{SqeConfig, SqeScratch};
use crate::query_graph::QueryGraphBuilder;
use crate::serve::{run_indexed, ServeConfig, ServeRequest};
use crate::spec::MotifSet;

/// The mutable side of a shard set: per-shard corpora plus the global
/// ordinal assignment. Lock order matches [`QueryService`](crate::serve::QueryService):
/// `maint` → `live` → `views`, always.
struct ShardedLive {
    shards: Vec<SegmentedIndex>,
    /// Per shard: local doc id → global ingest ordinal. Strictly
    /// increasing per shard (documents append in global arrival order).
    ordinals: Vec<Vec<u32>>,
    next_ordinal: u32,
}

/// One shard's published immutable view: a pinned [`Searcher`] plus the
/// ordinal table snapshot that maps its local doc ids to global
/// ordinals.
#[derive(Clone)]
struct ShardView {
    searcher: Searcher,
    ordinals: Arc<Vec<u32>>,
}

/// The sharded SQE query service: scatter-gather over N shards with
/// exact-integer global statistics, a shared expansion cache, the
/// work-stealing batch executor, and per-shard live ingestion.
pub struct ShardedService<'a> {
    graph: &'a KbGraph,
    cfg: SqeConfig,
    serve_cfg: ServeConfig,
    router: ShardRouter,
    /// Serializes maintenance (seals/merges) across all shards.
    maint: Mutex<()>,
    live: Mutex<ShardedLive>,
    /// The published per-shard views, swapped as one `Arc` so a query
    /// (or batch) pins a consistent shard set for its whole lifetime.
    views: RwLock<Arc<Vec<ShardView>>>,
    cache: ExpansionCache,
    metrics: ServeMetrics,
    clock: Arc<dyn Clock>,
    /// Gatekeeper for the deadline-aware `serve*` entry points; same
    /// clock-free, deterministic contract as the single-shard service.
    admission: AdmissionController,
}

impl<'a> ShardedService<'a> {
    /// Creates an empty service with `router.shards()` empty shards and
    /// the no-op [`NullClock`].
    pub fn new(
        graph: &'a KbGraph,
        analyzer: Analyzer,
        router: ShardRouter,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Self {
        ShardedService::with_clock(graph, analyzer, router, cfg, serve_cfg, Arc::new(NullClock))
    }

    /// [`ShardedService::new`] with an injected clock.
    pub fn with_clock(
        graph: &'a KbGraph,
        analyzer: Analyzer,
        router: ShardRouter,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let shards: Vec<SegmentedIndex> = (0..router.shards())
            .map(|_| SegmentedIndex::new(analyzer.clone()))
            .collect();
        let ordinals = vec![Vec::new(); shards.len()];
        ShardedService::from_shards_with_clock(graph, router, shards, ordinals, cfg, serve_cfg, clock)
    }

    /// Creates a service over existing per-shard corpora — the reopen
    /// path after loading one snapshot per shard. `ordinals` must map
    /// each shard's local doc ids to the global ingest ordinals of the
    /// original run (each vector strictly increasing); the caller
    /// recovers them from its ingest manifest. `shards` takes
    /// precedence over the router's count: the router is re-derived
    /// over `shards.len()` with the same salt.
    pub fn from_shards(
        graph: &'a KbGraph,
        router: ShardRouter,
        shards: Vec<SegmentedIndex>,
        ordinals: Vec<Vec<u32>>,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Self {
        ShardedService::from_shards_with_clock(
            graph,
            router,
            shards,
            ordinals,
            cfg,
            serve_cfg,
            Arc::new(NullClock),
        )
    }

    /// [`ShardedService::from_shards`] with an injected clock.
    pub fn from_shards_with_clock(
        graph: &'a KbGraph,
        router: ShardRouter,
        mut shards: Vec<SegmentedIndex>,
        mut ordinals: Vec<Vec<u32>>,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        if shards.is_empty() {
            // Degenerate input: serve an empty single-shard corpus
            // rather than a service that cannot answer anything.
            shards.push(SegmentedIndex::new(Analyzer::english()));
        }
        ordinals.resize(shards.len(), Vec::new());
        let router = ShardRouter::with_salt(shards.len(), router.salt());
        let next_ordinal = ordinals
            .iter()
            .flat_map(|o| o.iter().copied())
            .max()
            .map_or(0, |m| m.saturating_add(1));
        let views: Vec<ShardView> = shards
            .iter()
            .zip(&ordinals)
            .map(|(shard, ords)| ShardView {
                searcher: shard.searcher(),
                ordinals: Arc::new(ords.clone()),
            })
            .collect();
        #[cfg(all(debug_assertions, feature = "validate"))]
        {
            kbgraph::audit::GraphAudit::run(graph).assert_clean("ShardedService");
            for view in &views {
                for seg in view.searcher.segments() {
                    searchlite::audit::IndexAudit::run(seg.index()).assert_clean("ShardedService");
                }
            }
        }
        let cache = ExpansionCache::new(serve_cfg.cache_capacity);
        let metrics = ServeMetrics::new(serve_cfg.ladder.len());
        let admission = AdmissionController::new(serve_cfg.admission);
        ShardedService {
            graph,
            cfg,
            serve_cfg,
            router,
            maint: Mutex::new(()),
            live: Mutex::new(ShardedLive {
                shards,
                ordinals,
                next_ordinal,
            }),
            views: RwLock::new(Arc::new(views)),
            cache,
            metrics,
            clock,
            admission,
        }
    }

    /// Reopens a sharded deployment from one store snapshot per shard
    /// (each holding the collection under `collection`); see
    /// [`ShardedService::from_shards`] for the `ordinals` contract.
    pub fn from_shard_snapshots(
        graph: &'a KbGraph,
        snapshots: &[sqe_store::Snapshot],
        collection: &str,
        router: ShardRouter,
        ordinals: Vec<Vec<u32>>,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Result<Self, sqe_store::StoreError> {
        let mut shards = Vec::with_capacity(snapshots.len());
        for snap in snapshots {
            let searcher = snap.searcher(collection)?;
            shards.push(SegmentedIndex::from_segments(
                searcher.analyzer().clone(),
                searcher.segments().to_vec(),
            ));
        }
        Ok(ShardedService::from_shards(
            graph, router, shards, ordinals, cfg, serve_cfg,
        ))
    }

    fn maint_lock(&self) -> MutexGuard<'_, ()> {
        match self.maint.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn live_lock(&self) -> MutexGuard<'_, ShardedLive> {
        match self.live.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn views_read(&self) -> RwLockReadGuard<'_, Arc<Vec<ShardView>>> {
        match self.views.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Pins the current shard set (one `Arc` clone).
    fn pinned_views(&self) -> Arc<Vec<ShardView>> {
        Arc::clone(&self.views_read())
    }

    /// Publishes a refreshed view for one shard. Invalidates the shared
    /// expansion cache exactly once per epoch advance of that shard;
    /// republishing the same epoch leaves the cache warm.
    fn publish_shard(&self, shard: usize, searcher: Searcher, ordinals: Arc<Vec<u32>>) {
        // The successor vector is built outside the write lock; the
        // maintenance mutex (held by the only caller, `seal_shard`)
        // serializes publishes, so no concurrent publish can be lost.
        let current = self.pinned_views();
        let mut next: Vec<ShardView> = current.as_ref().clone();
        let Some(slot) = next.get_mut(shard) else {
            return;
        };
        let advanced = searcher.epoch() > slot.searcher.epoch();
        if advanced || searcher.epoch() == slot.searcher.epoch() {
            *slot = ShardView { searcher, ordinals };
            let next = Arc::new(next);
            let mut views = match self.views.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *views = next;
        }
        if advanced {
            self.cache.invalidate();
            self.metrics.invalidations.inc();
        }
    }

    // ----------------------------------------------------- accessors --

    /// The KB graph.
    pub fn graph(&self) -> &KbGraph {
        self.graph
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SqeConfig {
        &self.cfg
    }

    /// The document router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.router.shards()
    }

    /// The per-shard segment-set epochs of the published views. Sealing
    /// shard `s` bumps exactly entry `s`.
    pub fn epoch_vector(&self) -> Vec<u64> {
        self.views_read().iter().map(|v| v.searcher.epoch()).collect()
    }

    /// A pinned clone of one shard's published searcher.
    pub fn shard_searcher(&self, shard: usize) -> Option<Searcher> {
        self.views_read().get(shard).map(|v| v.searcher.clone())
    }

    /// One shard's local-id → global-ordinal table (pinned snapshot).
    pub fn shard_ordinals(&self, shard: usize) -> Option<Arc<Vec<u32>>> {
        self.views_read().get(shard).map(|v| Arc::clone(&v.ordinals))
    }

    /// Documents waiting in shard buffers (invisible until sealed).
    pub fn num_buffered_docs(&self) -> usize {
        self.live_lock().shards.iter().map(SegmentedIndex::num_buffered_docs).sum()
    }

    /// Searchable documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.views_read().iter().map(|v| v.searcher.num_docs()).sum()
    }

    /// Occupied cache entries (live and stale-but-unreclaimed).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Bumps the cache generation out of band; seals invalidate
    /// automatically.
    pub fn invalidate_cache(&self) {
        self.cache.invalidate();
        self.metrics.invalidations.inc();
    }

    /// Point-in-time copy of every metric. The snapshot's scalar epoch
    /// is the *sum* of the epoch vector — monotone under any seal or
    /// merge on any shard.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let epoch: u64 = self.epoch_vector().iter().sum();
        self.metrics.snapshot(self.cache.evictions(), epoch)
    }

    /// Zeroes counters and histograms without touching the cache.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    // ----------------------------------------------------- ingestion --

    /// Routes the document to its shard and buffers it there; it becomes
    /// searchable when that shard seals. Returns the **global ingest
    /// ordinal** as the document id — the id a monolithic build would
    /// have assigned. Duplicate external ids are rejected across the
    /// *whole* deployment: the owning shard checks its own corpus, and
    /// every other shard is probed too, so an id that routed differently
    /// in a previous life (different shard count or salt) still cannot
    /// be ingested twice.
    pub fn add_document(&self, external_id: &str, text: &str) -> Result<DocId, IngestError> {
        let t0 = self.clock.now_nanos();
        let result = {
            let mut live = self.live_lock();
            let target = self.router.route(external_id);
            let ShardedLive {
                shards,
                ordinals,
                next_ordinal,
            } = &mut *live;
            let duplicate_elsewhere = shards
                .iter()
                .enumerate()
                .any(|(s, shard)| s != target && shard.contains_external_id(external_id));
            if duplicate_elsewhere {
                Err(IngestError::DuplicateExternalId {
                    external_id: external_id.to_owned(),
                })
            } else {
                let shard = shards
                    .get_mut(target)
                    .expect("invariant: router output bounded by shard count");
                shard.add_document(external_id, text).map(|_local| {
                    let global = *next_ordinal;
                    ordinals
                        .get_mut(target)
                        .expect("invariant: one ordinal table per shard")
                        .push(global);
                    *next_ordinal = next_ordinal.saturating_add(1);
                    DocId(global)
                })
            }
        };
        if result.is_ok() {
            let t1 = self.clock.now_nanos();
            self.metrics.docs_ingested.inc();
            self.metrics.ingest.add.record(t1.saturating_sub(t0));
        }
        result
    }

    /// Seals one shard's ingest buffer into a new immutable segment,
    /// runs that shard's merge policy, and publishes its refreshed view.
    /// Returns `None` (and changes nothing) when the buffer is empty or
    /// the shard index is out of range. Exactly one epoch-vector entry
    /// advances and the shared cache is invalidated exactly once.
    ///
    /// Split-phase like [`QueryService::seal`](crate::serve::QueryService::seal): segment builds and
    /// merges run on detached state, so ingestion into *other* shards
    /// and all queries proceed concurrently.
    pub fn seal_shard(&self, shard: usize) -> Option<SealReport> {
        let t0 = self.clock.now_nanos();
        let _maint = self.maint_lock();
        let pending = self.live_lock().shards.get_mut(shard)?.begin_seal()?;
        // lint:allow(must-audit-after-mutation) — IndexAudit runs inside PendingSeal::build
        let built = pending.build();
        let (mut report, task) = {
            let mut live = self.live_lock();
            let s = live
                .shards
                .get_mut(shard)
                .expect("invariant: shard index validated by begin_seal above");
            let report = s.commit_seal(built);
            (report, s.merge_task())
        };
        let outcome = task.run_policy();
        let (searcher, ords) = {
            let mut live = self.live_lock();
            let ords = live.ordinals.get(shard).cloned().unwrap_or_default();
            let s = live
                .shards
                .get_mut(shard)
                .expect("invariant: shard index validated by begin_seal above");
            if let Some(merges) = s.install_merge(outcome) {
                report.merges = merges;
            }
            (s.searcher(), ords)
        };
        self.publish_shard(shard, searcher, Arc::new(ords));
        self.metrics.seals.inc();
        self.metrics
            .merges
            .add(u64::try_from(report.merges).expect("invariant: merge count fits in u64"));
        let t1 = self.clock.now_nanos();
        self.metrics.ingest.seal.record(t1.saturating_sub(t0));
        Some(report)
    }

    /// Seals every shard with a non-empty buffer; returns how many
    /// sealed.
    pub fn seal_all(&self) -> usize {
        (0..self.num_shards())
            .filter(|&s| self.seal_shard(s).is_some())
            .count()
    }

    // ------------------------------------------------ scatter-gather --

    /// Scatter-gather QL over a raw structured query: phase-1 resolve on
    /// every shard, exact-integer gather, phase-2 scoring, ordinal
    /// mapping, `scorecmp` merge. Hit ids are global ingest ordinals.
    pub fn rank_ql(&self, query: &Query, k: usize) -> Vec<SearchHit> {
        let views = self.pinned_views();
        let mut pos = PositionalScratch::new();
        scatter_ql(&views, query, self.cfg.ql, k, &mut pos)
    }

    /// Scatter-gather BM25 over a raw structured query (global `N`, df
    /// and avgdl from exact integer sums). Hit ids are global ordinals.
    pub fn rank_bm25(&self, query: &Query, params: Bm25Params, k: usize) -> Vec<SearchHit> {
        let views = self.pinned_views();
        let partials: Vec<Bm25ShardResolve> = views
            .iter()
            .map(|v| bm25_resolve_shard(&v.searcher, query))
            .collect();
        let globals = bm25_global_stats(&partials);
        let mut all: Vec<(u32, f64)> = Vec::new();
        for (view, partial) in views.iter().zip(&partials) {
            for (local, score) in bm25_rank_shard(&view.searcher, partial, &globals, params, k) {
                all.push((global_ordinal(view, local), score));
            }
        }
        merge_top_k(all, k)
    }

    /// External ids of `hits` (global-ordinal ids) against the current
    /// views.
    pub fn external_ids(&self, hits: &[SearchHit]) -> Vec<String> {
        let views = self.pinned_views();
        ids_of_sharded(&views, hits)
    }

    /// The expansion features for one query under one motif set —
    /// shared LRU cache, same key and same exactly-once invalidation
    /// semantics as the single-shard service.
    fn expansions_for(
        &self,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> CachedExpansions {
        let key = CacheKey::new(nodes, motifs.fingerprint());
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return hit;
        }
        self.metrics.cache_misses.inc();
        let builder = QueryGraphBuilder::from_set(self.graph, motifs);
        let qg = builder.build_with_scratch(nodes, &mut scratch.qg);
        let expansions: CachedExpansions = Arc::new(qg.expansions);
        self.cache.insert(key, Arc::clone(&expansions));
        expansions
    }

    /// Expand + scatter-gather rank for one motif set against a
    /// pinned shard set.
    fn stage_run(
        &self,
        views: &[ShardView],
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let cfg = &self.cfg;
        let t0 = self.clock.now_nanos();
        let expansions = self.expansions_for(nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        let analyzer = views
            .first()
            .map(|v| v.searcher.analyzer())
            .expect("invariant: a sharded service always has at least one shard");
        let query = expand::build_query(self.graph, text, nodes, &expansions, analyzer, &cfg.expand);
        let hits = scatter_ql(views, &query, cfg.ql, cfg.depth, scratch.ql.positional());
        let t2 = self.clock.now_nanos();
        self.metrics.stages.expand.record(t1.saturating_sub(t0));
        self.metrics.stages.rank.record(t2.saturating_sub(t1));
        hits
    }

    /// Retrieval with an arbitrary [`MotifSet`], scattered across shards;
    /// byte-identical to the single-shard [`QueryService::rank_sqe`](crate::serve::QueryService::rank_sqe)
    /// modulo hit ids being global ordinals.
    pub fn rank_sqe(&self, text: &str, nodes: &[ArticleId], motifs: &MotifSet) -> Vec<SearchHit> {
        let views = self.pinned_views();
        self.rank_sqe_with_scratch(&views, text, nodes, motifs, &mut SqeScratch::new())
    }

    fn rank_sqe_with_scratch(
        &self,
        views: &[ShardView],
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let t0 = self.clock.now_nanos();
        let hits = self.stage_run(views, text, nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        self.metrics.stages.total.record(t1.saturating_sub(t0));
        self.metrics.queries.inc();
        hits
    }

    /// `SQE_C` rank-range combination, scattered across shards; the
    /// combined external-id list is byte-identical to the single-shard
    /// service.
    pub fn rank_sqe_c(&self, text: &str, nodes: &[ArticleId]) -> Vec<String> {
        let views = self.pinned_views();
        self.rank_sqe_c_with_scratch(&views, text, nodes, &mut SqeScratch::new())
    }

    fn rank_sqe_c_with_scratch(
        &self,
        views: &[ShardView],
        text: &str,
        nodes: &[ArticleId],
        scratch: &mut SqeScratch,
    ) -> Vec<String> {
        let t0 = self.clock.now_nanos();
        let t = self.stage_run(views, text, nodes, &MotifSet::triangular(), scratch);
        let ts = self.stage_run(views, text, nodes, &MotifSet::t_and_s(), scratch);
        let s = self.stage_run(views, text, nodes, &MotifSet::square(), scratch);
        let c0 = self.clock.now_nanos();
        let ids = combine::sqe_c(
            &ids_of_sharded(views, &t),
            &ids_of_sharded(views, &ts),
            &ids_of_sharded(views, &s),
            self.cfg.depth,
        );
        let c1 = self.clock.now_nanos();
        self.metrics.stages.combine.record(c1.saturating_sub(c0));
        self.metrics.stages.total.record(c1.saturating_sub(t0));
        self.metrics.queries.inc();
        ids
    }

    /// Batch `SQE` retrieval over the configured worker pool. The whole
    /// batch pins one shard-set view: a seal landing mid-batch affects
    /// the next batch, never this one. Results keep input order.
    pub fn run_batch(
        &self,
        queries: &[(String, Vec<ArticleId>)],
        motifs: &MotifSet,
    ) -> Vec<Vec<SearchHit>> {
        let views = self.pinned_views();
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| {
                self.rank_sqe_with_scratch(&views, text, nodes, motifs, scratch)
            },
        )
    }

    /// Batch `SQE_C` retrieval over the configured worker pool (same
    /// pinned-view guarantee as [`ShardedService::run_batch`]).
    pub fn run_batch_sqe_c(&self, queries: &[(String, Vec<ArticleId>)]) -> Vec<Vec<String>> {
        let views = self.pinned_views();
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| self.rank_sqe_c_with_scratch(&views, text, nodes, scratch),
        )
    }

    // ------------------------------------ admission & degraded serving --

    /// The admission controller guarding the `serve*` entry points.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Asks the admission controller for a ticket at the current clock
    /// reading; rejections are counted in `sheds`. Mirrors
    /// [`QueryService::admit`](crate::serve::QueryService::admit).
    pub fn admit(&self) -> Result<Ticket, ShedReason> {
        let decision = self.admission.try_admit(self.clock.now_nanos());
        if decision.is_err() {
            self.metrics.sheds.inc();
        }
        decision
    }

    /// Feeds one cost observation into the degraded-mode ladder's
    /// per-rung estimates (benchmarks prime the selector through this).
    pub fn record_ladder_cost(&self, rung: usize, nanos: u64) {
        self.metrics.ladder.record_cost(rung, nanos);
    }

    /// Admission-controlled, deadline-aware serve of one request across
    /// all shards; hit ids are global ingest ordinals.
    pub fn serve(
        &self,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
    ) -> ServeOutcome<Vec<SearchHit>> {
        match self.admit() {
            Err(reason) => ServeOutcome::Shed(reason),
            Ok(ticket) => self.serve_admitted(ticket, text, nodes, deadline),
        }
    }

    /// Serves a request that already holds an admission ticket.
    pub fn serve_admitted(
        &self,
        ticket: Ticket,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let views = self.pinned_views();
        self.serve_admitted_with_scratch(&views, ticket, text, nodes, deadline, &mut SqeScratch::new())
    }

    fn serve_admitted_with_scratch(
        &self,
        views: &[ShardView],
        ticket: Ticket,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let now = self.clock.now_nanos();
        if let Err(reason) = self.admission.on_start(ticket, now) {
            self.metrics.sheds.inc();
            return ServeOutcome::Shed(reason);
        }
        let remaining = deadline.remaining(now);
        if remaining == Some(0) {
            self.metrics.deadline_exceeded.inc();
            return ServeOutcome::DeadlineExceeded(Stage::Queue);
        }
        let Some(rung) = select_rung(remaining, &self.metrics.ladder.cost_estimates()) else {
            self.metrics.sheds.inc();
            return ServeOutcome::Shed(ShedReason::BudgetExhausted);
        };
        self.run_rung(views, rung, text, nodes, deadline, scratch)
    }

    /// Runs one request at a forced ladder rung with no admission and no
    /// deadline (the calibration entry; primes the cost estimates).
    pub fn serve_at_rung(&self, rung: usize, text: &str, nodes: &[ArticleId]) -> Vec<SearchHit> {
        let views = self.pinned_views();
        self.run_rung(&views, rung, text, nodes, Deadline::NONE, &mut SqeScratch::new())
            .into_value()
            .unwrap_or_default()
    }

    /// Executes one ladder rung under `deadline` against a pinned shard
    /// set; same recording contract as the single-shard service (blown
    /// attempts still record their cost).
    fn run_rung(
        &self,
        views: &[ShardView],
        rung: usize,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let rung_def = self
            .serve_cfg
            .ladder
            .rung(rung)
            .expect("invariant: rung index is within the configured ladder");
        let t0 = self.clock.now_nanos();
        let staged = match rung_def.motifs() {
            Some(motifs) => {
                self.stage_run_deadline(views, text, nodes, motifs, deadline, scratch)
            }
            None => {
                let analyzer = views
                    .first()
                    .map(|v| v.searcher.analyzer())
                    .expect("invariant: a sharded service always has at least one shard");
                let query = expand::user_part(text, analyzer);
                let hits =
                    scatter_ql(views, &query, self.cfg.ql, self.cfg.depth, scratch.ql.positional());
                let t1 = self.clock.now_nanos();
                self.metrics.stages.rank.record(t1.saturating_sub(t0));
                Ok(hits)
            }
        };
        let t1 = self.clock.now_nanos();
        let elapsed = t1.saturating_sub(t0);
        self.metrics.ladder.record_cost(rung, elapsed);
        self.metrics.stages.total.record(elapsed);
        self.metrics.queries.inc();
        let hits = match staged {
            Ok(hits) => hits,
            Err(stage) => {
                self.metrics.deadline_exceeded.inc();
                return ServeOutcome::DeadlineExceeded(stage);
            }
        };
        if deadline.expired(t1) {
            self.metrics.deadline_exceeded.inc();
            return ServeOutcome::DeadlineExceeded(Stage::Rank);
        }
        if let Some(counter) = self.metrics.ladder.served.get(rung) {
            counter.inc();
        }
        if rung == 0 {
            ServeOutcome::Ok(hits)
        } else {
            ServeOutcome::Degraded(RungId::new(rung, Arc::clone(rung_def.name())), hits)
        }
    }

    /// [`ShardedService::stage_run`] with a deadline check between the
    /// expand and scatter-gather rank stages.
    #[allow(clippy::too_many_arguments)]
    fn stage_run_deadline(
        &self,
        views: &[ShardView],
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> Result<Vec<SearchHit>, Stage> {
        let cfg = &self.cfg;
        let t0 = self.clock.now_nanos();
        let expansions = self.expansions_for(nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        self.metrics.stages.expand.record(t1.saturating_sub(t0));
        if deadline.expired(t1) {
            return Err(Stage::Expand);
        }
        let analyzer = views
            .first()
            .map(|v| v.searcher.analyzer())
            .expect("invariant: a sharded service always has at least one shard");
        let query = expand::build_query(self.graph, text, nodes, &expansions, analyzer, &cfg.expand);
        let hits = scatter_ql(views, &query, cfg.ql, cfg.depth, scratch.ql.positional());
        let t2 = self.clock.now_nanos();
        self.metrics.stages.rank.record(t2.saturating_sub(t1));
        Ok(hits)
    }

    /// Admission-controlled batch serving across shards. Admission
    /// decisions run as a sequential pre-pass in input order on the
    /// caller's thread — identical contract to
    /// [`QueryService::serve_batch`](crate::serve::QueryService::serve_batch), so the outcome
    /// sequence is byte-identical at any worker count and any shard
    /// count for a fixed clock schedule.
    pub fn serve_batch(&self, requests: &[ServeRequest]) -> Vec<ServeOutcome<Vec<SearchHit>>> {
        let views = self.pinned_views();
        let plans: Vec<(usize, Result<Ticket, ShedReason>)> = requests
            .iter()
            .enumerate()
            .map(|(i, _)| (i, self.admit()))
            .collect();
        run_indexed(
            &plans,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(i, plan), scratch| {
                let req = requests
                    .get(*i)
                    .expect("invariant: plans index requests one-to-one");
                match plan {
                    Err(reason) => ServeOutcome::Shed(*reason),
                    Ok(ticket) => self.serve_admitted_with_scratch(
                        &views,
                        *ticket,
                        &req.text,
                        &req.nodes,
                        req.deadline,
                        scratch,
                    ),
                }
            },
        )
    }
}

/// Maps a shard-local doc id to its global ingest ordinal.
fn global_ordinal(view: &ShardView, local: u32) -> u32 {
    view.ordinals
        .get(local as usize)
        .copied()
        .expect("invariant: every searchable doc has a recorded global ordinal")
}

/// The full sharded QL pipeline over a pinned shard set: resolve on
/// every shard, gather exact-integer global stats, score per shard, map
/// to global ordinals, merge under the `scorecmp` total order.
fn scatter_ql(
    views: &[ShardView],
    query: &Query,
    params: searchlite::ql::QlParams,
    k: usize,
    pos: &mut PositionalScratch,
) -> Vec<SearchHit> {
    let partials: Vec<QlShardResolve> = views
        .iter()
        .map(|v| ql_resolve_shard(&v.searcher, query, pos))
        .collect();
    let pcs = ql_global_pcs(&partials);
    let mut all: Vec<(u32, f64)> = Vec::new();
    for (view, partial) in views.iter().zip(&partials) {
        for (local, score) in ql_rank_shard(&view.searcher, partial, &pcs, params, k) {
            all.push((global_ordinal(view, local), score));
        }
    }
    merge_top_k(all, k)
}

/// External ids of global-ordinal hits: each shard's ordinal table is
/// strictly increasing, so the owning shard is found by binary search.
fn ids_of_sharded(views: &[ShardView], hits: &[SearchHit]) -> Vec<String> {
    hits.iter()
        .map(|h| {
            views
                .iter()
                .find_map(|v| {
                    v.ordinals.binary_search(&h.doc.0).ok().map(|local| {
                        let local = u32::try_from(local)
                            .expect("invariant: per-shard doc count fits in u32");
                        v.searcher.external_id(DocId(local)).to_owned()
                    })
                })
                .expect("invariant: hit ordinals originate from these views")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::QueryService;
    use kbgraph::GraphBuilder;
    use searchlite::bm25;
    use searchlite::ql::QlParams;
    use searchlite::{Index, IndexBuilder};

    const DOCS: [(&str, &str); 8] = [
        ("d-cable-0", "cable car climbing the peak"),
        ("d-funi-0", "old funicular near the village"),
        ("d-funi-1", "the funicular station entrance"),
        ("d-noise-0", "a market square with fruit"),
        ("d-cable-1", "cable car cables over the gorge"),
        ("d-funi-2", "funicular rails in the fog"),
        ("d-noise-1", "street art on the plaza walls"),
        ("d-mixed-0", "cable car to the funicular museum"),
    ];

    fn world() -> (KbGraph, Index, ArticleId) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let cat = b.add_category("mountain railways");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, cat);
        b.add_membership(funi, cat);
        let graph = b.build();

        let mut ib = IndexBuilder::new(Analyzer::plain());
        for (id, text) in DOCS {
            ib.add_document(id, text).expect("unique test ids");
        }
        (graph, ib.build(), cable)
    }

    fn queries(cable: ArticleId) -> Vec<(String, Vec<ArticleId>)> {
        vec![
            ("cable car".into(), vec![cable]),
            ("funicular station".into(), vec![cable]),
            ("market fruit".into(), vec![]),
            ("cable car".into(), vec![cable]), // repeat: cache hit
        ]
    }

    /// Builds a sharded service by routing DOCS and sealing every shard.
    fn sharded_service<'g>(
        graph: &'g KbGraph,
        shards: usize,
        salt: u64,
        workers: usize,
    ) -> ShardedService<'g> {
        let service = ShardedService::new(
            graph,
            Analyzer::plain(),
            ShardRouter::with_salt(shards, salt),
            SqeConfig::default(),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        );
        for (id, text) in DOCS {
            service.add_document(id, text).expect("unique test ids");
        }
        service.seal_all();
        service
    }

    #[test]
    fn sharded_sqe_matches_single_shard_service_externally() {
        let (graph, index, cable) = world();
        let mono = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for shards in [1usize, 2, 3, 5] {
            let service = sharded_service(&graph, shards, 0, 1);
            for motifs in [MotifSet::triangular(), MotifSet::square(), MotifSet::t_and_s()] {
                for (text, nodes) in queries(cable) {
                    let want = mono.rank_sqe(&text, &nodes, &motifs);
                    let want_ids = mono.external_ids(&want);
                    let got = service.rank_sqe(&text, &nodes, &motifs);
                    let got_ids = service.external_ids(&got);
                    assert_eq!(got_ids, want_ids, "shards={shards} motifs={}", motifs.name());
                    let want_scores: Vec<f64> = want.iter().map(|h| h.score).collect();
                    let got_scores: Vec<f64> = got.iter().map(|h| h.score).collect();
                    assert_eq!(got_scores, want_scores, "scores must be bit-identical");
                    // Global-ordinal ids equal the monolithic doc ids.
                    let want_docs: Vec<u32> = want.iter().map(|h| h.doc.0).collect();
                    let got_docs: Vec<u32> = got.iter().map(|h| h.doc.0).collect();
                    assert_eq!(got_docs, want_docs, "ordinals must match monolithic ids");
                }
            }
        }
    }

    #[test]
    fn sharded_sqe_c_matches_single_shard_service() {
        let (graph, index, cable) = world();
        let mono = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for shards in [1usize, 2, 4] {
            let service = sharded_service(&graph, shards, 0xfeed, 1);
            for (text, nodes) in queries(cable) {
                let want = mono.rank_sqe_c(&text, &nodes);
                assert_eq!(service.rank_sqe_c(&text, &nodes), want, "shards={shards}");
                assert_eq!(service.rank_sqe_c(&text, &nodes), want, "warm");
            }
        }
    }

    #[test]
    fn batches_are_order_stable_at_any_worker_count() {
        let (graph, _, cable) = world();
        let reference = sharded_service(&graph, 3, 0, 1);
        let qs = queries(cable);
        let want = reference.run_batch_sqe_c(&qs);
        for workers in [1usize, 2, 8] {
            let service = sharded_service(&graph, 3, 0, workers);
            assert_eq!(service.run_batch_sqe_c(&qs), want, "cold workers={workers}");
            assert_eq!(service.run_batch_sqe_c(&qs), want, "warm workers={workers}");
        }
    }

    #[test]
    fn raw_ql_and_bm25_match_monolithic() {
        let (graph, index, _) = world();
        let mono = Searcher::from_index(index);
        let service = sharded_service(&graph, 4, 0xabc, 1);
        let a = Analyzer::plain();
        for text in ["cable car", "funicular fog", "plaza", "zeppelin"] {
            let q = Query::parse_text(text, &a);
            let want = searchlite::ql::rank(&mono, &q, QlParams::default(), 5);
            assert_eq!(service.rank_ql(&q, 5), want, "QL {text:?}");
            let want = bm25::rank(&mono, &q, Bm25Params::default(), 5);
            assert_eq!(service.rank_bm25(&q, Bm25Params::default(), 5), want, "BM25 {text:?}");
        }
    }

    #[test]
    fn seal_bumps_exactly_one_epoch_entry_and_invalidates_once() {
        let (graph, _, cable) = world();
        let service = sharded_service(&graph, 3, 0, 1);
        let before = service.epoch_vector();
        let warm = service.rank_sqe("funicular", &[cable], &MotifSet::triangular());

        // Route a new doc, find its shard, seal only that shard.
        let id = "d-late-0";
        let shard = service.router().route(id);
        service.add_document(id, "a late funicular arrival").expect("fresh id");
        assert_eq!(service.num_buffered_docs(), 1);
        assert_eq!(
            service.rank_sqe("funicular", &[cable], &MotifSet::triangular()),
            warm,
            "buffered documents must stay invisible"
        );
        let invalidations_before = service.metrics_snapshot().invalidations;
        service.seal_shard(shard).expect("non-empty buffer seals");
        let after = service.epoch_vector();
        let bumped: Vec<usize> = (0..after.len())
            .filter(|&i| after[i] != before[i])
            .collect();
        assert_eq!(bumped, vec![shard], "exactly the sealed shard's epoch advances");
        assert_eq!(
            service.metrics_snapshot().invalidations,
            invalidations_before + 1,
            "exactly one invalidation per seal"
        );
        // Sealing an empty buffer changes nothing.
        assert!(service.seal_shard(shard).is_none());
        assert_eq!(service.epoch_vector(), after);
        assert_eq!(service.metrics_snapshot().invalidations, invalidations_before + 1);
    }

    #[test]
    fn duplicate_ids_rejected_across_shards() {
        let (graph, _, _) = world();
        // Same-shard duplicate: caught by the owning shard.
        let service = sharded_service(&graph, 4, 0, 1);
        assert!(matches!(
            service.add_document("d-cable-0", "again"),
            Err(IngestError::DuplicateExternalId { .. })
        ));

        // Cross-shard duplicate: the doc sits in a shard the router no
        // longer maps its id to (a re-routed corpus — e.g. restored with
        // a different salt). The probe across all shards must still
        // reject it.
        let mut wrong = ShardRouter::with_salt(4, 0);
        let id = "d-cable-0";
        let home = wrong.route(id);
        // Find a salt under which the id routes elsewhere.
        for salt in 1..u64::MAX {
            wrong = ShardRouter::with_salt(4, salt);
            if wrong.route(id) != home {
                break;
            }
        }
        let mut shards: Vec<SegmentedIndex> =
            (0..4).map(|_| SegmentedIndex::new(Analyzer::plain())).collect();
        let mut ordinals: Vec<Vec<u32>> = vec![Vec::new(); 4];
        shards[home].add_document(id, "the original").expect("fresh id");
        shards[home].seal().expect("seals");
        ordinals[home].push(0);
        let service = ShardedService::from_shards(
            &graph,
            wrong,
            shards,
            ordinals,
            SqeConfig::default(),
            ServeConfig::default(),
        );
        assert_ne!(service.router().route(id), home, "test needs a re-routed id");
        assert!(
            matches!(
                service.add_document(id, "a doppelganger"),
                Err(IngestError::DuplicateExternalId { .. })
            ),
            "duplicate in a non-owning shard must still be rejected"
        );
        assert_eq!(service.metrics_snapshot().docs_ingested, 0);
    }

    #[test]
    fn batch_pins_shard_set_across_concurrent_seal() {
        let (graph, _, cable) = world();
        let service = sharded_service(&graph, 2, 0, 2);
        let qs = queries(cable);
        let want = service.run_batch(&qs, &MotifSet::triangular());
        service.add_document("d-late-1", "late cable car news").expect("fresh id");
        let pinned = service.pinned_views();
        service.seal_all();
        let docs: usize = pinned.iter().map(|v| v.searcher.num_docs()).sum();
        assert_eq!(docs, DOCS.len(), "pinned views are immutable");
        assert_eq!(service.num_docs(), DOCS.len() + 1);
        let again = service.run_batch(&qs, &MotifSet::triangular());
        let top_before = want[0].first().map(|h| h.doc);
        let top_after = again[0].first().map(|h| h.doc);
        assert_eq!(top_before, top_after, "top hit survives the seal");
    }

    #[test]
    fn sharded_serve_matches_mono_and_degrades_identically() {
        let (graph, index, cable) = world();
        let mono = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for shards in [1usize, 2, 4] {
            let service = sharded_service(&graph, shards, 0, 1);
            // Unbounded deadline serves full quality, matching rank_sqe.
            let want = service.rank_sqe("cable car", &[cable], &MotifSet::t_and_s());
            match service.serve("cable car", &[cable], Deadline::NONE) {
                ServeOutcome::Ok(hits) => {
                    assert_eq!(hits, want, "shards={shards}");
                    assert_eq!(
                        service.external_ids(&hits),
                        mono.external_ids(&mono.rank_sqe("cable car", &[cable], &MotifSet::t_and_s())),
                        "shards={shards}"
                    );
                }
                other => panic!("expected Ok, got {}", other.label()),
            }
            // Primed costs + tight budget degrade to the unexpanded rung,
            // whose output matches the mono service's unexpanded rung.
            service.record_ladder_cost(0, 10_000);
            service.record_ladder_cost(1, 4_000);
            service.record_ladder_cost(2, 1_000);
            match service.serve("cable car", &[cable], Deadline::within(0, 2_000)) {
                ServeOutcome::Degraded(rung, hits) => {
                    assert_eq!(rung.name(), "unexpanded", "shards={shards}");
                    let mono_hits = mono.serve_at_rung(2, "cable car", &[cable]);
                    assert_eq!(
                        service.external_ids(&hits),
                        mono.external_ids(&mono_hits),
                        "shards={shards}: unexpanded rung must match mono"
                    );
                }
                other => panic!("expected degraded:unexpanded, got {}", other.label()),
            }
            let snap = service.metrics_snapshot();
            assert_eq!(snap.ladder_served, [1, 0, 1], "shards={shards}");
        }
    }

    #[test]
    fn empty_service_serves_empty_results() {
        let (graph, _, cable) = world();
        let service = ShardedService::new(
            &graph,
            Analyzer::plain(),
            ShardRouter::new(3),
            SqeConfig::default(),
            ServeConfig::default(),
        );
        assert!(service.rank_sqe("cable car", &[cable], &MotifSet::triangular()).is_empty());
        assert!(service.rank_sqe_c("cable car", &[cable]).is_empty());
        assert_eq!(service.epoch_vector(), vec![0, 0, 0]);
    }
}
