/root/repo/target/release/deps/serde-d5b9b74a9a8a77de.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-d5b9b74a9a8a77de.rlib: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-d5b9b74a9a8a77de.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
