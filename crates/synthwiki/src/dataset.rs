//! Assembly of the full test bed: KB + collections + query sets + qrels.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::concepts::ConceptSpace;
use crate::config::TestBedConfig;
use crate::docs::{generate_documents_with_means, stream_documents_with_means, Document};
use crate::kb::SynthKb;
use crate::queries::{generate_queries, QuerySpec};

pub use crate::docs::Document as Doc;

/// A document collection (index target).
#[derive(Debug)]
pub struct Collection {
    /// Display name.
    pub name: String,
    /// All documents.
    pub docs: Vec<Document>,
}

/// A benchmark dataset: a query set over one collection, with qrels.
#[derive(Debug)]
pub struct Dataset {
    /// Display name (`imageclef`, `chic2012`, `chic2013`).
    pub name: String,
    /// Index into [`TestBed::collections`].
    pub collection: usize,
    /// The queries.
    pub queries: Vec<QuerySpec>,
    /// Relevance judgments: query id → relevant doc ids.
    pub relevant: FxHashMap<String, FxHashSet<String>>,
}

impl Dataset {
    /// Mean number of relevant documents per query (all queries count).
    pub fn avg_relevant_per_query(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .queries
            .iter()
            .map(|q| self.relevant.get(&q.id).map_or(0, |s| s.len()))
            .sum();
        total as f64 / self.queries.len() as f64
    }

    /// Number of queries with zero relevant documents.
    pub fn num_zero_relevant(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| self.relevant.get(&q.id).is_none_or(|s| s.is_empty()))
            .count()
    }
}

/// The complete generated world.
#[derive(Debug)]
pub struct TestBed {
    /// The concept space (semantic ground truth).
    pub space: ConceptSpace,
    /// The knowledge base built from it.
    pub kb: SynthKb,
    /// Collections: `[0]` Image CLEF-like, `[1]` CHiC-like (shared).
    pub collections: Vec<Collection>,
    /// Datasets: `[0]` imageclef, `[1]` chic2012, `[2]` chic2013.
    pub datasets: Vec<Dataset>,
}

/// The pre-document phase of test-bed generation: the concept space, the
/// knowledge base, and the three query sets over disjoint topics. Both
/// document paths — the in-memory [`TestBed::generate`] and the
/// streaming [`TestBedPlan::stream_docs`] — start from this plan, so a
/// caller can build the KB (and anything borrowing it, like a serving
/// index) *before* the document stream begins.
#[derive(Debug)]
pub struct TestBedPlan {
    /// The concept space (semantic ground truth).
    pub space: ConceptSpace,
    /// The knowledge base built from it.
    pub kb: SynthKb,
    ic_queries: Vec<QuerySpec>,
    c12_queries: Vec<QuerySpec>,
    c13_queries: Vec<QuerySpec>,
}

impl TestBedPlan {
    /// Builds the space, KB and query sets deterministically from the
    /// config — everything except the documents.
    pub fn new(cfg: &TestBedConfig) -> TestBedPlan {
        let space = ConceptSpace::generate(&cfg.kb);
        let kb = SynthKb::build(&space, &cfg.kb);

        // Allocate disjoint topics to the three query sets.
        let mut topics: Vec<usize> = (0..space.num_topics()).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.kb.seed ^ 0xa110c);
        for i in (1..topics.len()).rev() {
            let j = rng.gen_range(0..=i);
            topics.swap(i, j);
        }
        let n1 = cfg.imageclef_queries.num_queries;
        let n2 = cfg.chic2012_queries.num_queries;
        let n3 = cfg.chic2013_queries.num_queries;
        assert!(topics.len() >= n1 + n2 + n3, "not enough topics");
        let ic_topics = &topics[..n1];
        let c12_topics = &topics[n1..n1 + n2];
        let c13_topics = &topics[n1 + n2..n1 + n2 + n3];

        let ic_queries = generate_queries(&space, &cfg.imageclef_queries, ic_topics);
        let c12_queries = generate_queries(&space, &cfg.chic2012_queries, c12_topics);
        let c13_queries = generate_queries(&space, &cfg.chic2013_queries, c13_topics);

        TestBedPlan {
            space,
            kb,
            ic_queries,
            c12_queries,
            c13_queries,
        }
    }

    /// Streams both collections through `sink` as `(collection index,
    /// document)` pairs — collection 0 (imageclef) first, then 1 (chic) —
    /// while accumulating the qrels incrementally. No document buffer is
    /// held: memory stays bounded by the plan and the qrels, independent
    /// of `total_docs`. Returns the datasets (with complete qrels) and
    /// the per-collection document counts.
    ///
    /// The emitted document stream, the qrels and the query sets are
    /// guaranteed identical to what [`TestBed::generate`] materializes
    /// for the same config (`tests/stream_equivalence.rs` pins this with
    /// a golden digest).
    pub fn stream_docs(
        &self,
        cfg: &TestBedConfig,
        sink: &mut dyn FnMut(usize, &Document),
    ) -> (Vec<Dataset>, Vec<usize>) {
        let mut ic = QrelsBuilder::new(&self.ic_queries);
        let mut c12 = QrelsBuilder::new(&self.c12_queries);
        let mut c13 = QrelsBuilder::new(&self.c13_queries);
        let mut counts = [0usize; 2];
        stream_documents_with_means(
            &self.space,
            &cfg.imageclef,
            &[&self.ic_queries],
            &[cfg.imageclef_queries.mean_relevant_per_query],
            &mut |doc| {
                ic.observe(&self.ic_queries, &doc);
                counts[0] += 1;
                sink(0, &doc);
            },
        );
        stream_documents_with_means(
            &self.space,
            &cfg.chic,
            &[&self.c12_queries, &self.c13_queries],
            &[
                cfg.chic2012_queries.mean_relevant_per_query,
                cfg.chic2013_queries.mean_relevant_per_query,
            ],
            &mut |doc| {
                c12.observe(&self.c12_queries, &doc);
                c13.observe(&self.c13_queries, &doc);
                counts[1] += 1;
                sink(1, &doc);
            },
        );
        let datasets = vec![
            Dataset {
                name: "imageclef".to_owned(),
                collection: 0,
                queries: self.ic_queries.clone(),
                relevant: ic.relevant,
            },
            Dataset {
                name: "chic2012".to_owned(),
                collection: 1,
                queries: self.c12_queries.clone(),
                relevant: c12.relevant,
            },
            Dataset {
                name: "chic2013".to_owned(),
                collection: 1,
                queries: self.c13_queries.clone(),
                relevant: c13.relevant,
            },
        ];
        (datasets, counts.to_vec())
    }
}

/// Incremental qrels: the streaming equivalent of [`build_dataset`]'s
/// post-hoc scan, fed one document at a time.
struct QrelsBuilder {
    /// entity → queries that consider it relevant.
    entity_queries: FxHashMap<usize, Vec<usize>>,
    relevant: FxHashMap<String, FxHashSet<String>>,
}

impl QrelsBuilder {
    fn new(queries: &[QuerySpec]) -> QrelsBuilder {
        let mut entity_queries: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (qi, q) in queries.iter().enumerate() {
            for &e in &q.relevant_entities {
                entity_queries.entry(e).or_default().push(qi);
            }
        }
        let mut relevant: FxHashMap<String, FxHashSet<String>> = FxHashMap::default();
        for q in queries {
            relevant.entry(q.id.clone()).or_default();
        }
        QrelsBuilder {
            entity_queries,
            relevant,
        }
    }

    fn observe(&mut self, queries: &[QuerySpec], doc: &Document) {
        if !doc.judged_relevant {
            return;
        }
        if let Some(e) = doc.about {
            if let Some(qis) = self.entity_queries.get(&e) {
                for &qi in qis {
                    self.relevant
                        .get_mut(&queries[qi].id)
                        .expect("prefilled")
                        .insert(doc.id.clone());
                }
            }
        }
    }
}

/// A test bed generated through the streaming path: the same world as
/// [`TestBed`] minus the materialized document collections (those went
/// through the sink).
#[derive(Debug)]
pub struct StreamedTestBed {
    /// The concept space (semantic ground truth).
    pub space: ConceptSpace,
    /// The knowledge base built from it.
    pub kb: SynthKb,
    /// Collection names, `[0]` Image CLEF-like, `[1]` CHiC-like.
    pub collection_names: Vec<String>,
    /// Documents streamed per collection.
    pub doc_counts: Vec<usize>,
    /// Datasets with complete qrels, same order as [`TestBed::datasets`].
    pub datasets: Vec<Dataset>,
}

impl StreamedTestBed {
    /// Finds a dataset by name.
    pub fn dataset(&self, name: &str) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .expect("invariant: callers only name the three generated datasets")
    }
}

impl TestBed {
    /// Generates everything deterministically from the config.
    pub fn generate(cfg: &TestBedConfig) -> TestBed {
        let plan = TestBedPlan::new(cfg);

        let ic_docs = generate_documents_with_means(
            &plan.space,
            &cfg.imageclef,
            &[&plan.ic_queries],
            &[cfg.imageclef_queries.mean_relevant_per_query],
        );
        let chic_docs = generate_documents_with_means(
            &plan.space,
            &cfg.chic,
            &[&plan.c12_queries, &plan.c13_queries],
            &[
                cfg.chic2012_queries.mean_relevant_per_query,
                cfg.chic2013_queries.mean_relevant_per_query,
            ],
        );

        let collections = vec![
            Collection {
                name: cfg.imageclef.name.to_owned(),
                docs: ic_docs,
            },
            Collection {
                name: cfg.chic.name.to_owned(),
                docs: chic_docs,
            },
        ];

        let datasets = vec![
            build_dataset("imageclef", 0, plan.ic_queries, &collections[0]),
            build_dataset("chic2012", 1, plan.c12_queries, &collections[1]),
            build_dataset("chic2013", 1, plan.c13_queries, &collections[1]),
        ];

        TestBed {
            space: plan.space,
            kb: plan.kb,
            collections,
            datasets,
        }
    }

    /// Generates the same world as [`TestBed::generate`] but streams
    /// every document through `sink` instead of materializing the
    /// collections — bounded memory at any corpus size. The sink
    /// receives `(collection index, document)` in emission order.
    pub fn stream(cfg: &TestBedConfig, sink: &mut dyn FnMut(usize, &Document)) -> StreamedTestBed {
        let plan = TestBedPlan::new(cfg);
        let (datasets, doc_counts) = plan.stream_docs(cfg, sink);
        StreamedTestBed {
            space: plan.space,
            kb: plan.kb,
            collection_names: vec![cfg.imageclef.name.to_owned(), cfg.chic.name.to_owned()],
            doc_counts,
            datasets,
        }
    }

    /// Finds a dataset by name.
    pub fn dataset(&self, name: &str) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .expect("invariant: callers only name the three generated datasets")
    }

    /// The collection a dataset runs over.
    pub fn collection_of(&self, dataset: &Dataset) -> &Collection {
        &self.collections[dataset.collection]
    }
}

/// Computes qrels for a query set over a collection: a document is
/// relevant to a query iff it is about an entity of the query's relevance
/// neighbourhood.
fn build_dataset(
    name: &str,
    collection: usize,
    queries: Vec<QuerySpec>,
    coll: &Collection,
) -> Dataset {
    // entity → queries that consider it relevant (topics are disjoint, so
    // usually a single query).
    let mut entity_queries: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (qi, q) in queries.iter().enumerate() {
        for &e in &q.relevant_entities {
            entity_queries.entry(e).or_default().push(qi);
        }
    }
    let mut relevant: FxHashMap<String, FxHashSet<String>> = FxHashMap::default();
    for q in &queries {
        relevant.entry(q.id.clone()).or_default();
    }
    for doc in &coll.docs {
        if !doc.judged_relevant {
            continue;
        }
        if let Some(e) = doc.about {
            if let Some(qis) = entity_queries.get(&e) {
                for &qi in qis {
                    relevant
                        .get_mut(&queries[qi].id)
                        .expect("prefilled")
                        .insert(doc.id.clone());
                }
            }
        }
    }
    Dataset {
        name: name.to_owned(),
        collection,
        queries,
        relevant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> TestBed {
        TestBed::generate(&TestBedConfig::small())
    }

    #[test]
    fn three_datasets_two_collections() {
        let b = bed();
        assert_eq!(b.collections.len(), 2);
        assert_eq!(b.datasets.len(), 3);
        assert_eq!(b.dataset("chic2012").collection, 1);
        assert_eq!(b.dataset("chic2013").collection, 1);
        assert_eq!(b.dataset("imageclef").collection, 0);
    }

    #[test]
    fn zero_relevant_counts_match_config() {
        let cfg = TestBedConfig::small();
        let b = TestBed::generate(&cfg);
        assert_eq!(
            b.dataset("chic2012").num_zero_relevant(),
            cfg.chic2012_queries.zero_relevant_queries
        );
        assert_eq!(
            b.dataset("chic2013").num_zero_relevant(),
            cfg.chic2013_queries.zero_relevant_queries
        );
        assert_eq!(b.dataset("imageclef").num_zero_relevant(), 0);
    }

    #[test]
    fn query_topics_disjoint_across_datasets() {
        let b = bed();
        let mut seen = std::collections::HashSet::new();
        for d in &b.datasets {
            for q in &d.queries {
                assert!(seen.insert(q.topic), "topic {} reused", q.topic);
            }
        }
    }

    #[test]
    fn qrels_reference_existing_docs() {
        let b = bed();
        for d in &b.datasets {
            let coll = b.collection_of(d);
            let ids: std::collections::HashSet<&String> =
                coll.docs.iter().map(|doc| &doc.id).collect();
            for docs in d.relevant.values() {
                for doc in docs {
                    assert!(ids.contains(doc));
                }
            }
        }
    }

    #[test]
    fn imageclef_every_query_has_relevant_docs() {
        let b = bed();
        let d = b.dataset("imageclef");
        for q in &d.queries {
            assert!(
                !d.relevant[&q.id].is_empty(),
                "imageclef query {} lacks relevant docs",
                q.id
            );
        }
    }

    #[test]
    fn avg_relevant_in_reasonable_band() {
        let cfg = TestBedConfig::small();
        let b = TestBed::generate(&cfg);
        let d = b.dataset("imageclef");
        let avg = d.avg_relevant_per_query();
        // All queries count in the average, including zero-relevant ones,
        // so compare against the query-set target.
        let want = cfg.imageclef_queries.mean_relevant_per_query;
        assert!(
            (avg - want).abs() / want < 0.4,
            "avg {avg} vs target {want}"
        );
    }

    #[test]
    fn generation_deterministic() {
        let a = bed();
        let b = bed();
        assert_eq!(a.collections[0].docs.len(), b.collections[0].docs.len());
        assert_eq!(
            a.collections[0].docs[100].text,
            b.collections[0].docs[100].text
        );
        assert_eq!(
            a.dataset("imageclef").queries[3].text,
            b.dataset("imageclef").queries[3].text
        );
    }
}
