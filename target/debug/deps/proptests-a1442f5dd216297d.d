/root/repo/target/debug/deps/proptests-a1442f5dd216297d.d: crates/kbgraph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a1442f5dd216297d: crates/kbgraph/tests/proptests.rs

crates/kbgraph/tests/proptests.rs:
