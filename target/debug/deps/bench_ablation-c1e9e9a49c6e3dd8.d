/root/repo/target/debug/deps/bench_ablation-c1e9e9a49c6e3dd8.d: crates/bench/benches/bench_ablation.rs

/root/repo/target/debug/deps/bench_ablation-c1e9e9a49c6e3dd8: crates/bench/benches/bench_ablation.rs

crates/bench/benches/bench_ablation.rs:
