//! TREC interchange formats.
//!
//! The paper evaluates with trec_eval, whose inputs are two whitespace
//! files: **qrels** (`query 0 doc rel`) and **runs**
//! (`query Q0 doc rank score tag`). This module reads and writes both,
//! so runs produced by this reproduction can be checked with the real
//! `trec_eval` binary and external runs can be scored by [`crate`].

use std::fmt::Write as _;

use crate::qrels::Qrels;
use crate::run::Run;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes qrels in trec_eval's `qid 0 docno rel` format, queries and
/// documents in sorted order for reproducible output.
pub fn write_qrels(qrels: &Qrels) -> String {
    let mut out = String::new();
    for q in qrels.queries() {
        let mut docs: Vec<&String> = qrels.relevant(q).iter().collect();
        docs.sort_unstable();
        for d in docs {
            let _ = writeln!(out, "{q} 0 {d} 1");
        }
    }
    out
}

/// Parses trec_eval qrels. Lines with relevance 0 register the query but
/// add no judgment (they matter for averaging); malformed lines fail.
pub fn parse_qrels(text: &str) -> Result<Qrels, ParseError> {
    let mut qrels = Qrels::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let rel: i64 = fields[3].parse().map_err(|_| ParseError {
            line: i + 1,
            message: format!("bad relevance '{}'", fields[3]),
        })?;
        qrels.add_query(fields[0]);
        if rel > 0 {
            qrels.add_judgment(fields[0], fields[2]);
        }
    }
    Ok(qrels)
}

/// Serializes a run in trec_eval's six-column format. Scores are emitted
/// as descending rank-derived values so that any consumer re-sorting by
/// score reproduces the ranking.
pub fn write_run(run: &Run) -> String {
    // TREC tags are whitespace-delimited: sanitize the run name.
    let tag: String = run
        .name()
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    let mut out = String::new();
    for q in run.queries() {
        let ranking = run.ranking(q).expect("listed query");
        for (rank, doc) in ranking.iter().enumerate() {
            let score = -(rank as f64);
            let _ = writeln!(out, "{q} Q0 {doc} {} {score} {tag}", rank + 1);
        }
    }
    out
}

/// Parses a trec_eval run file. Documents are ordered by descending
/// score (ties by input order), matching trec_eval's behaviour.
pub fn parse_run(text: &str, name: &str) -> Result<Run, ParseError> {
    // query → (score, seq, doc)
    let mut per_query: std::collections::BTreeMap<String, Vec<(f64, usize, String)>> =
        std::collections::BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected 6 fields, got {}", fields.len()),
            });
        }
        let score: f64 = fields[4].parse().map_err(|_| ParseError {
            line: i + 1,
            message: format!("bad score '{}'", fields[4]),
        })?;
        per_query
            .entry(fields[0].to_owned())
            .or_default()
            .push((score, i, fields[2].to_owned()));
    }
    let mut run = Run::new(name);
    for (query, mut docs) in per_query {
        docs.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.0, b.0, &a.1, &b.1));
        run.set_ranking(&query, docs.into_iter().map(|(_, _, d)| d).collect());
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qrels_roundtrip() {
        let mut q = Qrels::new();
        q.add_judgment("q1", "d1");
        q.add_judgment("q1", "d2");
        q.add_query("q2");
        let text = write_qrels(&q);
        let back = parse_qrels(&text).unwrap();
        assert_eq!(back.num_relevant("q1"), 2);
        assert!(back.is_relevant("q1", "d2"));
        // Zero-relevant queries survive only if written; write_qrels emits
        // judgments, so q2 is lost on write (like real qrels files) —
        // asserting the documented behaviour.
        assert_eq!(back.num_queries(), 1);
    }

    #[test]
    fn qrels_parse_keeps_zero_relevance_queries() {
        let text = "q1 0 d1 1\nq2 0 d9 0\n";
        let q = parse_qrels(text).unwrap();
        assert_eq!(q.num_queries(), 2);
        assert_eq!(q.num_relevant("q2"), 0);
    }

    #[test]
    fn qrels_parse_rejects_malformed() {
        let err = parse_qrels("q1 0 d1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("4 fields"));
        assert!(parse_qrels("q1 0 d1 x\n").is_err());
    }

    #[test]
    fn qrels_parse_skips_comments_and_blanks() {
        let text = "# header\n\nq1 0 d1 1\n";
        let q = parse_qrels(text).unwrap();
        assert_eq!(q.num_relevant("q1"), 1);
    }

    #[test]
    fn run_roundtrip_preserves_order() {
        let mut r = Run::new("sqe");
        r.set_ranking("q1", vec!["a".into(), "b".into(), "c".into()]);
        r.set_ranking("q2", vec!["x".into()]);
        let text = write_run(&r);
        let back = parse_run(&text, "sqe").unwrap();
        assert_eq!(back.ranking("q1").unwrap(), &["a", "b", "c"]);
        assert_eq!(back.ranking("q2").unwrap(), &["x"]);
    }

    #[test]
    fn run_format_shape() {
        let mut r = Run::new("tag");
        r.set_ranking("q", vec!["doc".into()]);
        let text = write_run(&r);
        assert_eq!(text.trim(), "q Q0 doc 1 -0 tag");
    }

    #[test]
    fn run_parse_orders_by_score() {
        let text = "q Q0 low 1 1.0 t\nq Q0 high 2 9.0 t\n";
        let run = parse_run(text, "t").unwrap();
        assert_eq!(run.ranking("q").unwrap(), &["high", "low"]);
    }

    #[test]
    fn run_parse_rejects_malformed() {
        assert!(parse_run("q Q0 d 1 x t\n", "t").is_err());
        assert!(parse_run("q Q0 d 1\n", "t").is_err());
    }

    #[test]
    fn evaluation_equivalence_after_roundtrip() {
        use crate::precision::mean_precision;
        let mut qrels = Qrels::new();
        qrels.add_judgment("q", "a");
        qrels.add_judgment("q", "c");
        let mut run = Run::new("t");
        run.set_ranking("q", vec!["a".into(), "b".into(), "c".into()]);
        let p_before = mean_precision(&run, &qrels, 5);
        let run2 = parse_run(&write_run(&run), "t").unwrap();
        let qrels2 = parse_qrels(&write_qrels(&qrels)).unwrap();
        assert_eq!(p_before, mean_precision(&run2, &qrels2, 5));
    }
}
