//! The typed error surface of the snapshot store.
//!
//! Every failure mode — I/O, header damage, section-table lies, payload
//! corruption, structurally inconsistent sections, audit rejection — maps
//! to a [`StoreError`] variant. The store never panics on untrusted
//! bytes; the corruption proptests in `tests/` enforce that for random
//! bit flips, truncations and table rewrites.

use kbgraph::GraphShapeError;
use searchlite::IndexShapeError;

/// Any failure to write, open, verify or decode a snapshot.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — error type, never persisted
pub enum StoreError {
    /// Filesystem failure while reading or (atomically) writing.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version stored in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The file ends before a structure it promises.
    Truncated {
        /// Bytes needed to finish parsing.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC recomputed over the header bytes.
        computed: u32,
    },
    /// The section table is self-inconsistent (bad offsets, overlap,
    /// misalignment, nonzero padding, trailing garbage, …).
    SectionTable {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A section's payload bytes do not match its table checksum.
    SectionChecksum {
        /// Section id.
        id: u32,
        /// CRC stored in the section table.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// Section id that was expected.
        id: u32,
    },
    /// A section's payload decoded inconsistently (bad lengths, invalid
    /// UTF-8, non-finite weights, out-of-bounds ids, …).
    Malformed {
        /// Section id being decoded.
        section: u32,
        /// What went wrong.
        detail: String,
    },
    /// The graph section decoded but its CSRs are structurally invalid.
    GraphShape(GraphShapeError),
    /// An index section decoded but its arrays are structurally invalid.
    IndexShape(IndexShapeError),
    /// A decoded structure passed shape checks but failed its semantic
    /// audit (`GraphAudit` / `IndexAudit`), which the store always runs
    /// on untrusted bytes.
    AuditRejected {
        /// Which structure was rejected ("graph" or the collection name).
        what: String,
        /// The audit's violation report.
        report: String,
    },
    /// A snapshot was asked for a collection it does not contain.
    NoSuchCollection {
        /// The requested collection name.
        name: String,
    },
    /// `Snapshot::index` was called on a collection persisted as more
    /// than one segment; use `Snapshot::searcher` for the merged view.
    MultiSegment {
        /// The collection name.
        name: String,
        /// How many segments the collection holds.
        segments: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is newer than supported version {supported}"
            ),
            StoreError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, only {available} available"
            ),
            StoreError::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::SectionTable { detail } => {
                write!(f, "section table invalid: {detail}")
            }
            StoreError::SectionChecksum {
                id,
                stored,
                computed,
            } => write!(
                f,
                "section {id:#x} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::MissingSection { id } => {
                write!(f, "required section {id:#x} is missing")
            }
            StoreError::Malformed { section, detail } => {
                write!(f, "section {section:#x} payload malformed: {detail}")
            }
            StoreError::GraphShape(e) => write!(f, "graph section inconsistent: {e}"),
            StoreError::IndexShape(e) => write!(f, "index section inconsistent: {e}"),
            StoreError::AuditRejected { what, report } => {
                write!(f, "audit rejected decoded {what}:\n{report}")
            }
            StoreError::NoSuchCollection { name } => {
                write!(f, "snapshot holds no collection named `{name}`")
            }
            StoreError::MultiSegment { name, segments } => write!(
                f,
                "collection `{name}` holds {segments} segments; use Snapshot::searcher \
                 for the merged view"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::GraphShape(e) => Some(e),
            StoreError::IndexShape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphShapeError> for StoreError {
    fn from(e: GraphShapeError) -> Self {
        StoreError::GraphShape(e)
    }
}

impl From<IndexShapeError> for StoreError {
    fn from(e: IndexShapeError) -> Self {
        StoreError::IndexShape(e)
    }
}
