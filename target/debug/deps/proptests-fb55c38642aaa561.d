/root/repo/target/debug/deps/proptests-fb55c38642aaa561.d: crates/searchlite/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fb55c38642aaa561: crates/searchlite/tests/proptests.rs

crates/searchlite/tests/proptests.rs:
