//! Shard-level scatter-gather scoring with exact-integer stat merging.
//!
//! A sharded deployment routes each document to one of N shards by a
//! deterministic hash of its external id; every shard is an independent
//! corpus (its own [`Searcher`]). Scoring a query then runs in two
//! phases, the same trick [`Searcher`] plays per-segment lifted one
//! level:
//!
//! 1. **Partial resolve** (per shard): map query tokens to shard-local
//!    term ids, run phrase/window intersections, and report the shard's
//!    *integer* contribution to every corpus statistic (collection
//!    length, per-feature collection counts, document frequencies,
//!    document counts).
//! 2. **Gather + score**: sum the integer contributions into the global
//!    statistics a monolithic index would report, derive the f64
//!    collection probabilities / idfs / avgdl from those exact sums
//!    *once*, then score each shard's candidates locally with the global
//!    statistics and the shard-local term frequencies and doc lengths.
//!
//! Because a document lives wholly in one shard, its tf and |D| are
//! shard-local facts, and every global statistic is an exact integer sum
//! — so per-document scores are bit-identical to a monolithic build.
//! Per-shard top-k lists (local doc ids are assigned in arrival order,
//! hence monotone in the global ingest ordinal) are merged with the
//! `scorecmp` total order in [`merge_top_k`], making the final ranking —
//! and any run file written from it — byte-identical for any shard
//! count and any routing.

use rustc_hash::FxHashMap;

use crate::index::{DocId, PositionalScratch, TermId};
use crate::ql::{QlParams, SearchHit};
use crate::searcher::Searcher;
use crate::structured::{Feature, Query};
use crate::topk::TopK;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic document→shard routing: FNV-1a over the external id
/// bytes, xor-folded with a salt, reduced modulo the shard count. The
/// salt lets tests sample many routings of the same corpus; production
/// uses the default salt 0 so routing is a pure function of the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    salt: u64,
}

impl ShardRouter {
    /// A router over `shards` shards (at least 1) with salt 0.
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter::with_salt(shards, 0)
    }

    /// A router with an explicit salt, for sampling alternate routings.
    pub fn with_salt(shards: usize, salt: u64) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
            salt,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing salt.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The shard owning `external_id`.
    pub fn route(&self, external_id: &str) -> usize {
        let mut h = FNV_OFFSET;
        for &b in external_id.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        usize::try_from((h ^ self.salt) % self.shards as u64)
            .expect("invariant: shard index bounded by shard count")
    }
}

// ------------------------------------------------------------- QL ----

/// The shard-local shape of one query feature.
enum ShardFeatureKind {
    /// Single term; `None` when the token is absent from this shard's
    /// vocabulary (it may still exist in other shards).
    Term(Option<TermId>),
    /// Phrase or unordered window, pre-intersected against this shard:
    /// local doc id → positional frequency. Empty when any token is
    /// locally out of vocabulary or the pattern never matches here.
    Positional(FxHashMap<u32, u32>),
}

struct ShardFeature {
    kind: ShardFeatureKind,
    weight: f64,
    /// This shard's integer contribution to the feature's collection
    /// count (collection tf for terms, summed positional frequency for
    /// phrases/windows). Stays an integer until the gather step.
    count: u64,
}

/// One shard's partial resolution of a query: per-feature local postings
/// plus the shard's integer contributions to the global statistics.
pub struct QlShardResolve {
    features: Vec<ShardFeature>,
    collection_len: u64,
}

impl QlShardResolve {
    /// Number of resolved features (always equals the query's feature
    /// count, so partials from different shards align by index).
    pub fn num_features(&self) -> usize {
        self.features.len()
    }
}

/// Phase 1 of sharded QL: resolves `query` against one shard, computing
/// local postings and integer stat contributions. Every query feature
/// yields exactly one entry, so partials from all shards align by index.
pub fn ql_resolve_shard(
    searcher: &Searcher,
    query: &Query,
    pos: &mut PositionalScratch,
) -> QlShardResolve {
    let mut features = Vec::with_capacity(query.len());
    for wf in query.features() {
        let (kind, count) = match &wf.feature {
            Feature::Term(tok) => match searcher.term_id(tok) {
                Some(t) => (ShardFeatureKind::Term(Some(t)), searcher.collection_tf(t)),
                None => (ShardFeatureKind::Term(None), 0),
            },
            Feature::Phrase(tokens) => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                positional_shard_feature(ids.map(|ids| searcher.phrase_postings_with(&ids, pos)))
            }
            Feature::Unordered { tokens, window } => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                positional_shard_feature(
                    ids.map(|ids| searcher.unordered_window_postings_with(&ids, *window, pos)),
                )
            }
        };
        features.push(ShardFeature {
            kind,
            weight: wf.weight,
            count,
        });
    }
    QlShardResolve {
        features,
        collection_len: searcher.collection_len(),
    }
}

fn positional_shard_feature(postings: Option<Vec<(DocId, u32)>>) -> (ShardFeatureKind, u64) {
    match postings {
        Some(postings) => {
            let count: u64 = postings.iter().map(|&(_, tf)| u64::from(tf)).sum();
            let tfs: FxHashMap<u32, u32> = postings.into_iter().map(|(d, tf)| (d.0, tf)).collect();
            (ShardFeatureKind::Positional(tfs), count)
        }
        // A locally out-of-vocabulary token: this shard holds no
        // occurrence, so it contributes 0 to the global count — exactly
        // what a monolithic index would count for these documents.
        None => (ShardFeatureKind::Positional(FxHashMap::default()), 0),
    }
}

/// The gather step: sums every shard's integer contributions and derives
/// the per-feature collection probabilities from the exact global sums —
/// the same `max(count, 0.5) / max(|C|, 1)` floor as
/// [`Searcher::collection_prob_for_count`], applied to the global
/// integers. A term absent from every shard sums to 0 and floors to the
/// monolithic out-of-vocabulary probability `0.5 / |C|`.
pub fn ql_global_pcs(partials: &[QlShardResolve]) -> Vec<f64> {
    let collection_len: u64 = partials.iter().map(|p| p.collection_len).sum();
    let c = collection_len.max(1) as f64;
    let n = partials.first().map_or(0, |p| p.features.len());
    (0..n)
        .map(|i| {
            let count: u64 = partials
                .iter()
                .map(|p| p.features.get(i).map_or(0, |f| f.count))
                .sum();
            (count as f64).max(0.5) / c
        })
        .collect()
}

/// Phase 2 of sharded QL: scores this shard's candidates with the
/// *global* collection probabilities and the shard-local tf / |D|,
/// replicating the monolithic Dirichlet formula term by term, and keeps
/// the shard's top `k` as `(local doc id, score)` pairs. The caller maps
/// local ids to global ingest ordinals and merges with [`merge_top_k`].
pub fn ql_rank_shard(
    searcher: &Searcher,
    partial: &QlShardResolve,
    pcs: &[f64],
    params: QlParams,
    k: usize,
) -> Vec<(u32, f64)> {
    if partial.features.is_empty() {
        return Vec::new();
    }
    let total: f64 = partial.features.iter().map(|f| f.weight).sum();
    let mut candidates: Vec<u32> = Vec::new();
    for f in &partial.features {
        match &f.kind {
            ShardFeatureKind::Term(Some(t)) => searcher.push_docs(*t, &mut candidates),
            ShardFeatureKind::Term(None) => {}
            ShardFeatureKind::Positional(tfs) => candidates.extend(tfs.keys().copied()),
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut top = TopK::new(k);
    for &doc in &candidates {
        top.push(doc, score_shard_doc(searcher, partial, pcs, total, DocId(doc), params.mu));
    }
    top.into_sorted()
}

/// The monolithic `score_resolved` with the collection probabilities
/// injected from the gather step. Identical operations in identical
/// order ⇒ identical bits.
fn score_shard_doc(
    searcher: &Searcher,
    partial: &QlShardResolve,
    pcs: &[f64],
    total: f64,
    doc: DocId,
    mu: f64,
) -> f64 {
    if total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let dl = searcher.doc_len(doc) as f64;
    let denom = (dl + mu).ln();
    let mut score = 0.0;
    for (f, &pc) in partial.features.iter().zip(pcs) {
        let tf = match &f.kind {
            ShardFeatureKind::Term(Some(t)) => searcher.tf(*t, doc) as f64,
            ShardFeatureKind::Term(None) => 0.0,
            ShardFeatureKind::Positional(tfs) => tfs.get(&doc.0).copied().unwrap_or(0) as f64,
        };
        score += f.weight / total * ((tf + mu * pc).ln() - denom);
    }
    score
}

// ----------------------------------------------------------- BM25 ----

struct Bm25ShardFeature {
    /// Local doc id → tf for this feature within the shard.
    tfs: FxHashMap<u32, u32>,
    weight: f64,
    /// Shard-local document frequency (integer; summed in the gather).
    df: usize,
}

/// One shard's partial BM25 resolution: per-feature local postings plus
/// integer contributions to `N`, `|C|` and each feature's df.
pub struct Bm25ShardResolve {
    features: Vec<Bm25ShardFeature>,
    num_docs: usize,
    collection_len: u64,
}

/// Global BM25 statistics gathered from exact integer sums: per-feature
/// idf (`None` marks a feature with global df 0 — dropped, exactly as
/// the monolithic resolver drops it) and the global average doc length.
pub struct Bm25GlobalStats {
    idfs: Vec<Option<f64>>,
    avgdl: f64,
}

/// Phase 1 of sharded BM25. Every query feature yields exactly one
/// entry (empty postings for locally out-of-vocabulary tokens), so
/// partials align by index across shards.
pub fn bm25_resolve_shard(searcher: &Searcher, query: &Query) -> Bm25ShardResolve {
    let mut pos = PositionalScratch::new();
    let mut features = Vec::with_capacity(query.len());
    for wf in query.features() {
        let postings: Option<Vec<(DocId, u32)>> = match &wf.feature {
            Feature::Term(tok) => searcher.term_id(tok).map(|t| searcher.term_postings(t)),
            Feature::Phrase(tokens) => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                ids.map(|ids| searcher.phrase_postings_with(&ids, &mut pos))
            }
            Feature::Unordered { tokens, window } => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                ids.map(|ids| searcher.unordered_window_postings_with(&ids, *window, &mut pos))
            }
        };
        let (tfs, df) = match postings {
            Some(postings) => {
                let df = postings.len();
                (
                    postings.into_iter().map(|(d, tf)| (d.0, tf)).collect(),
                    df,
                )
            }
            None => (FxHashMap::default(), 0),
        };
        features.push(Bm25ShardFeature {
            tfs,
            weight: wf.weight,
            df,
        });
    }
    Bm25ShardResolve {
        features,
        num_docs: searcher.num_docs(),
        collection_len: searcher.collection_len(),
    }
}

/// The BM25 gather step: global `N`, global df per feature (features
/// with global df 0 are dropped — `None`), and global avgdl — all from
/// exact integer sums, fed through the same formulas as the monolithic
/// scorer.
pub fn bm25_global_stats(partials: &[Bm25ShardResolve]) -> Bm25GlobalStats {
    let num_docs: usize = partials.iter().map(|p| p.num_docs).sum();
    let collection_len: u64 = partials.iter().map(|p| p.collection_len).sum();
    let avgdl = (collection_len as f64 / num_docs.max(1) as f64).max(f64::EPSILON);
    let n = partials.first().map_or(0, |p| p.features.len());
    let idfs = (0..n)
        .map(|i| {
            let df: usize = partials
                .iter()
                .map(|p| p.features.get(i).map_or(0, |f| f.df))
                .sum();
            if df == 0 {
                None
            } else {
                Some(crate::bm25::idf(num_docs, df))
            }
        })
        .collect();
    Bm25GlobalStats { idfs, avgdl }
}

/// Phase 2 of sharded BM25: scores this shard's candidates with the
/// global idfs/avgdl and local tf / |D|. A feature that survives
/// globally but has no local postings contributes exactly `+0.0` here —
/// the same thing the monolithic scorer adds for a document that does
/// not match it.
pub fn bm25_rank_shard(
    searcher: &Searcher,
    partial: &Bm25ShardResolve,
    globals: &Bm25GlobalStats,
    params: crate::bm25::Bm25Params,
    k: usize,
) -> Vec<(u32, f64)> {
    if globals.idfs.iter().all(Option::is_none) {
        return Vec::new();
    }
    let mut candidates: Vec<u32> = partial
        .features
        .iter()
        .zip(&globals.idfs)
        .filter(|(_, idf)| idf.is_some())
        .flat_map(|(f, _)| f.tfs.keys().copied())
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut top = TopK::new(k);
    for &doc in &candidates {
        let dl = searcher.doc_len(DocId(doc)) as f64;
        let norm = params.k1 * (1.0 - params.b + params.b * dl / globals.avgdl);
        let mut score = 0.0;
        for (f, idf) in partial.features.iter().zip(&globals.idfs) {
            let Some(idf) = idf else { continue };
            if let Some(&tf) = f.tfs.get(&doc) {
                let tf = tf as f64;
                score += f.weight * *idf * tf * (params.k1 + 1.0) / (tf + norm);
            }
        }
        top.push(doc, score);
    }
    top.into_sorted()
}

// ----------------------------------------------------- top-k gather --

/// Merges per-shard top-k lists — already mapped to *global* doc ids —
/// under the `scorecmp` total order (score descending, ties by ascending
/// id) and keeps the best `k`. Because each shard's list is its true
/// local top-k and local id order is monotone in the global ordinal, the
/// merged list equals the monolithic top-k exactly.
pub fn merge_top_k(mut hits: Vec<(u32, f64)>, k: usize) -> Vec<SearchHit> {
    hits.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.1, b.1, a.0, b.0));
    hits.truncate(k);
    hits.into_iter()
        .map(|(doc, score)| SearchHit {
            doc: DocId(doc),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::bm25::{self, Bm25Params};
    use crate::index::IndexBuilder;
    use crate::ql::{self, QlScratch};

    const DOCS: [(&str, &str); 8] = [
        ("d0", "cable car climbs the hill"),
        ("d1", "cable car cable car"),
        ("d2", "the hill of graffiti"),
        ("d3", "funicular railway on the hill"),
        ("d4", "graffiti covers the cable"),
        ("d5", "car on the funicular railway"),
        ("d6", "painted walls near the station plaza"),
        ("d7", "cable stretched over the market square"),
    ];

    fn monolithic() -> Searcher {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in DOCS {
            b.add_document(id, text).expect("unique test ids");
        }
        Searcher::from_index(b.build())
    }

    /// Builds one Searcher per shard under `router`, plus each shard's
    /// local-id → global-ordinal map (ordinal = position in DOCS).
    fn sharded(router: &ShardRouter) -> (Vec<Searcher>, Vec<Vec<u32>>) {
        let mut builders: Vec<IndexBuilder> = (0..router.shards())
            .map(|_| IndexBuilder::new(Analyzer::plain()))
            .collect();
        let mut ordinals: Vec<Vec<u32>> = vec![Vec::new(); router.shards()];
        for (ordinal, (id, text)) in DOCS.iter().enumerate() {
            let s = router.route(id);
            builders[s].add_document(id, text).expect("unique test ids");
            ordinals[s].push(u32::try_from(ordinal).expect("small test corpus"));
        }
        let searchers = builders
            .into_iter()
            .map(|b| Searcher::from_index(b.build()))
            .collect();
        (searchers, ordinals)
    }

    fn sharded_ql(router: &ShardRouter, query: &Query, params: QlParams, k: usize) -> Vec<SearchHit> {
        let (searchers, ordinals) = sharded(router);
        let mut pos = PositionalScratch::new();
        let partials: Vec<QlShardResolve> = searchers
            .iter()
            .map(|s| ql_resolve_shard(s, query, &mut pos))
            .collect();
        let pcs = ql_global_pcs(&partials);
        let mut all = Vec::new();
        for ((searcher, partial), ords) in searchers.iter().zip(&partials).zip(&ordinals) {
            for (local, score) in ql_rank_shard(searcher, partial, &pcs, params, k) {
                all.push((ords[local as usize], score));
            }
        }
        merge_top_k(all, k)
    }

    fn sharded_bm25(
        router: &ShardRouter,
        query: &Query,
        params: Bm25Params,
        k: usize,
    ) -> Vec<SearchHit> {
        let (searchers, ordinals) = sharded(router);
        let partials: Vec<Bm25ShardResolve> = searchers
            .iter()
            .map(|s| bm25_resolve_shard(s, query))
            .collect();
        let globals = bm25_global_stats(&partials);
        let mut all = Vec::new();
        for ((searcher, partial), ords) in searchers.iter().zip(&partials).zip(&ordinals) {
            for (local, score) in bm25_rank_shard(searcher, partial, &globals, params, k) {
                all.push((ords[local as usize], score));
            }
        }
        merge_top_k(all, k)
    }

    fn test_queries() -> Vec<Query> {
        let a = Analyzer::plain();
        let mut queries = vec![
            Query::parse_text("cable car", &a),
            Query::parse_text("the hill", &a),
            Query::parse_text("graffiti funicular station", &a),
            Query::parse_text("zeppelin", &a),       // globally OOV
            Query::parse_text("cable zeppelin", &a), // mixed OOV
            Query::new(),                            // empty
        ];
        let mut phrase = Query::new();
        phrase.push_phrase_tokens(vec!["cable".into(), "car".into()], 2.0);
        phrase.push_term("hill".into(), 1.0);
        queries.push(phrase);
        let mut missing_phrase = Query::new();
        // All tokens in-vocabulary, but the exact phrase never occurs.
        missing_phrase.push_phrase_tokens(vec!["hill".into(), "cable".into()], 1.0);
        missing_phrase.push_term("car".into(), 0.5);
        queries.push(missing_phrase);
        let mut oov_phrase = Query::new();
        // One phrase token globally out of vocabulary.
        oov_phrase.push_phrase_tokens(vec!["cable".into(), "zeppelin".into()], 1.0);
        oov_phrase.push_term("graffiti".into(), 1.0);
        queries.push(oov_phrase);
        let mut window = Query::new();
        window.push_unordered_text("cable hill", &a, 8, 1.0);
        window.push_term("railway".into(), 0.25);
        queries.push(window);
        queries
    }

    #[test]
    fn router_is_deterministic_and_bounded() {
        for shards in 1..=8 {
            let r = ShardRouter::new(shards);
            for (id, _) in DOCS {
                let s = r.route(id);
                assert!(s < shards);
                assert_eq!(s, r.route(id), "same id must route identically");
            }
        }
        let r1 = ShardRouter::new(1);
        assert!(DOCS.iter().all(|(id, _)| r1.route(id) == 0));
    }

    #[test]
    fn salts_change_routing_but_stay_deterministic() {
        let a = ShardRouter::with_salt(4, 0x1234);
        let b = ShardRouter::with_salt(4, 0x1234);
        for (id, _) in DOCS {
            assert_eq!(a.route(id), b.route(id));
        }
    }

    #[test]
    fn sharded_ql_is_bit_identical_to_monolithic() {
        let mono = monolithic();
        let params = QlParams { mu: 10.0 };
        for shards in 1..=5 {
            for salt in [0u64, 0xdead_beef, 0x5eed_5eed_5eed_5eed] {
                let router = ShardRouter::with_salt(shards, salt);
                for (qi, q) in test_queries().iter().enumerate() {
                    let want = ql::rank(&mono, q, params, 5);
                    let got = sharded_ql(&router, q, params, 5);
                    assert_eq!(
                        got, want,
                        "shards={shards} salt={salt:#x} query #{qi}: sharded QL must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_bm25_is_bit_identical_to_monolithic() {
        let mono = monolithic();
        let params = Bm25Params::default();
        for shards in 1..=5 {
            for salt in [0u64, 0xdead_beef] {
                let router = ShardRouter::with_salt(shards, salt);
                for (qi, q) in test_queries().iter().enumerate() {
                    let want = bm25::rank(&mono, q, params, 5);
                    let got = sharded_bm25(&router, q, params, 5);
                    assert_eq!(
                        got, want,
                        "shards={shards} salt={salt:#x} query #{qi}: sharded BM25 must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_shards_are_harmless() {
        // More shards than documents: some shards stay empty and must
        // contribute nothing (and never skew the global statistics).
        let mono = monolithic();
        let router = ShardRouter::with_salt(31, 7);
        let q = Query::parse_text("cable car hill", &Analyzer::plain());
        let params = QlParams { mu: 10.0 };
        assert_eq!(
            sharded_ql(&router, &q, params, 10),
            ql::rank(&mono, &q, params, 10)
        );
    }

    #[test]
    fn global_pcs_floor_oov_terms_like_the_monolithic_searcher() {
        let router = ShardRouter::new(3);
        let (searchers, _) = sharded(&router);
        let q = Query::parse_text("zeppelin", &Analyzer::plain());
        let mut pos = PositionalScratch::new();
        let partials: Vec<QlShardResolve> = searchers
            .iter()
            .map(|s| ql_resolve_shard(s, &q, &mut pos))
            .collect();
        let pcs = ql_global_pcs(&partials);
        let mono = monolithic();
        assert_eq!(pcs, vec![mono.collection_prob(None)]);
    }

    #[test]
    fn merge_top_k_breaks_ties_by_global_id() {
        let hits = vec![(7, 1.0), (2, 1.0), (5, 2.0), (9, 0.5)];
        let merged = merge_top_k(hits, 3);
        let got: Vec<(u32, f64)> = merged.iter().map(|h| (h.doc.0, h.score)).collect();
        assert_eq!(got, vec![(5, 2.0), (2, 1.0), (7, 1.0)]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_resolve() {
        // The shared PositionalScratch across shards must not leak state
        // between shards or queries.
        let mono = monolithic();
        let router = ShardRouter::new(3);
        let params = QlParams { mu: 10.0 };
        let mut scratch = QlScratch::new();
        for q in test_queries() {
            let want = ql::rank_with_scratch(&mono, &q, params, 5, &mut scratch);
            assert_eq!(sharded_ql(&router, &q, params, 5), want);
        }
    }
}
