/root/repo/target/release/deps/kbgraph-f7e0f442bf962385.d: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

/root/repo/target/release/deps/libkbgraph-f7e0f442bf962385.rlib: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

/root/repo/target/release/deps/libkbgraph-f7e0f442bf962385.rmeta: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

crates/kbgraph/src/lib.rs:
crates/kbgraph/src/builder.rs:
crates/kbgraph/src/csr.rs:
crates/kbgraph/src/cycles.rs:
crates/kbgraph/src/dot.rs:
crates/kbgraph/src/graph.rs:
crates/kbgraph/src/ids.rs:
crates/kbgraph/src/paths.rs:
crates/kbgraph/src/stats.rs:
