//! The streaming generator must be indistinguishable from the in-memory
//! one: same documents in the same order, same qrels, same query sets.
//! A golden digest pins the stream against silent drift in either path.

use synthwiki::config::TestBedConfig;
use synthwiki::dataset::{TestBed, TestBedPlan};
use synthwiki::docs::Document;

/// FNV-1a 64 over a byte string.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Order-sensitive digest of a document stream.
fn digest_doc(hash: &mut u64, doc: &Document) {
    fnv1a(hash, doc.id.as_bytes());
    fnv1a(hash, doc.text.as_bytes());
    match doc.about {
        Some(e) => fnv1a(hash, &(e as u64).to_le_bytes()),
        None => fnv1a(hash, b"-"),
    }
    fnv1a(hash, &[u8::from(doc.judged_relevant)]);
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Golden digest of the two medium-config collection streams. If this
/// changes, the generated corpus changed — every committed BENCH number
/// and calibration claim silently refers to a different world. Bump it
/// only with a deliberate generator change.
const MEDIUM_STREAM_DIGEST: [u64; 2] = [0x3206_048d_1fc3_6fea, 0x7232_2a83_9dc9_9ecd];

#[test]
fn stream_matches_in_memory_generation() {
    let cfg = TestBedConfig::medium();
    let bed = TestBed::generate(&cfg);

    let mut digests = [FNV_OFFSET; 2];
    let mut streamed_docs: Vec<Vec<Document>> = vec![Vec::new(), Vec::new()];
    let streamed = TestBed::stream(&cfg, &mut |coll, doc| {
        digest_doc(&mut digests[coll], doc);
        streamed_docs[coll].push(doc.clone());
    });

    // Same documents, byte for byte, in the same order.
    let mut mem_digests = [FNV_OFFSET; 2];
    for (i, coll) in bed.collections.iter().enumerate() {
        for doc in &coll.docs {
            digest_doc(&mut mem_digests[i], doc);
        }
        assert_eq!(coll.docs.len(), streamed.doc_counts[i], "collection {i}");
        assert_eq!(coll.name, streamed.collection_names[i]);
    }
    assert_eq!(digests, mem_digests, "stream diverged from in-memory docs");
    assert_eq!(
        digests, MEDIUM_STREAM_DIGEST,
        "generator output changed; deliberate changes must bump the golden digest"
    );
    for (i, coll) in bed.collections.iter().enumerate() {
        assert_eq!(
            serde_json::to_string(&coll.docs).expect("serializable"),
            serde_json::to_string(&streamed_docs[i]).expect("serializable"),
            "collection {i} full contents"
        );
    }

    // Same datasets: queries, collection assignment and qrels.
    assert_eq!(bed.datasets.len(), streamed.datasets.len());
    for (mem, st) in bed.datasets.iter().zip(&streamed.datasets) {
        assert_eq!(mem.name, st.name);
        assert_eq!(mem.collection, st.collection);
        assert_eq!(
            serde_json::to_string(&mem.queries).expect("serializable"),
            serde_json::to_string(&st.queries).expect("serializable"),
            "query set {}",
            mem.name
        );
        assert_eq!(mem.relevant, st.relevant, "qrels for {}", mem.name);
    }
}

#[test]
fn plan_reuse_matches_one_shot_stream() {
    // A caller that builds the plan first (to stand up indexes against the
    // KB before documents flow) must see the identical stream.
    let cfg = TestBedConfig::small();
    let mut one_shot = [FNV_OFFSET; 2];
    let streamed = TestBed::stream(&cfg, &mut |coll, doc| digest_doc(&mut one_shot[coll], doc));

    let plan = TestBedPlan::new(&cfg);
    let mut reused = [FNV_OFFSET; 2];
    let (datasets, counts) = plan.stream_docs(&cfg, &mut |coll, doc| {
        digest_doc(&mut reused[coll], doc);
    });
    assert_eq!(one_shot, reused);
    assert_eq!(counts, streamed.doc_counts);
    assert_eq!(datasets.len(), streamed.datasets.len());
    for (a, b) in datasets.iter().zip(&streamed.datasets) {
        assert_eq!(a.relevant, b.relevant, "qrels for {}", a.name);
    }
}

#[test]
fn streaming_100k_articles_is_bounded() {
    // Bounded-memory smoke: stream a 100k-article bed holding only a
    // running digest — no document buffer anywhere on this path.
    let cfg = TestBedConfig::streaming(100_000);
    assert_eq!(cfg.imageclef.total_docs + cfg.chic.total_docs, 100_000);
    let mut digest = FNV_OFFSET;
    let mut total = 0usize;
    let streamed = TestBed::stream(&cfg, &mut |_, doc| {
        digest_doc(&mut digest, doc);
        total += 1;
    });
    assert_eq!(total, 100_000);
    assert_eq!(streamed.doc_counts.iter().sum::<usize>(), 100_000);
    assert_ne!(digest, FNV_OFFSET);
    // Qrels still complete: every query id present, zero-relevant queries
    // preserved per config.
    for ds in &streamed.datasets {
        assert_eq!(ds.relevant.len(), ds.queries.len(), "dataset {}", ds.name);
    }
}
