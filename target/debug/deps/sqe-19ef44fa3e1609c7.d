/root/repo/target/debug/deps/sqe-19ef44fa3e1609c7.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/combine.rs crates/core/src/expand.rs crates/core/src/learn.rs crates/core/src/motif.rs crates/core/src/pattern.rs crates/core/src/pipeline.rs crates/core/src/query_graph.rs

/root/repo/target/debug/deps/sqe-19ef44fa3e1609c7: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/combine.rs crates/core/src/expand.rs crates/core/src/learn.rs crates/core/src/motif.rs crates/core/src/pattern.rs crates/core/src/pipeline.rs crates/core/src/query_graph.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/combine.rs:
crates/core/src/expand.rs:
crates/core/src/learn.rs:
crates/core/src/motif.rs:
crates/core/src/pattern.rs:
crates/core/src/pipeline.rs:
crates/core/src/query_graph.rs:
