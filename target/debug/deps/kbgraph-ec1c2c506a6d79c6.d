/root/repo/target/debug/deps/kbgraph-ec1c2c506a6d79c6.d: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

/root/repo/target/debug/deps/libkbgraph-ec1c2c506a6d79c6.rlib: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

/root/repo/target/debug/deps/libkbgraph-ec1c2c506a6d79c6.rmeta: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

crates/kbgraph/src/lib.rs:
crates/kbgraph/src/builder.rs:
crates/kbgraph/src/csr.rs:
crates/kbgraph/src/cycles.rs:
crates/kbgraph/src/dot.rs:
crates/kbgraph/src/graph.rs:
crates/kbgraph/src/ids.rs:
crates/kbgraph/src/paths.rs:
crates/kbgraph/src/stats.rs:
