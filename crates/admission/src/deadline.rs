//! Per-request deadlines in injected-clock nanoseconds.

/// The pipeline stage at which a deadline was discovered blown. Stages
/// cannot be aborted mid-flight (a motif traversal has no safe poll
/// point), so deadlines are checked at stage boundaries and the variant
/// names the last stage that ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The deadline expired while the request waited to start.
    Queue,
    /// The deadline expired during query-graph expansion.
    Expand,
    /// The deadline expired during retrieval scoring (the answer was
    /// computed, but too late to be useful).
    Rank,
    /// The deadline expired during SQE_C rank-range combination.
    Combine,
}

impl Stage {
    /// Stable lower-case name (used in outcome labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Expand => "expand",
            Stage::Rank => "rank",
            Stage::Combine => "combine",
        }
    }
}

/// An absolute completion deadline on the service's injected clock.
///
/// `Deadline::NONE` (the default) never expires. A bounded deadline is
/// created from the arrival time plus a budget ([`Deadline::within`]);
/// all arithmetic saturates, so `u64::MAX` cleanly means "unbounded".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deadline {
    at_nanos: u64,
}

impl Deadline {
    /// The unbounded deadline: never expires.
    pub const NONE: Deadline = Deadline { at_nanos: u64::MAX };

    /// A deadline at an absolute clock reading.
    pub fn at(nanos: u64) -> Self {
        Deadline { at_nanos: nanos }
    }

    /// A deadline `budget` nanoseconds after `now`.
    pub fn within(now: u64, budget: u64) -> Self {
        Deadline {
            at_nanos: now.saturating_add(budget),
        }
    }

    /// The absolute expiry reading (`u64::MAX` when unbounded).
    pub fn at_nanos(self) -> u64 {
        self.at_nanos
    }

    /// True when this deadline never expires.
    pub fn is_unbounded(self) -> bool {
        self.at_nanos == u64::MAX
    }

    /// Remaining budget at `now`: `None` when unbounded, `Some(0)` when
    /// already due.
    pub fn remaining(self, now: u64) -> Option<u64> {
        if self.is_unbounded() {
            None
        } else {
            Some(self.at_nanos.saturating_sub(now))
        }
    }

    /// True when `now` is strictly past the deadline (completion at
    /// exactly the deadline still counts as on time).
    pub fn expired(self, now: u64) -> bool {
        !self.is_unbounded() && now > self.at_nanos
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::NONE;
        assert!(d.is_unbounded());
        assert!(!d.expired(u64::MAX));
        assert_eq!(d.remaining(12345), None);
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn within_saturates_to_unbounded() {
        let d = Deadline::within(u64::MAX - 5, 100);
        assert!(d.is_unbounded());
    }

    #[test]
    fn remaining_and_expiry() {
        let d = Deadline::within(1_000, 500);
        assert_eq!(d.at_nanos(), 1_500);
        assert_eq!(d.remaining(1_000), Some(500));
        assert_eq!(d.remaining(1_400), Some(100));
        assert_eq!(d.remaining(1_500), Some(0));
        assert_eq!(d.remaining(2_000), Some(0));
        assert!(!d.expired(1_500), "completion at the deadline is on time");
        assert!(d.expired(1_501));
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Queue.name(), "queue");
        assert_eq!(Stage::Expand.name(), "expand");
        assert_eq!(Stage::Rank.name(), "rank");
        assert_eq!(Stage::Combine.name(), "combine");
    }
}
