// Fixture: the audited accessor pattern — the only sanctioned way to
// hand a guard out. The return type names the guard, so every caller
// sees the critical section it is holding open.

pub fn state_lock(&self) -> MutexGuard<'_, State> {
    match self.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub fn tick(&self) {
    let mut g = self.state_lock();
    g.bump();
}
