/root/repo/target/debug/deps/end_to_end-2e5452c377176f85.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2e5452c377176f85: tests/end_to_end.rs

tests/end_to_end.rs:
