//! The two-stage entity linker.

use kbgraph::ArticleId;

use crate::dictionary::Dictionary;
use crate::noise::{NoiseModel, NoiseRng};
use crate::spotter;

/// Linker behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkerConfig {
    /// Minimum commonness for a sense to be accepted at all.
    pub min_commonness: f64,
    /// Enable the Alchemy-style fallback (token-containment matching)
    /// when the Dexter stage finds nothing.
    pub fallback: bool,
    /// Extrinsic error channel.
    pub noise: NoiseModel,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            min_commonness: 0.0,
            fallback: true,
            noise: NoiseModel::none(),
        }
    }
}

/// One linked entity in a piece of text.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedEntity {
    /// The resolved article.
    pub article: ArticleId,
    /// The surface form that produced the link.
    pub surface: String,
    /// The commonness of the winning sense.
    pub commonness: f64,
    /// True when the link came from the fallback stage.
    pub from_fallback: bool,
}

/// Dictionary spotting + commonness disambiguation + containment fallback.
#[derive(Debug)]
pub struct EntityLinker {
    dict: Dictionary,
    cfg: LinkerConfig,
}

impl EntityLinker {
    /// Creates a linker over a dictionary.
    pub fn new(dict: Dictionary, cfg: LinkerConfig) -> Self {
        EntityLinker { dict, cfg }
    }

    /// The underlying dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Links entities in `text`. The primary (Dexter) stage spots
    /// longest-match dictionary mentions and resolves each to its most
    /// common sense; if *nothing* is spotted and the fallback is enabled,
    /// individual tokens are matched against titles containing them (the
    /// Alchemy stage). Results are deduplicated by article, best
    /// commonness first.
    pub fn link(&self, text: &str) -> Vec<LinkedEntity> {
        let tokens = self.dict.analyzer().analyze(text);
        let mut rng = NoiseRng::from_text(text);
        let mut out: Vec<LinkedEntity> = Vec::new();

        let mentions = spotter::spot(&self.dict, &tokens);
        for m in &mentions {
            let senses = self
                .dict
                .lookup(&m.surface)
                .expect("invariant: the spotter only emits surfaces present in the dictionary");
            self.resolve(&m.surface, senses, false, &mut rng, &mut out);
        }
        if out.is_empty() && self.cfg.fallback {
            for tok in &tokens {
                if let Some(senses) = self.dict.lookup_containing(tok) {
                    self.resolve(tok, senses, true, &mut rng, &mut out);
                }
            }
        }
        // Dedup by article keeping the best-commonness occurrence.
        out.sort_by(|a, b| {
            a.article
                .cmp(&b.article)
                .then(scorecmp::cmp_scores_desc(a.commonness, b.commonness))
        });
        out.dedup_by_key(|l| l.article);
        out.sort_by(|a, b| {
            scorecmp::by_score_desc_then_id(a.commonness, b.commonness, a.article, b.article)
        });
        out
    }

    fn resolve(
        &self,
        surface: &str,
        senses: &[crate::dictionary::Sense],
        from_fallback: bool,
        rng: &mut NoiseRng,
        out: &mut Vec<LinkedEntity>,
    ) {
        let eligible: Vec<_> = senses
            .iter()
            .filter(|s| s.commonness >= self.cfg.min_commonness)
            .collect();
        if eligible.is_empty() {
            return;
        }
        if rng.chance(self.cfg.noise.p_miss) {
            return;
        }
        let mut pick = 0usize;
        if eligible.len() > 1 && rng.chance(self.cfg.noise.p_mislink) {
            pick = 1;
        }
        let s = eligible[pick];
        out.push(LinkedEntity {
            article: s.article,
            surface: surface.to_owned(),
            commonness: s.commonness,
            from_fallback,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        let mut d = Dictionary::new();
        d.add("cable car", ArticleId::new(1), 1.0);
        d.add("banksy", ArticleId::new(2), 0.9);
        d.add("mercury", ArticleId::new(3), 0.7); // planet
        d.add("mercury", ArticleId::new(4), 0.3); // element
        d.add("street art", ArticleId::new(5), 1.0);
        d
    }

    #[test]
    fn links_exact_mentions() {
        let l = EntityLinker::new(dict(), LinkerConfig::default());
        let links = l.link("graffiti street art on walls");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].article, ArticleId::new(5));
        assert!(!links[0].from_fallback);
    }

    #[test]
    fn ambiguity_resolved_by_commonness() {
        let l = EntityLinker::new(dict(), LinkerConfig::default());
        let links = l.link("mercury probe");
        assert_eq!(links[0].article, ArticleId::new(3), "planet is more common");
    }

    #[test]
    fn fallback_matches_partial_titles() {
        let l = EntityLinker::new(dict(), LinkerConfig::default());
        let links = l.link("historic cable photos");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].article, ArticleId::new(1));
        assert!(links[0].from_fallback);
    }

    #[test]
    fn fallback_not_used_when_primary_hits() {
        let l = EntityLinker::new(dict(), LinkerConfig::default());
        // "banksy" hits directly; "cable" alone must not fall back.
        let links = l.link("banksy cable");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].article, ArticleId::new(2));
    }

    #[test]
    fn fallback_can_be_disabled() {
        let cfg = LinkerConfig {
            fallback: false,
            ..LinkerConfig::default()
        };
        let l = EntityLinker::new(dict(), cfg);
        assert!(l.link("historic cable photos").is_empty());
    }

    #[test]
    fn min_commonness_filters_senses() {
        let cfg = LinkerConfig {
            min_commonness: 0.8,
            ..LinkerConfig::default()
        };
        let l = EntityLinker::new(dict(), cfg);
        assert!(l.link("mercury rising").is_empty());
        assert_eq!(l.link("banksy works").len(), 1);
    }

    #[test]
    fn full_miss_noise_drops_everything() {
        let cfg = LinkerConfig {
            noise: NoiseModel {
                p_miss: 1.0,
                p_mislink: 0.0,
            },
            ..LinkerConfig::default()
        };
        let l = EntityLinker::new(dict(), cfg);
        assert!(l.link("banksy street art").is_empty());
    }

    #[test]
    fn full_mislink_noise_picks_second_sense() {
        let cfg = LinkerConfig {
            noise: NoiseModel {
                p_miss: 0.0,
                p_mislink: 1.0,
            },
            ..LinkerConfig::default()
        };
        let l = EntityLinker::new(dict(), cfg);
        let links = l.link("mercury");
        assert_eq!(links[0].article, ArticleId::new(4), "second sense chosen");
        // Unambiguous mentions are unaffected (no second sense to swap to).
        let links = l.link("banksy");
        assert_eq!(links[0].article, ArticleId::new(2));
    }

    #[test]
    fn linking_is_deterministic() {
        let cfg = LinkerConfig {
            noise: NoiseModel {
                p_miss: 0.3,
                p_mislink: 0.3,
            },
            ..LinkerConfig::default()
        };
        let l = EntityLinker::new(dict(), cfg);
        let a = l.link("mercury banksy street art");
        let b = l.link("mercury banksy street art");
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_mentions_dedup_by_article() {
        let l = EntityLinker::new(dict(), LinkerConfig::default());
        let links = l.link("banksy and banksy again");
        assert_eq!(links.len(), 1);
    }
}
