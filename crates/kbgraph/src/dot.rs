//! Graphviz DOT export of KB neighbourhoods.
//!
//! Query graphs are the paper's central visual (Figures 3 and 4 are
//! exactly such drawings: square category nodes, round article nodes,
//! black query nodes, white expansion nodes). This module renders any
//! node subset of a [`KbGraph`] in that style.

use std::fmt::Write as _;

use rustc_hash::FxHashSet;

use crate::graph::KbGraph;
use crate::ids::Node;

/// Rendering roles, matching the paper's Figure 3 conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Black round node: a query node.
    Query,
    /// White round node: an expansion node.
    Expansion,
    /// Plain node: anything else included for context.
    Context,
}

/// Renders the induced subgraph over `nodes` as Graphviz DOT. Articles
/// are drawn as ellipses (filled black for query nodes), categories as
/// boxes; every KB edge between included nodes appears once, with
/// reciprocal article links drawn as a single double-arrow edge.
pub fn to_dot(graph: &KbGraph, nodes: &[(Node, NodeRole)], name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(s, "  rankdir=LR;");
    let included: FxHashSet<Node> = nodes.iter().map(|&(n, _)| n).collect();
    // Nodes.
    for &(node, role) in nodes {
        let (label, shape) = match node {
            Node::Article(a) => (graph.article_title(a).to_owned(), "ellipse"),
            Node::Category(c) => (graph.category_title(c).to_owned(), "box"),
        };
        let style = match role {
            NodeRole::Query => ", style=filled, fillcolor=black, fontcolor=white",
            NodeRole::Expansion => ", style=filled, fillcolor=white",
            NodeRole::Context => ", style=dashed",
        };
        let _ = writeln!(
            s,
            "  \"{}\" [label=\"{}\", shape={shape}{style}];",
            id_of(node),
            escape(&label)
        );
    }
    // Edges (each unordered pair once).
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let num_articles = graph.num_articles() as u32;
    for &(x, _) in nodes {
        for &(y, _) in nodes {
            let (px, py) = (x.packed(num_articles), y.packed(num_articles));
            if px >= py || !included.contains(&y) {
                continue;
            }
            if !seen.insert((px, py)) {
                continue;
            }
            let mult = graph.edge_multiplicity(x, y);
            if mult == 0 {
                continue;
            }
            let attrs = if mult == 2 { " [dir=both]" } else { " [dir=none]" };
            let _ = writeln!(s, "  \"{}\" -> \"{}\"{attrs};", id_of(x), id_of(y));
        }
    }
    s.push_str("}\n");
    s
}

fn id_of(node: Node) -> String {
    match node {
        Node::Article(a) => format!("a{}", a.raw()),
        Node::Category(c) => format!("c{}", c.raw()),
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn figure_4a() -> (KbGraph, Vec<(Node, NodeRole)>) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        let g = b.build();
        let nodes = vec![
            (Node::Article(cable), NodeRole::Query),
            (Node::Article(funi), NodeRole::Expansion),
            (Node::Category(rail), NodeRole::Context),
        ];
        (g, nodes)
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let (g, nodes) = figure_4a();
        let dot = to_dot(&g, &nodes, "fig4a");
        assert!(dot.starts_with("digraph \"fig4a\""));
        assert!(dot.contains("label=\"cable car\""));
        assert!(dot.contains("label=\"funicular\""));
        assert!(dot.contains("shape=box"), "category drawn as a box");
        assert!(dot.contains("fillcolor=black"), "query node filled black");
        // The reciprocal pair renders as one double-arrow edge.
        assert_eq!(dot.matches("dir=both").count(), 1);
        // Two membership edges.
        assert_eq!(dot.matches("dir=none").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn excluded_nodes_produce_no_edges() {
        let (g, mut nodes) = figure_4a();
        nodes.pop(); // drop the category
        let dot = to_dot(&g, &nodes, "partial");
        assert!(!dot.contains("rail transport"));
        assert_eq!(dot.matches("dir=none").count(), 0);
        assert_eq!(dot.matches("dir=both").count(), 1);
    }

    #[test]
    fn labels_are_escaped() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("he said \"hi\"");
        let g = b.build();
        let dot = to_dot(&g, &[(Node::Article(a), NodeRole::Query)], "q");
        assert!(dot.contains("he said \\\"hi\\\""));
    }

    #[test]
    fn empty_selection_is_valid_dot() {
        let (g, _) = figure_4a();
        let dot = to_dot(&g, &[], "empty");
        assert!(dot.contains("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
