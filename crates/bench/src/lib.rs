//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artifact | Harness entry point |
//! |---|---|
//! | Figure 2a–c (cycle analysis) | [`figures::figure2`] |
//! | Table 1 (ImageCLEF configurations + upper bound) | [`tables::table1`] |
//! | Figure 5 (% improvement of SQE_T / SQE_T&S / SQE_S) | [`figures::figure5`] |
//! | Table 2a–c (three datasets, manual/automatic linking) | [`tables::table2`] |
//! | Figure 6a–c (% improvement of SQE_C (M)/(A), QL_X) | [`figures::figure6`] |
//! | Table 3a–c (PRF and SQE_C/PRF) | [`tables::table3`] |
//! | Table 4 (query-graph construction times) | [`timing::table4`] |
//!
//! Beyond the paper's artifacts, [`serve_bench`] load-tests the
//! concurrent [`sqe::QueryService`] (`experiments serve-bench`, written
//! to `BENCH_serve.json`), [`load_bench`] drives the admission-controlled
//! serving path with open-loop load, deadlines and degraded modes
//! (`experiments load-bench`, written to `BENCH_load.json`),
//! [`ingest_bench`] measures throughput under
//! live ingestion across the static/ingest/merged regimes (`experiments
//! ingest-bench`, written to `BENCH_ingest.json`), and [`store_bench`]
//! measures the cold-start paths — regenerate vs JSON vs binary snapshot
//! (`experiments store-bench`, written to `BENCH_store.json`;
//! `experiments snapshot write|verify|info` manages the snapshot file
//! itself). The `experiments` binary drives everything; Criterion
//! benches live under `benches/`.

pub mod context;
pub mod export;
pub mod ingest_bench;
pub mod load_bench;
pub mod motif_search;
pub mod report;
pub mod runs;
pub mod serve_bench;
pub mod store_bench;
pub mod tables;
pub mod timing;

pub mod figures;

pub use context::ExperimentContext;
pub use runs::DatasetRunner;
