//! Automatic motif identification (the paper's future work, Section 6):
//! score every pattern in the motif space against the ground-truth
//! optimal query graphs and see the paper's hand-crafted motifs emerge.
//!
//! ```text
//! cargo run --release --example motif_learning
//! ```

use sqe::{learn_motifs, Example, Objective};
use synthwiki::{GroundTruth, TestBed, TestBedConfig};

fn main() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let dataset = bed.dataset("imageclef");
    let gt = GroundTruth::derive(&bed.kb, &bed.space, &dataset.queries);

    let examples: Vec<Example> = dataset
        .queries
        .iter()
        .map(|q| {
            let g = gt.graph(&q.id).expect("covered");
            Example {
                query_nodes: g.query_nodes.clone(),
                optimal: g.expansion_nodes.clone(),
            }
        })
        .collect();

    for objective in [Objective::Precision, Objective::F1, Objective::Recall] {
        println!("=== ranked by {objective:?} ===");
        println!(
            "{:<20}{:>10}{:>10}{:>8}{:>12}",
            "pattern", "precision", "recall", "F1", "avg feats"
        );
        for m in learn_motifs(&bed.kb.graph, &examples, objective).iter().take(5) {
            println!(
                "{:<20}{:>10.3}{:>10.3}{:>8.3}{:>12.2}",
                m.pattern.name(),
                m.precision,
                m.recall,
                m.f1,
                m.avg_expansions
            );
        }
        println!();
    }
    println!(
        "The paper's hand-crafted motifs are mutual+superset (triangular)\n\
         and mutual+adjacent (square): the precision objective should rank\n\
         a triangular-like pattern first (few, reliable features), the\n\
         recall objective a square-like one (broad coverage) — exactly the\n\
         small-top / large-top split of Section 4.1."
    );
}
