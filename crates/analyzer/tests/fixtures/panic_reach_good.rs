// Fixture: same helper as panic_reach_bad.rs, but the panic carries an
// invariant-naming expect, which the allowlist accepts.

pub fn lookup(xs: &[u32], i: usize) -> u32 {
    xs.get(i)
        .copied()
        .expect("invariant: caller resolved i against xs.len()")
}
