//! Section codecs: graph, inverted index, linker dictionary, metadata.
//!
//! Encoders walk the public read-only accessors of each structure and
//! emit the bulk little-endian layout of [`crate::buf`]. Decoders
//! rebuild through the structures' validating constructors
//! (`KbGraph::from_parts` + `validate_shape`,
//! `Index::from_raw_parts_audited`) and — because snapshot bytes are
//! untrusted even after checksums pass — run the full semantic audits
//! (`GraphAudit`, `IndexAudit`) unconditionally, not just in debug
//! builds. A snapshot section can therefore never hand the pipeline a
//! structure the auditors would reject.

use entitylink::{Dictionary, Sense};
use kbgraph::{ArticleId, Csr, KbGraph};
use searchlite::{Analyzer, Index, TermPostings};

use crate::buf::{Cursor, SectionBuf};
use crate::error::StoreError;
use crate::format::{SEC_DICT, SEC_GRAPH, SEC_META};

/// Snapshot-level metadata decoded from the META section.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — hand-serialized binary section
pub struct SnapshotMeta {
    /// Free-form writer identification.
    pub writer: String,
    /// Collection names, in index-section order.
    pub collections: Vec<String>,
}

/// Encodes the META section.
pub fn encode_meta(meta: &SnapshotMeta) -> Result<Vec<u8>, StoreError> {
    let mut b = SectionBuf::new();
    b.put_str(&meta.writer)?;
    b.put_str_list(&meta.collections)?;
    Ok(b.into_bytes())
}

/// Decodes the META section.
pub fn decode_meta(payload: &[u8]) -> Result<SnapshotMeta, StoreError> {
    let mut c = Cursor::new(payload, SEC_META);
    let writer = c.get_str("meta.writer")?;
    let collections = c.get_str_list("meta.collections")?;
    c.finish()?;
    Ok(SnapshotMeta {
        writer,
        collections,
    })
}

fn put_csr(b: &mut SectionBuf, csr: &Csr) -> Result<(), StoreError> {
    b.put_u32_slice(csr.offsets())?;
    b.put_u32_slice(csr.targets())
}

fn get_csr_parts(c: &mut Cursor<'_>, what: &'static str) -> Result<(Vec<u32>, Vec<u32>), StoreError> {
    let offsets = c.get_u32_vec(what)?;
    let targets = c.get_u32_vec(what)?;
    Ok((offsets, targets))
}

/// Encodes the GRAPH section: both title tables, then the six CSRs in
/// `KbGraph::from_parts` order.
pub fn encode_graph(graph: &KbGraph) -> Result<Vec<u8>, StoreError> {
    let mut b = SectionBuf::new();
    b.put_str_list(graph.article_titles())?;
    b.put_str_list(graph.category_titles())?;
    put_csr(&mut b, graph.article_links())?;
    put_csr(&mut b, graph.article_links_rev())?;
    put_csr(&mut b, graph.memberships())?;
    put_csr(&mut b, graph.members())?;
    put_csr(&mut b, graph.subcategories())?;
    put_csr(&mut b, graph.subcats_rev())?;
    Ok(b.into_bytes())
}

/// Decodes the GRAPH section, shape-validates the CSRs, and runs the
/// full `GraphAudit` on the result before releasing it.
pub fn decode_graph(payload: &[u8]) -> Result<KbGraph, StoreError> {
    let mut c = Cursor::new(payload, SEC_GRAPH);
    let article_titles = c.get_str_list("graph.article_titles")?;
    let category_titles = c.get_str_list("graph.category_titles")?;
    // The raw->Csr step happens here, in the same function as the
    // GraphAudit below, so `must-audit-after-mutation` sees the audit
    // covering every reassembled CSR.
    let read_csr = |c: &mut Cursor<'_>, what: &'static str| -> Result<Csr, StoreError> {
        let (offsets, targets) = get_csr_parts(c, what)?;
        Ok(Csr::from_raw_parts(offsets, targets))
    };
    let article_links = read_csr(&mut c, "graph.article_links")?;
    let article_links_rev = read_csr(&mut c, "graph.article_links_rev")?;
    let memberships = read_csr(&mut c, "graph.memberships")?;
    let members = read_csr(&mut c, "graph.members")?;
    let subcategories = read_csr(&mut c, "graph.subcategories")?;
    let subcats_rev = read_csr(&mut c, "graph.subcats_rev")?;
    c.finish()?;
    let graph = KbGraph::from_parts(
        article_titles,
        category_titles,
        article_links,
        article_links_rev,
        memberships,
        members,
        subcategories,
        subcats_rev,
    );
    graph.validate_shape()?;
    let audit = kbgraph::audit::GraphAudit::run(&graph);
    if !audit.is_clean() {
        return Err(StoreError::AuditRejected {
            what: "graph".to_owned(),
            report: audit.report(),
        });
    }
    Ok(graph)
}

/// Encodes one inverted index (one per collection, section id
/// `SEC_INDEX_BASE + i`).
pub fn encode_index(index: &Index) -> Result<Vec<u8>, StoreError> {
    let mut b = SectionBuf::new();
    b.put_u32(u32::from(index.analyzer().stemming));
    b.put_u32(u32::from(index.analyzer().stopwords));
    b.put_str_list(index.terms())?;
    b.put_str_list(index.external_ids())?;
    b.put_u32_slice(index.doc_lens())?;
    b.put_u64(index.collection_len());
    b.put_u64_slice(index.coll_tfs())?;
    b.put_u32_slice(index.fwd_offsets())?;
    b.put_u32_slice(index.fwd_terms())?;
    b.put_u32_slice(index.fwd_tfs())?;
    b.put_len(index.all_postings().len())?;
    for p in index.all_postings() {
        b.put_u32_slice(p.docs())?;
        b.put_u32_slice(p.tfs())?;
        b.put_u32_slice(p.pos_offsets())?;
        b.put_u32_slice(p.positions_flat())?;
    }
    Ok(b.into_bytes())
}

/// Decodes one inverted index through `Index::from_raw_parts_audited`,
/// which rebuilds the term dictionary and runs the full `IndexAudit` in
/// one pass; `section` tags errors, `name` tags audit reports.
pub fn decode_index(payload: &[u8], section: u32, name: &str) -> Result<Index, StoreError> {
    let mut c = Cursor::new(payload, section);
    let stemming = c.get_u32("index.analyzer.stemming")?;
    let stopwords = c.get_u32("index.analyzer.stopwords")?;
    if stemming > 1 || stopwords > 1 {
        return Err(StoreError::Malformed {
            section,
            detail: format!("analyzer flags out of range: {stemming}/{stopwords}"),
        });
    }
    let analyzer = Analyzer {
        stemming: stemming == 1,
        stopwords: stopwords == 1,
    };
    let terms = c.get_str_list("index.terms")?;
    let external_ids = c.get_str_list("index.external_ids")?;
    let doc_lens = c.get_u32_vec("index.doc_lens")?;
    let collection_len = c.get_u64("index.collection_len")?;
    let coll_tf = c.get_u64_vec("index.coll_tf")?;
    let fwd_offsets = c.get_u32_vec("index.fwd_offsets")?;
    let fwd_terms = c.get_u32_vec("index.fwd_terms")?;
    let fwd_tfs = c.get_u32_vec("index.fwd_tfs")?;
    let num_postings = c.get_u32("index.postings.len")? as usize;
    if num_postings != terms.len() {
        return Err(StoreError::Malformed {
            section,
            detail: format!(
                "postings count {num_postings} disagrees with {} terms",
                terms.len()
            ),
        });
    }
    let mut postings = Vec::with_capacity(num_postings);
    for _ in 0..num_postings {
        let docs = c.get_u32_vec("index.postings.docs")?;
        let tfs = c.get_u32_vec("index.postings.tfs")?;
        let pos_offsets = c.get_u32_vec("index.postings.pos_offsets")?;
        let positions = c.get_u32_vec("index.postings.positions")?;
        postings.push(TermPostings::from_raw_parts(docs, tfs, pos_offsets, positions));
    }
    c.finish()?;
    // Single-pass validation: `from_raw_parts_audited` runs the full
    // IndexAudit (a superset of the shape checks) while constructing.
    Index::from_raw_parts_audited(
        analyzer,
        terms,
        postings,
        external_ids,
        doc_lens,
        collection_len,
        coll_tf,
        fwd_offsets,
        fwd_terms,
        fwd_tfs,
    )
    .map_err(|audit| StoreError::AuditRejected {
        what: format!("index `{name}`"),
        report: audit.report(),
    })
}

/// Encodes the entity-linker dictionary as `(normalized key, senses)`
/// entries in key order.
pub fn encode_dict(dict: &Dictionary) -> Result<Vec<u8>, StoreError> {
    let mut b = SectionBuf::new();
    b.put_len(dict.len())?;
    for (key, senses) in dict.iter_entries() {
        b.put_str(key)?;
        b.put_len(senses.len())?;
        for s in senses {
            b.put_u32(s.article.raw());
            b.put_f64(s.commonness);
        }
    }
    Ok(b.into_bytes())
}

/// Decodes the dictionary, rejecting out-of-bounds article ids,
/// non-finite commonness and keys that are not normalization fixpoints
/// (which would silently change lookup behaviour after a round-trip).
pub fn decode_dict(payload: &[u8], num_articles: usize) -> Result<Dictionary, StoreError> {
    let mut c = Cursor::new(payload, SEC_DICT);
    let num_entries = c.get_u32("dict.len")? as usize;
    let probe = Dictionary::new();
    let mut entries: Vec<(String, Vec<Sense>)> = Vec::new();
    for _ in 0..num_entries {
        let key = c.get_str("dict.key")?;
        if probe.normalize(&key) != key {
            return Err(StoreError::Malformed {
                section: SEC_DICT,
                detail: format!("dictionary key `{key}` is not in normalized form"),
            });
        }
        let num_senses = c.get_u32("dict.senses.len")? as usize;
        let mut senses = Vec::with_capacity(num_senses.min(c.remaining() / 12 + 1));
        for _ in 0..num_senses {
            let article = c.get_u32("dict.sense.article")?;
            if article as usize >= num_articles {
                return Err(StoreError::Malformed {
                    section: SEC_DICT,
                    detail: format!(
                        "sense references article {article} outside the {num_articles}-article graph"
                    ),
                });
            }
            let commonness = c.get_finite_f64("dict.sense.commonness")?;
            senses.push(Sense {
                article: ArticleId::new(article),
                commonness,
            });
        }
        entries.push((key, senses));
    }
    c.finish()?;
    let dict = Dictionary::from_entries(entries.iter().map(|(k, v)| (k.as_str(), v.clone())));
    if dict.len() != num_entries {
        return Err(StoreError::Malformed {
            section: SEC_DICT,
            detail: format!(
                "{num_entries} persisted keys collapsed to {} dictionary entries",
                dict.len()
            ),
        });
    }
    Ok(dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;
    use searchlite::IndexBuilder;

    fn toy_graph() -> KbGraph {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        b.add_article_link(cable, funi);
        b.add_article_link(funi, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        b.build()
    }

    #[test]
    fn graph_roundtrip() {
        let g = toy_graph();
        let bytes = encode_graph(&g).unwrap();
        let restored = decode_graph(&bytes).unwrap();
        assert_eq!(restored.num_articles(), g.num_articles());
        assert_eq!(restored.num_categories(), g.num_categories());
        assert_eq!(restored.article_titles(), g.article_titles());
        assert_eq!(
            restored.article_links().targets(),
            g.article_links().targets()
        );
    }

    #[test]
    fn graph_decode_rejects_truncation() {
        let g = toy_graph();
        let bytes = encode_graph(&g).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn index_roundtrip_preserves_retrieval() {
        use searchlite::ql::{self, QlParams};
        use searchlite::structured::Query;
        let mut b = IndexBuilder::new(Analyzer::english());
        b.add_document("d0", "a cable car climbing the hillside")
            .expect("unique test ids");
        b.add_document("d1", "street art on the walls").expect("unique test ids");
        let idx = b.build();
        let bytes = encode_index(&idx).unwrap();
        let restored = decode_index(&bytes, 0x100, "c0").unwrap();
        let q = Query::parse_text("cable car", &Analyzer::english());
        assert_eq!(
            ql::rank(&searchlite::Searcher::from_index(idx), &q, QlParams::default(), 10),
            ql::rank(&searchlite::Searcher::from_index(restored), &q, QlParams::default(), 10)
        );
    }

    #[test]
    fn dict_roundtrip_and_bounds() {
        let mut d = Dictionary::new();
        d.add("Cable Car", ArticleId::new(0), 0.9);
        d.add("jaguar", ArticleId::new(1), 0.4);
        let bytes = encode_dict(&d).unwrap();
        let restored = decode_dict(&bytes, 2).unwrap();
        assert_eq!(restored.len(), d.len());
        assert_eq!(
            restored.lookup("cable car").map(<[Sense]>::len),
            d.lookup("cable car").map(<[Sense]>::len)
        );
        // The same bytes against a smaller graph must be rejected.
        assert!(matches!(
            decode_dict(&bytes, 1),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn meta_roundtrip() {
        let m = SnapshotMeta {
            writer: "sqe-store test".to_owned(),
            collections: vec!["imageclef".to_owned(), "chic".to_owned()],
        };
        let bytes = encode_meta(&m).unwrap();
        assert_eq!(decode_meta(&bytes).unwrap(), m);
    }
}
