//! Byte-stability wall for snapshot formats v1 and v2.
//!
//! Guarantees beyond the unit tests:
//!
//! 1. **Canonical encoding at scale** — on a full synthetic test bed,
//!    encoding is a pure function of the contents: encoding twice, and
//!    re-encoding the *decoded* world, both reproduce the original
//!    bytes exactly. This is what makes snapshot files diffable and
//!    content-addressable.
//! 2. **Format freeze** — a fixed toy world must hash to a pinned
//!    golden checksum, per format version. If a pin fails, the on-disk
//!    format changed: bump [`sqe_store::format::VERSION`], keep a
//!    decode path for every older version, and only then update the
//!    constant.
//! 3. **v1 fixture compatibility** — the committed binary snapshot in
//!    `tests/golden/toy_v1.snap` (written by the v1 encoder at the time
//!    v2 was introduced) must keep loading and verifying forever.

use std::path::PathBuf;

use entitylink::Dictionary;
use kbgraph::{GraphBuilder, KbGraph};
use searchlite::{Analyzer, Index, IndexBuilder};
use sqe_store::crc32::crc32;
use sqe_store::{encode_snapshot, encode_snapshot_v1, Snapshot, SnapshotContents};
use synthwiki::{TestBed, TestBedConfig};

fn encode(graph: &KbGraph, named: &[(&str, &[&Index])], dict: &Dictionary) -> Vec<u8> {
    encode_snapshot(&SnapshotContents {
        graph,
        collections: named,
        dict,
    })
    .expect("world encodes")
}

fn toy_world() -> (KbGraph, Index, Dictionary) {
    let mut b = GraphBuilder::new();
    let cable = b.add_article("cable car");
    let funi = b.add_article("funicular");
    let rail = b.add_category("rail transport");
    b.add_article_link(cable, funi);
    b.add_article_link(funi, cable);
    b.add_membership(cable, rail);
    b.add_membership(funi, rail);
    let graph = b.build();
    let mut ib = IndexBuilder::new(Analyzer::english());
    ib.add_document("d0", "the cable car climbs").expect("unique test ids");
    ib.add_document("d1", "a funicular railway").expect("unique test ids");
    let index = ib.build();
    let mut dict = Dictionary::new();
    dict.add("cable car", cable, 1.0);
    dict.add("funicular", funi, 1.0);
    (graph, index, dict)
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/toy_v1.snap")
}

#[test]
fn testbed_snapshot_bytes_are_stable_and_canonical() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes: Vec<Index> = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text).expect("test bed ids are unique");
            }
            b.build()
        })
        .collect();
    let segment_slices: Vec<Vec<&Index>> = indexes.iter().map(|i| vec![i]).collect();
    let named: Vec<(&str, &[&Index])> = bed
        .collections
        .iter()
        .map(|c| c.name.as_str())
        .zip(segment_slices.iter().map(Vec::as_slice))
        .collect();
    let mut dict = Dictionary::new();
    dict.extend(bed.kb.linker_entries(&bed.space));

    let first = encode(&bed.kb.graph, &named, &dict);
    let second = encode(&bed.kb.graph, &named, &dict);
    assert_eq!(first, second, "encoding the same world twice must be byte-identical");

    // Decode, then re-encode the decoded structures: still the same
    // bytes, so decode is lossless and encode is canonical (independent
    // of whether the inputs were freshly built or themselves loaded).
    let (graph, owned, dict2) = Snapshot::from_bytes(&first)
        .expect("snapshot decodes")
        .into_parts();
    let reslices: Vec<Vec<&Index>> =
        owned.iter().map(|(_, segs)| segs.iter().collect()).collect();
    let renamed: Vec<(&str, &[&Index])> = owned
        .iter()
        .map(|(n, _)| n.as_str())
        .zip(reslices.iter().map(Vec::as_slice))
        .collect();
    let third = encode(&graph, &renamed, &dict2);
    assert_eq!(
        first, third,
        "re-encoding the decoded world must reproduce the original bytes"
    );
}

#[test]
fn golden_toy_snapshot_checksums_are_pinned() {
    let (graph, index, dict) = toy_world();
    let segments = [&index];
    let named = [("toy", &segments[..])];
    let contents = SnapshotContents {
        graph: &graph,
        collections: &named,
        dict: &dict,
    };

    // Pinned v1 bytes: the frozen encoder must keep reproducing the
    // exact image that shipped as format v1.
    let v1 = encode_snapshot_v1(&contents).expect("v1 encodes");
    assert_eq!(
        crc32(&v1),
        0xEF43_C309,
        "v1 encoder drifted from the pinned golden bytes ({} bytes, crc {:#010x})",
        v1.len(),
        crc32(&v1)
    );

    // Pinned v2 bytes. A mismatch means the byte layout drifted — that
    // is a format change, not a test to update casually.
    let v2 = encode_snapshot(&contents).expect("v2 encodes");
    assert_eq!(
        crc32(&v2),
        0xC8A3_BC95,
        "v2 snapshot format drifted from the pinned golden bytes \
         ({} bytes, crc {:#010x})",
        v2.len(),
        crc32(&v2)
    );
}

#[test]
fn committed_v1_fixture_still_loads_and_verifies() {
    let bytes = std::fs::read(fixture_path())
        .expect("tests/golden/toy_v1.snap is committed; regenerate with the ignored test");
    let info = Snapshot::verify(&bytes).expect("v1 fixture verifies");
    assert_eq!(info.version, sqe_store::format::VERSION_V1);
    assert_eq!(info.collections, vec!["toy"]);
    assert_eq!(info.segment_counts, vec![1]);

    let snap = Snapshot::from_bytes(&bytes).expect("v1 fixture decodes");
    assert_eq!(snap.graph().num_articles(), 2);
    assert_eq!(snap.index("toy").expect("single segment").num_docs(), 2);
    let searcher = snap.searcher("toy").expect("searcher over the v1 segment");
    assert_eq!(searcher.num_docs(), 2);

    // The fixture is exactly what today's frozen v1 encoder produces,
    // so the generator below can always recreate it.
    let (graph, index, dict) = toy_world();
    let segments = [&index];
    let named = [("toy", &segments[..])];
    let fresh = encode_snapshot_v1(&SnapshotContents {
        graph: &graph,
        collections: &named,
        dict: &dict,
    })
    .expect("v1 encodes");
    assert_eq!(bytes, fresh, "fixture bytes must match the frozen v1 encoder");
}

/// Regenerates the committed fixture. Run explicitly with
/// `cargo test -p sqe-store --test golden_snapshot -- --ignored`.
#[test]
#[ignore = "writes the committed fixture; run manually when (re)creating it"]
fn generate_v1_golden_fixture() {
    let (graph, index, dict) = toy_world();
    let segments = [&index];
    let named = [("toy", &segments[..])];
    let bytes = encode_snapshot_v1(&SnapshotContents {
        graph: &graph,
        collections: &named,
        dict: &dict,
    })
    .expect("v1 encodes");
    std::fs::create_dir_all(fixture_path().parent().expect("fixture dir")).expect("mkdir");
    std::fs::write(fixture_path(), &bytes).expect("write fixture");
}
