//! Summary-coverage guarantee, mirroring `cfg_roundtrip.rs` one layer
//! up: every workspace function gets an effect summary (the summary
//! vector is index-aligned with the call graph), the SCC decomposition
//! is a bottom-up partition, and the summaries of known service
//! functions say what the source plainly does — `seal` may block,
//! `live_lock` is a guard accessor for `live`.

use std::path::Path;

use analyzer::callgraph::CallGraph;
use analyzer::summaries::Summaries;
use analyzer::symbols::WorkspaceModel;

fn workspace() -> (WorkspaceModel, CallGraph) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = analyzer::workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 50, "workspace walk found too few files");
    let mut parsed = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path).expect("read workspace file");
        parsed.push(analyzer::parser::parse_file(&rel, &src));
    }
    let model = WorkspaceModel::new(parsed);
    let graph = CallGraph::build(&model);
    (model, graph)
}

#[test]
fn every_workspace_fn_gets_a_summary() {
    let (model, graph) = workspace();
    let sums = Summaries::build(&model, &graph);
    assert_eq!(
        sums.fns.len(),
        graph.nodes.len(),
        "summaries must be index-aligned with the call graph"
    );
    assert!(
        sums.fns.len() > 300,
        "suspiciously few functions summarized: {}",
        sums.fns.len()
    );
    for (i, (s, n)) in sums.fns.iter().zip(graph.nodes.iter()).enumerate() {
        assert_eq!(s.qual, n.qual, "summary {i} misaligned with its node");
        assert_eq!(s.file, n.file, "summary {i} misaligned with its node");
    }
}

#[test]
fn sccs_partition_the_graph_bottom_up() {
    let (_, graph) = workspace();
    let comps = graph.sccs();
    let n = graph.nodes.len();
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            assert_eq!(comp_of[v], usize::MAX, "node {v} in two components");
            comp_of[v] = ci;
        }
    }
    assert!(
        comp_of.iter().all(|&c| c != usize::MAX),
        "some node missing from the SCC partition"
    );
    // Components are emitted callees-first: every edge points into the
    // same or an earlier component.
    for v in 0..n {
        for &w in graph.callees(v) {
            assert!(
                comp_of[w] <= comp_of[v],
                "edge {} -> {} breaks bottom-up component order",
                graph.nodes[v].qual,
                graph.nodes[w].qual
            );
        }
    }
}

#[test]
fn service_summaries_match_the_source() {
    let (model, graph) = workspace();
    let sums = Summaries::build(&model, &graph);

    let seal = graph
        .find("QueryService::seal")
        .into_iter()
        .next()
        .expect("QueryService::seal exists");
    assert!(
        sums.fns[seal].blocks.is_some(),
        "seal builds segments — it must summarize as may-block"
    );

    let live_lock = graph
        .find("QueryService::live_lock")
        .into_iter()
        .next()
        .expect("QueryService::live_lock exists");
    assert_eq!(
        sums.fns[live_lock].returns_guard_of.as_deref(),
        Some("live"),
        "live_lock is the audited accessor for the live lock"
    );
    assert!(
        sums.fns[live_lock].acquires.contains("live"),
        "live_lock acquires live: {:?}",
        sums.fns[live_lock].acquires
    );
}
