/root/repo/target/debug/deps/experiments-b6dcb764c3a5b820.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-b6dcb764c3a5b820: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
