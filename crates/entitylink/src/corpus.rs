//! Corpus annotation and anchor-statistics commonness.
//!
//! Dexter's commonness prior is estimated from anchor text: how often a
//! surface form refers to each article across a corpus. This module
//! provides the same loop for any document collection: spot dictionary
//! mentions in every document, optionally resolve them against known
//! document topics, and re-estimate per-sense commonness from the counts.

use kbgraph::ArticleId;
use rustc_hash::FxHashMap;

use crate::dictionary::Dictionary;
use crate::spotter::{self, Mention};

/// Mentions found in one document.
#[derive(Debug, Clone)]
pub struct DocAnnotations {
    /// Index of the document in the input order.
    pub doc: usize,
    /// The spotted mentions.
    pub mentions: Vec<Mention>,
}

/// Spots dictionary mentions in every document of a corpus.
pub fn annotate_corpus<'a, I>(dict: &Dictionary, docs: I) -> Vec<DocAnnotations>
where
    I: IntoIterator<Item = &'a str>,
{
    let analyzer = dict.analyzer().clone();
    docs.into_iter()
        .enumerate()
        .map(|(doc, text)| {
            let tokens = analyzer.analyze(text);
            DocAnnotations {
                doc,
                mentions: spotter::spot(dict, &tokens),
            }
        })
        .collect()
}

/// Accumulates `(surface, article)` reference counts — the raw material
/// of the commonness prior. Counts come from *labelled* examples: a
/// document known to be about `article` that contains `surface`.
#[derive(Debug, Default)]
pub struct AnchorStats {
    counts: FxHashMap<(String, ArticleId), u64>,
    surface_totals: FxHashMap<String, u64>,
}

impl AnchorStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        AnchorStats::default()
    }

    /// Records that `surface` referred to `article` once. The surface
    /// must already be normalized (see [`Dictionary::normalize`]).
    pub fn record(&mut self, surface: &str, article: ArticleId) {
        *self
            .counts
            .entry((surface.to_owned(), article))
            .or_insert(0) += 1;
        *self.surface_totals.entry(surface.to_owned()).or_insert(0) += 1;
    }

    /// Number of recorded references of a surface form.
    pub fn surface_count(&self, surface: &str) -> u64 {
        self.surface_totals.get(surface).copied().unwrap_or(0)
    }

    /// The estimated commonness `P(article | surface)`, or `None` when
    /// the surface was never observed.
    pub fn commonness(&self, surface: &str, article: ArticleId) -> Option<f64> {
        let total = *self.surface_totals.get(surface)?;
        if total == 0 {
            return None;
        }
        let c = self
            .counts
            .get(&(surface.to_owned(), article))
            .copied()
            .unwrap_or(0);
        Some(c as f64 / total as f64)
    }

    /// Re-estimates the commonness of every observed `(surface, sense)`
    /// pair in the dictionary. Unobserved pairs keep their prior (Dexter
    /// behaves the same: the anchor prior only covers attested usage).
    pub fn apply_to(&self, dict: &mut Dictionary) {
        for (surface, article) in self.counts.keys() {
            if let Some(commonness) = self.commonness(surface, *article) {
                dict.set_commonness(surface, *article, commonness);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        let mut d = Dictionary::new();
        d.add("mercury", ArticleId::new(1), 0.5); // planet
        d.add("mercury", ArticleId::new(2), 0.5); // element
        d.add("cable car", ArticleId::new(3), 1.0);
        d
    }

    #[test]
    fn annotate_finds_mentions_per_document() {
        let d = dict();
        let docs = ["mercury in the sky", "a cable car ride", "nothing here"];
        let ann = annotate_corpus(&d, docs);
        assert_eq!(ann.len(), 3);
        assert_eq!(ann[0].mentions.len(), 1);
        assert_eq!(ann[1].mentions[0].surface, "cable car");
        assert!(ann[2].mentions.is_empty());
    }

    #[test]
    fn anchor_stats_estimate_commonness() {
        let mut stats = AnchorStats::new();
        for _ in 0..3 {
            stats.record("mercury", ArticleId::new(1));
        }
        stats.record("mercury", ArticleId::new(2));
        assert_eq!(stats.surface_count("mercury"), 4);
        assert!((stats.commonness("mercury", ArticleId::new(1)).unwrap() - 0.75).abs() < 1e-12);
        assert!((stats.commonness("mercury", ArticleId::new(2)).unwrap() - 0.25).abs() < 1e-12);
        assert!(stats.commonness("venus", ArticleId::new(1)).is_none());
    }

    #[test]
    fn applying_stats_reorders_senses() {
        let mut d = dict();
        let mut stats = AnchorStats::new();
        // The element dominates usage in this corpus.
        for _ in 0..9 {
            stats.record("mercury", ArticleId::new(2));
        }
        stats.record("mercury", ArticleId::new(1));
        stats.apply_to(&mut d);
        let senses = d.lookup("mercury").unwrap();
        assert_eq!(senses[0].article, ArticleId::new(2), "element now first");
        assert!((senses[0].commonness - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unobserved_senses_keep_prior() {
        let mut d = dict();
        let stats = AnchorStats::new();
        stats.apply_to(&mut d);
        let senses = d.lookup("cable car").unwrap();
        assert!((senses[0].commonness - 1.0).abs() < 1e-12);
    }
}
