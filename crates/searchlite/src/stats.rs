//! Collection statistics.
//!
//! Summaries of an indexed collection: the numbers papers report in their
//! experimental-setup sections (document counts, lengths, vocabulary),
//! plus the document-frequency distribution useful for diagnosing
//! vocabulary mismatch in the synthetic collections.

use serde::{Deserialize, Serialize};

use crate::index::{DocId, TermId};
use crate::searcher::Searcher;

/// Aggregate statistics of one index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of documents.
    pub num_docs: usize,
    /// Number of distinct terms.
    pub vocabulary: usize,
    /// Total analyzed tokens.
    pub collection_len: u64,
    /// Mean document length in tokens.
    pub avg_doc_len: f64,
    /// Shortest / longest document lengths.
    pub min_doc_len: u32,
    /// Longest document length.
    pub max_doc_len: u32,
    /// Highest document frequency of any term.
    pub max_doc_freq: usize,
    /// Number of terms occurring in exactly one document (hapax-like).
    pub singleton_terms: usize,
}

impl CollectionStats {
    /// Computes statistics over a (possibly segmented) corpus view.
    pub fn compute(index: &Searcher) -> CollectionStats {
        let num_docs = index.num_docs();
        let vocabulary = index.num_terms();
        let collection_len = index.collection_len();
        let mut min_doc_len = u32::MAX;
        let mut max_doc_len = 0u32;
        for d in 0..num_docs as u32 {
            let l = index.doc_len(DocId(d));
            min_doc_len = min_doc_len.min(l);
            max_doc_len = max_doc_len.max(l);
        }
        if num_docs == 0 {
            min_doc_len = 0;
        }
        let mut max_doc_freq = 0usize;
        let mut singleton_terms = 0usize;
        for t in 0..vocabulary as u32 {
            let df = index.doc_freq(TermId(t));
            max_doc_freq = max_doc_freq.max(df);
            if df == 1 {
                singleton_terms += 1;
            }
        }
        CollectionStats {
            num_docs,
            vocabulary,
            collection_len,
            avg_doc_len: if num_docs == 0 {
                0.0
            } else {
                collection_len as f64 / num_docs as f64
            },
            min_doc_len,
            max_doc_len,
            max_doc_freq,
            singleton_terms,
        }
    }
}

/// The document-frequency histogram: `hist[b]` counts terms whose df
/// falls into bucket `b` of geometric buckets 1, 2, 3–4, 5–8, 9–16, …
pub fn doc_freq_histogram(index: &Searcher) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for t in 0..index.num_terms() as u32 {
        let df = index.doc_freq(TermId(t));
        if df == 0 {
            continue;
        }
        let bucket = (usize::BITS - df.leading_zeros()) as usize - 1;
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;

    fn idx() -> Searcher {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d0", "a a b c").expect("unique test ids");
        b.add_document("d1", "a d").expect("unique test ids");
        b.add_document("d2", "a b e f g").expect("unique test ids");
        Searcher::from_index(b.build())
    }

    #[test]
    fn aggregate_statistics() {
        let s = CollectionStats::compute(&idx());
        assert_eq!(s.num_docs, 3);
        assert_eq!(s.vocabulary, 7);
        assert_eq!(s.collection_len, 11);
        assert!((s.avg_doc_len - 11.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min_doc_len, 2);
        assert_eq!(s.max_doc_len, 5);
        assert_eq!(s.max_doc_freq, 3, "'a' is everywhere");
        // c, d, e, f, g occur in exactly one document.
        assert_eq!(s.singleton_terms, 5);
    }

    #[test]
    fn empty_index_statistics() {
        let b = IndexBuilder::new(Analyzer::plain());
        let s = CollectionStats::compute(&Searcher::from_index(b.build()));
        assert_eq!(s.num_docs, 0);
        assert_eq!(s.avg_doc_len, 0.0);
        assert_eq!(s.min_doc_len, 0);
    }

    #[test]
    fn histogram_buckets_are_geometric() {
        let h = doc_freq_histogram(&idx());
        // df=1 terms (5 of them) → bucket 0; df=2 ('b') → bucket 1;
        // df=3 ('a') → bucket 1 (3–4 range starts at bucket 1? df=3 →
        // floor(log2(3)) = 1).
        assert_eq!(h[0], 5);
        assert_eq!(h[1], 2);
        assert_eq!(h.iter().sum::<usize>(), 7);
    }
}
