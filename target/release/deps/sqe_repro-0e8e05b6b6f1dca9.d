/root/repo/target/release/deps/sqe_repro-0e8e05b6b6f1dca9.d: src/lib.rs

/root/repo/target/release/deps/libsqe_repro-0e8e05b6b6f1dca9.rlib: src/lib.rs

/root/repo/target/release/deps/libsqe_repro-0e8e05b6b6f1dca9.rmeta: src/lib.rs

src/lib.rs:
