//! Vendored stand-in for the `rustc-hash` crate (offline build).
//!
//! Implements the same Fx (Firefox/rustc) multiply-and-rotate hash the real
//! crate uses, with the same public names: [`FxHasher`], [`FxHashMap`],
//! [`FxHashSet`], [`FxBuildHasher`]. The algorithm matches rustc-hash 1.x
//! (word-at-a-time multiply-rotate), which is all the workspace relies on —
//! no code depends on exact hash values, only on speed and determinism
//! within a process.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher (the Fx algorithm).
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`BuildHasherDefault`] specialised to [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn deterministic_within_process() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"cable cars");
        h2.write(b"cable cars");
        assert_eq!(h1.finish(), h2.finish());
    }
}
