//! Vendored stand-in for `criterion` (offline build).
//!
//! Implements the macro + builder surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` — with a simple calibrated wall-clock loop instead of
//! criterion's statistical machinery. Each benchmark prints its median
//! per-iteration time; there are no plots and no saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation (accepted, reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibrate: grow the iteration count until one batch takes ≥ 20 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    let unit = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    println!("bench: {name:<50} {unit}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's throughput (informational only here).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("bench: group {} throughput {t:?}", self.name);
        self
    }

    /// Overrides the sample count (ignored: the vendored loop calibrates).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides measurement time (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one top-level benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions (criterion's macro shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(128));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
