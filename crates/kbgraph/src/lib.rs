//! Knowledge-base graph substrate for Structural Query Expansion.
//!
//! A knowledge base (KB) is modelled after Wikipedia's link structure, as
//! described in Section 2 of *Structural Query Expansion via motifs from
//! Wikipedia* (ExploreDB'17): the graph has two node types — **articles**
//! and **categories** — and four directed edge sets:
//!
//! * article → article hyperlinks,
//! * article → category membership links,
//! * category → article links (maintained as the reverse of membership),
//! * category → category links (sub-category → parent).
//!
//! The crate provides:
//!
//! * [`GraphBuilder`] — an incremental builder that deduplicates nodes and
//!   edges and produces an immutable [`KbGraph`],
//! * [`KbGraph`] — a compressed sparse row (CSR) representation with
//!   forward and reverse adjacency and `O(log d)` membership queries,
//! * [`cycles`] — anchored enumeration of the short mixed cycles
//!   (length 3, 4 and 5) whose statistics drive the paper's Section 2.1
//!   structural analysis (Figure 2),
//! * [`stats`] — whole-graph statistics mirroring the corpus numbers the
//!   paper reports for the July 2012 Wikipedia dump.
//!
//! # Example
//!
//! ```
//! use kbgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let cable_car = b.add_article("cable car");
//! let funicular = b.add_article("funicular");
//! let transport = b.add_category("rail transport");
//! b.add_article_link(cable_car, funicular);
//! b.add_article_link(funicular, cable_car);
//! b.add_membership(cable_car, transport);
//! b.add_membership(funicular, transport);
//! let g = b.build();
//!
//! assert!(g.doubly_linked(cable_car, funicular));
//! assert_eq!(g.categories_of(cable_car), &[transport.index() as u32]);
//! ```

#[cfg(feature = "validate")]
pub mod audit;
pub mod builder;
pub mod csr;
pub mod cycles;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod paths;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{Csr, CsrShapeError};
pub use cycles::{Cycle, CycleFinder, CycleLimits};
pub use graph::{GraphDecodeError, GraphShapeError, KbGraph};
pub use ids::{ArticleId, CategoryId, Node};
pub use paths::{bfs_distances, distance, distance_histogram};
pub use stats::GraphStats;
