//! Paired Student t-test.
//!
//! The paper marks improvements with † when a paired t-test over per-query
//! precision values rejects the null hypothesis at `p < 0.05`. The
//! two-sided p-value is computed exactly from the t-distribution CDF,
//! itself evaluated through the regularized incomplete beta function
//! (continued-fraction form, Numerical-Recipes style Lentz algorithm).

/// Outcome of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic `mean(d) / (sd(d)/√n)`.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences (`treatment − baseline`).
    pub mean_diff: f64,
}

impl TTestResult {
    /// True when the treatment is significantly *better* than the baseline
    /// at the given level (two-sided test and positive mean difference —
    /// the paper's † marker).
    pub fn significant_improvement(&self, alpha: f64) -> bool {
        self.mean_diff > 0.0 && self.p_value < alpha
    }
}

/// Runs a paired t-test of `treatment` against `baseline` (equal-length
/// per-query scores). Returns `None` for fewer than two pairs or when all
/// differences are exactly zero (degenerate variance: no evidence either
/// way).
pub fn paired_t_test(treatment: &[f64], baseline: &[f64]) -> Option<TTestResult> {
    assert_eq!(
        treatment.len(),
        baseline.len(),
        "paired test needs equal-length samples"
    );
    let n = treatment.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = treatment
        .iter()
        .zip(baseline.iter())
        .map(|(&a, &b)| a - b)
        .collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    if var == 0.0 {
        return None;
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let df = n - 1;
    let p_value = two_sided_p(t, df as f64);
    Some(TTestResult {
        t,
        df,
        p_value,
        mean_diff: mean,
    })
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `p = I_x(df/2, 1/2)` with `x = df/(df + t²)`.
pub fn two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (5.0, 1.0, 0.9)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_cdf_reference_values() {
        // Two-sided p for t=2.086, df=20 is ~0.05 (critical value table).
        let p = two_sided_p(2.086, 20.0);
        assert!((p - 0.05).abs() < 1e-3, "p={p}");
        // t=0 ⇒ p=1.
        assert!((two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-12);
        // Large |t| ⇒ tiny p.
        assert!(two_sided_p(10.0, 30.0) < 1e-9);
        // Symmetric in t.
        assert!((two_sided_p(1.5, 12.0) - two_sided_p(-1.5, 12.0)).abs() < 1e-12);
    }

    #[test]
    fn t_critical_value_df49() {
        // The paper's datasets have 50 queries ⇒ df = 49; the two-sided
        // 5% critical value is ≈ 2.0096.
        let p_below = two_sided_p(2.0, 49.0);
        let p_above = two_sided_p(2.02, 49.0);
        assert!(p_below > 0.05 && p_above < 0.05, "{p_below} {p_above}");
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        let base = vec![0.1, 0.2, 0.15, 0.3, 0.25, 0.1, 0.2, 0.18];
        let treat: Vec<f64> = base.iter().map(|x| x + 0.1).collect();
        let r = paired_t_test(&treat, &base).unwrap();
        assert!(r.significant_improvement(0.05));
        assert!(r.mean_diff > 0.0);
    }

    #[test]
    fn paired_test_no_difference_is_degenerate() {
        let base = vec![0.1, 0.2, 0.3];
        assert!(paired_t_test(&base, &base).is_none());
    }

    #[test]
    fn paired_test_needs_two_pairs() {
        assert!(paired_t_test(&[1.0], &[0.5]).is_none());
    }

    #[test]
    fn paired_test_known_t_statistic() {
        // d = [1, 2, 3]: mean 2, sd 1, se = 1/√3, t = 2√3 ≈ 3.4641.
        let base = vec![0.0, 0.0, 0.0];
        let treat = vec![1.0, 2.0, 3.0];
        let r = paired_t_test(&treat, &base).unwrap();
        assert!((r.t - 2.0 * 3.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.df, 2);
        // Reference: p ≈ 0.0742 (two-sided, df=2).
        assert!((r.p_value - 0.0742).abs() < 5e-4, "p={}", r.p_value);
    }

    #[test]
    fn worse_treatment_not_significant_improvement() {
        let base = vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        let treat = vec![0.1, 0.2, 0.3, 0.2, 0.1, 0.3];
        let r = paired_t_test(&treat, &base).unwrap();
        assert!(!r.significant_improvement(0.05));
        assert!(r.p_value < 0.05, "difference is significant but negative");
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }
}
