//! `experiments serve-bench`: a load generator for the concurrent query
//! service.
//!
//! Replays every dataset's full query set (optionally repeated) through
//! [`QueryService::run_batch_sqe_c`] — the paper's headline SQE_C
//! configuration, which exercises all four timed stages — at several
//! worker counts, in two phases per service:
//!
//! * **cold**: a fresh service, empty expansion cache;
//! * **warm**: the same service replayed after [`QueryService::reset_metrics`],
//!   so the cache is fully populated but the latency histograms and cache
//!   counters contain only warm traffic.
//!
//! The report is written to `BENCH_serve.json` (see
//! [`write_report`]); CI runs the `--smoke` variant on the small test bed
//! and archives the file as an artifact so serving regressions show up in
//! review, not in production.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use kbgraph::ArticleId;
use searchlite::{Analyzer, ShardRouter};
use serde::Serialize;
use sqe::{MetricsSnapshot, MonotonicClock, QueryService, ServeConfig, ShardedService, STAGE_NAMES};

use crate::context::ExperimentContext;

/// Load-generator options.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Worker counts to sweep.
    pub thread_counts: Vec<usize>,
    /// How many times the query set is replayed within one phase (larger
    /// = more load per measurement, smoother percentiles).
    pub repeat: usize,
    /// Expansion-cache capacity handed to every service.
    pub cache_capacity: usize,
    /// Shards to scatter over; 1 = the single-shard [`QueryService`].
    pub shards: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            thread_counts: vec![1, 2, 4, 8],
            repeat: 4,
            cache_capacity: 4096,
            shards: 1,
        }
    }
}

impl ServeBenchOptions {
    /// The CI smoke preset: minimal load, two worker counts.
    pub fn smoke() -> Self {
        ServeBenchOptions {
            thread_counts: vec![1, 2],
            repeat: 1,
            cache_capacity: 4096,
            shards: 1,
        }
    }
}

/// One stage's latency statistics in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct StageStats {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub stage: String,
    /// Recorded durations.
    pub count: u64,
    /// Exact mean latency (ms).
    pub mean_ms: f64,
    /// Median upper bound (ms, power-of-two bucket resolution).
    pub p50_ms: f64,
    /// 95th percentile upper bound (ms).
    pub p95_ms: f64,
    /// 99th percentile upper bound (ms).
    pub p99_ms: f64,
    /// 99.9th percentile upper bound (ms).
    pub p999_ms: f64,
}

/// One measured phase (cold or warm) of one (dataset, workers) cell.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// `"cold"` or `"warm"`.
    pub phase: String,
    /// Queries served in this phase.
    pub queries: u64,
    /// Wall-clock time of the whole replay (ms).
    pub wall_ms: f64,
    /// Queries per second over the replay wall time.
    pub throughput_qps: f64,
    /// Expansion-cache hit rate within this phase.
    pub cache_hit_rate: f64,
    /// Cumulative cache evictions at the end of the phase.
    pub cache_evictions: u64,
    /// Σ in-service execution time / wall time — the concurrency the
    /// replay actually achieved, as opposed to the offered worker
    /// count. Comparable with `BENCH_load.json`'s field of the same
    /// name.
    pub achieved_concurrency: f64,
    /// Per-stage latency statistics.
    pub stages: Vec<StageStats>,
}

/// Cold + warm phases of one dataset at one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Dataset name.
    pub dataset: String,
    /// Worker threads used by the batch executor.
    pub workers: usize,
    /// Shards the service scattered over (1 = monolithic).
    pub shards: usize,
    /// Queries per replay (query set × repeat).
    pub load: usize,
    /// The cold then warm phase.
    pub phases: Vec<PhaseReport>,
}

/// The whole serve-bench report (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Replays per phase.
    pub repeat: usize,
    /// Swept worker counts.
    pub thread_counts: Vec<usize>,
    /// Shards per service.
    pub shards: usize,
    /// One cell per (dataset, workers) pair.
    pub cells: Vec<CellReport>,
}

fn nanos_to_ms(n: u64) -> f64 {
    n as f64 / 1e6
}

/// Converts a post-replay metrics snapshot into a [`PhaseReport`].
fn phase_from_snapshot(snap: &MetricsSnapshot, wall_ms: f64, phase: &str) -> PhaseReport {
    let stages = STAGE_NAMES
        .iter()
        .zip(snap.stages.iter())
        .map(|(name, h)| StageStats {
            stage: (*name).to_owned(),
            count: h.count,
            mean_ms: h.mean_nanos / 1e6,
            p50_ms: nanos_to_ms(h.p50_nanos),
            p95_ms: nanos_to_ms(h.p95_nanos),
            p99_ms: nanos_to_ms(h.p99_nanos),
            p999_ms: nanos_to_ms(h.p999_nanos),
        })
        .collect();
    let busy_nanos = snap.stages.last().map(|h| h.sum_nanos).unwrap_or(0);
    PhaseReport {
        phase: phase.to_owned(),
        queries: snap.queries,
        wall_ms,
        throughput_qps: if wall_ms > 0.0 {
            snap.queries as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        cache_hit_rate: snap.cache_hit_rate,
        cache_evictions: snap.cache_evictions,
        achieved_concurrency: if wall_ms > 0.0 {
            busy_nanos as f64 / (wall_ms * 1e6)
        } else {
            0.0
        },
        stages,
    }
}

/// Runs one replay of `load` and converts the service metrics into a
/// [`PhaseReport`].
fn run_phase(
    service: &QueryService<'_>,
    load: &[(String, Vec<ArticleId>)],
    phase: &str,
) -> PhaseReport {
    let start = Instant::now();
    let out = service.run_batch_sqe_c(load);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(out.len());
    phase_from_snapshot(&service.metrics_snapshot(), wall_ms, phase)
}

/// Same replay against the scatter-gather service.
fn run_sharded_phase(
    service: &ShardedService<'_>,
    load: &[(String, Vec<ArticleId>)],
    phase: &str,
) -> PhaseReport {
    let start = Instant::now();
    let out = service.run_batch_sqe_c(load);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(out.len());
    phase_from_snapshot(&service.metrics_snapshot(), wall_ms, phase)
}

/// Builds a sharded service over one collection of the test bed by
/// routing every document through the ingestion path and sealing once
/// at the end.
fn build_sharded_service<'a>(
    ctx: &'a ExperimentContext,
    collection: usize,
    shards: usize,
    serve_cfg: ServeConfig,
) -> ShardedService<'a> {
    let service = ShardedService::with_clock(
        &ctx.bed.kb.graph,
        Analyzer::english(),
        ShardRouter::new(shards),
        ctx.sqe_config,
        serve_cfg,
        Arc::new(MonotonicClock::new()),
    );
    if let Some(coll) = ctx.bed.collections.get(collection) {
        for doc in &coll.docs {
            service
                .add_document(&doc.id, &doc.text)
                .expect("invariant: test-bed document ids are unique");
        }
    }
    service.seal_all();
    service
}

/// Runs the load generator over the three datasets and the configured
/// worker counts.
pub fn run_serve_bench(
    ctx: &ExperimentContext,
    context_name: &str,
    opts: &ServeBenchOptions,
) -> ServeBenchReport {
    let mut cells = Vec::new();
    for dataset in ["imageclef", "chic2012", "chic2013"] {
        let runner = ctx.runner(dataset);
        let ds = runner.dataset();
        let index = &ctx.indexes[ds.collection];
        let mut load: Vec<(String, Vec<ArticleId>)> = Vec::new();
        for _ in 0..opts.repeat.max(1) {
            for q in &ds.queries {
                load.push((q.text.clone(), runner.manual_nodes(q)));
            }
        }
        for &workers in &opts.thread_counts {
            let serve_cfg = ServeConfig {
                workers,
                cache_capacity: opts.cache_capacity,
                ..ServeConfig::default()
            };
            let (cold, warm) = if opts.shards > 1 {
                let service =
                    build_sharded_service(ctx, ds.collection, opts.shards, serve_cfg);
                service.reset_metrics(); // drop the ingest-phase counters
                let cold = run_sharded_phase(&service, &load, "cold");
                service.reset_metrics();
                (cold, run_sharded_phase(&service, &load, "warm"))
            } else {
                let service = QueryService::with_clock(
                    &ctx.bed.kb.graph,
                    index,
                    ctx.sqe_config,
                    serve_cfg,
                    Arc::new(MonotonicClock::new()),
                );
                let cold = run_phase(&service, &load, "cold");
                // Same service: the cache stays hot, the metrics start over.
                service.reset_metrics();
                (cold, run_phase(&service, &load, "warm"))
            };
            cells.push(CellReport {
                dataset: dataset.to_owned(),
                workers,
                shards: opts.shards.max(1),
                load: load.len(),
                phases: vec![cold, warm],
            });
        }
    }
    ServeBenchReport {
        context: context_name.to_owned(),
        repeat: opts.repeat,
        thread_counts: opts.thread_counts.clone(),
        shards: opts.shards.max(1),
        cells,
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &ServeBenchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_serve.json` (or any other path).
pub fn write_report(report: &ServeBenchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary table of the report.
pub fn format_report(report: &ServeBenchReport) -> String {
    let mut s = format!(
        "=== serve-bench ({} bed, x{} replay, {} shard(s)) ===\n{:<11}{:>4}{:>7}  {:>9}{:>11}{:>7}{:>10}{:>10}\n",
        report.context,
        report.repeat,
        report.shards,
        "dataset",
        "thr",
        "phase",
        "qps",
        "hit rate",
        "evict",
        "p95 ms",
        "p99 ms"
    );
    for cell in &report.cells {
        for phase in &cell.phases {
            let total = phase
                .stages
                .iter()
                .find(|st| st.stage == "total")
                .cloned()
                .unwrap_or(StageStats {
                    stage: "total".to_owned(),
                    count: 0,
                    mean_ms: 0.0,
                    p50_ms: 0.0,
                    p95_ms: 0.0,
                    p99_ms: 0.0,
                    p999_ms: 0.0,
                });
            s.push_str(&format!(
                "{:<11}{:>4}{:>7}  {:>9.1}{:>10.1}%{:>7}{:>10.3}{:>10.3}\n",
                cell.dataset,
                cell.workers,
                phase.phase,
                phase.throughput_qps,
                phase.cache_hit_rate * 100.0,
                phase.cache_evictions,
                total.p95_ms,
                total.p99_ms
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_reports_every_cell_and_phase() {
        let ctx = ExperimentContext::small();
        let opts = ServeBenchOptions::smoke();
        let report = run_serve_bench(&ctx, "small", &opts);
        assert_eq!(report.cells.len(), 3 * opts.thread_counts.len());
        for cell in &report.cells {
            assert_eq!(cell.phases.len(), 2);
            let cold = &cell.phases[0];
            let warm = &cell.phases[1];
            assert_eq!(cold.phase, "cold");
            assert_eq!(warm.phase, "warm");
            assert_eq!(cold.queries as usize, cell.load);
            assert_eq!(warm.queries as usize, cell.load);
            // Every SQE_C query is three expansion lookups; with a single
            // replay the cold phase misses every distinct (nodes, config)
            // key at least once, while the warm phase never misses.
            assert!(cold.cache_hit_rate < 1.0);
            assert!(
                (warm.cache_hit_rate - 1.0).abs() < 1e-12,
                "warm phase must be fully cached, got {}",
                warm.cache_hit_rate
            );
            // Stage histograms saw real (monotonic-clock) traffic.
            for phase in &cell.phases {
                let by_name = |n: &str| {
                    phase
                        .stages
                        .iter()
                        .find(|st| st.stage == n)
                        .cloned()
                        .expect("stage present")
                };
                assert_eq!(by_name("total").count as usize, cell.load);
                assert_eq!(by_name("expand").count as usize, 3 * cell.load);
                assert_eq!(by_name("combine").count as usize, cell.load);
                assert!(by_name("total").p99_ms >= by_name("total").p50_ms);
                assert!(by_name("total").p999_ms >= by_name("total").p99_ms);
                assert!(phase.throughput_qps > 0.0);
                // The replay keeps the pool busy: achieved concurrency
                // is positive and can't exceed the offered worker count
                // by more than measurement noise.
                assert!(phase.achieved_concurrency > 0.0);
            }
        }
        // The JSON round-trips through the vendored serde.
        let json = report_json(&report);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("report JSON parses");
        let warm_phase = parsed
            .get("cells")
            .and_then(|c| c.as_array())
            .and_then(|c| c.first())
            .and_then(|c| c.get("phases"))
            .and_then(|p| p.as_array())
            .and_then(|p| p.get(1))
            .and_then(|p| p.get("phase"))
            .and_then(|p| p.as_str());
        assert_eq!(warm_phase, Some("warm"));
        let table = format_report(&report);
        assert!(table.contains("imageclef"));
        assert!(table.contains("warm"));
    }

    #[test]
    fn sharded_smoke_bench_matches_cell_shape_and_warms_cache() {
        let ctx = ExperimentContext::small();
        let mut opts = ServeBenchOptions::smoke();
        opts.thread_counts = vec![2];
        opts.shards = 3;
        let report = run_serve_bench(&ctx, "small", &opts);
        assert_eq!(report.shards, 3);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.shards, 3);
            assert_eq!(cell.phases.len(), 2);
            let cold = &cell.phases[0];
            let warm = &cell.phases[1];
            assert_eq!(cold.queries as usize, cell.load);
            assert_eq!(warm.queries as usize, cell.load);
            assert!(cold.cache_hit_rate < 1.0);
            assert!(
                (warm.cache_hit_rate - 1.0).abs() < 1e-12,
                "warm sharded phase must be fully cached, got {}",
                warm.cache_hit_rate
            );
            for phase in &cell.phases {
                let total = phase
                    .stages
                    .iter()
                    .find(|st| st.stage == "total")
                    .expect("total stage present");
                assert_eq!(total.count as usize, cell.load);
                assert!(phase.throughput_qps > 0.0);
            }
        }
    }
}
