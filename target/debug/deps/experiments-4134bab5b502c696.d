/root/repo/target/debug/deps/experiments-4134bab5b502c696.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-4134bab5b502c696: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
