//! `sqe-lint`: CLI driver for the workspace lint engine and the
//! structural invariant auditor.
//!
//! Subcommands:
//!
//! - `check [--root DIR] [--format human|json|github] [--config FILE]
//!   [--baseline FILE] [--out FILE]` — lint every workspace `.rs` file;
//!   exit 1 on any error-severity finding not covered by the baseline,
//!   and on stale baseline entries (the baseline may only shrink). With
//!   no `--baseline`, `<root>/sqe-lint.baseline.json` is used when it
//!   exists. `--out` additionally writes all findings as JSON (for CI
//!   artifacts) regardless of `--format`. `--format github` prints
//!   `::warning`/`::error` workflow commands so findings surface as
//!   inline PR annotations.
//! - `baseline [--root DIR] [--config FILE] [--baseline FILE]` —
//!   snapshot the current error-severity findings to the baseline file
//!   (default `<root>/sqe-lint.baseline.json`).
//! - `bench [--root DIR] [--reference FILE] [--out FILE]` — time a full
//!   workspace lint and compare against the committed reference wall
//!   time (default `<root>/sqe-lint.bench.json`); exit 1 when the run
//!   regresses more than 2× over the reference. `--out` writes a
//!   timings artifact for CI.
//! - `rules` — print the rule table (token/ast/flow/inter layers) with
//!   default severities.
//! - `explain <rule>` — print one rule's full story: what it checks, why
//!   it exists in this codebase, the bad/good fixture pair that pins its
//!   behaviour, and the suppression syntax. Exit 2 on an unknown rule
//!   (with the list of valid names).
//! - `audit [--selftest]` — build a synthetic testbed, run the graph and
//!   index auditors, and (with `--selftest`) seed known corruption
//!   classes to prove each is still detected. Exit 1 on any violation or
//!   missed seeding.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analyzer::baseline::{self, Baseline};
use analyzer::{
    diagnostics_to_json, lint_workspace, rules, workspace_files, Diagnostic, LintConfig, Severity,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("explain") => cmd_explain(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        _ => {
            eprintln!(
                "usage: sqe-lint <check [--root DIR] [--format human|json|github] [--config FILE] \
                 [--baseline FILE] [--out FILE] | baseline [--root DIR] [--baseline FILE] \
                 | bench [--root DIR] [--reference FILE] [--out FILE] \
                 | rules | explain <rule> | audit [--selftest]>"
            );
            ExitCode::from(2)
        }
    }
}

/// Looks up `--name value` or `--name=value`.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    args.iter().enumerate().find_map(|(i, a)| {
        if a == name {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix(&prefix).map(str::to_string)
        }
    })
}

/// The baseline file for this invocation: `--baseline FILE`, else the
/// root default. Returns `None` when the default does not exist.
fn baseline_path(args: &[String], root: &Path) -> Option<PathBuf> {
    match flag_value(args, "--baseline") {
        Some(p) => Some(PathBuf::from(p)),
        None => {
            let default = root.join("sqe-lint.baseline.json");
            default.is_file().then_some(default)
        }
    }
}

/// Lints the workspace with the configured severities. Shared by `check`
/// and `baseline`.
fn run_lint(args: &[String], root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = load_config(args, root)?;
    lint_workspace(root, &cfg).map_err(|e| format!("walking {}: {e}", root.display()))
}

/// Escapes a GitHub workflow-command *message* (data after `::`).
fn gh_escape(text: &str) -> String {
    text.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a GitHub workflow-command *property* (file=, line=): message
/// escapes plus the property delimiters.
fn gh_escape_prop(text: &str) -> String {
    gh_escape(text).replace(':', "%3A").replace(',', "%2C")
}

/// One finding as a GitHub annotation: `::warning file=…,line=…::msg`.
fn gh_annotation(d: &Diagnostic) -> String {
    let level = match d.severity {
        Severity::Error => "error",
        _ => "warning",
    };
    format!(
        "::{level} file={},line={}::[{}] {}",
        gh_escape_prop(&d.path),
        d.line,
        d.rule,
        gh_escape(&d.message)
    )
}

fn cmd_check(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or_else(|| ".".to_string()));
    let format = flag_value(args, "--format").unwrap_or_else(|| "human".to_string());
    let diags = match run_lint(args, &root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out_path) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(&out_path, diagnostics_to_json(&diags)) {
            eprintln!("sqe-lint: writing {out_path}: {e}");
            return ExitCode::from(2);
        }
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warns = diags.len() - errors;
    match format.as_str() {
        "json" => println!("{}", diagnostics_to_json(&diags)),
        "github" => {
            for d in &diags {
                println!("{}", gh_annotation(d));
            }
            println!("sqe-lint: {errors} error(s), {warns} warning(s)");
        }
        _ => {
            for d in &diags {
                println!("{d}");
            }
            println!("sqe-lint: {errors} error(s), {warns} warning(s)");
        }
    }

    // Ratchet against the baseline when one is present: only findings
    // beyond the snapshot fail, and snapshot entries that no longer occur
    // fail too (regenerate with `sqe-lint baseline` so it only shrinks).
    let failing = match baseline_path(args, &root) {
        Some(path) => {
            let base = match std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))
                .and_then(|t| Baseline::from_json(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("sqe-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let ratchet = base.compare(&diags);
            for d in &ratchet.new {
                println!("new (not in baseline): {d}");
            }
            for k in &ratchet.stale {
                println!(
                    "stale baseline entry (fixed — regenerate with `sqe-lint baseline`): {k}"
                );
                // A stale entry often means the finding *moved* (message
                // reword, file rename) rather than died: point at the
                // closest survivor so the fix is obvious.
                if let Some(d) = baseline::nearest_surviving(k, &diags) {
                    println!(
                        "  hint: nearest surviving finding is [{}] at {}:{} \
                         (see `sqe-lint explain {}`)",
                        d.rule, d.path, d.line, d.rule
                    );
                }
            }
            !ratchet.new.is_empty() || !ratchet.stale.is_empty()
        }
        None => errors > 0,
    };
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or_else(|| ".".to_string()));
    let diags = match run_lint(args, &root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let base = Baseline::from_diags(&diags);
    let path = flag_value(args, "--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("sqe-lint.baseline.json"));
    if let Err(e) = std::fs::write(&path, base.to_json()) {
        eprintln!("sqe-lint: writing {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "sqe-lint: baselined {} finding group(s) to {}",
        base.len(),
        path.display()
    );
    ExitCode::SUCCESS
}

/// Times a full workspace lint and gates it against the committed
/// reference wall time: a >2× regression fails. Wall-clock use is
/// deliberate and CI-only — the gate is coarse (2×) precisely because
/// absolute lint speed varies across runners; what it catches is the
/// analyzer accidentally going quadratic, not millisecond noise.
fn cmd_bench(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or_else(|| ".".to_string()));
    let cfg = match load_config(args, &root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sqe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let files = match workspace_files(&root) {
        Ok(f) => f.len(),
        Err(e) => {
            eprintln!("sqe-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let t0 = std::time::Instant::now();
    let diags = match lint_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqe-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let ref_path = flag_value(args, "--reference")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("sqe-lint.bench.json"));
    let reference_ms: Option<f64> = match std::fs::read_to_string(&ref_path) {
        Ok(text) => match serde_json::from_str::<serde_json::Value>(&text) {
            Ok(v) => v.get("lint_wall_ms").and_then(serde_json::Value::as_f64),
            Err(e) => {
                eprintln!("sqe-lint: parsing {}: {e}", ref_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => None,
    };

    let ratio = reference_ms.map(|r| if r > 0.0 { wall_ms / r } else { 0.0 });
    println!(
        "sqe-lint bench: {files} file(s), {} finding(s), {wall_ms:.1} ms wall",
        diags.len()
    );
    match (reference_ms, ratio) {
        (Some(r), Some(x)) => println!("sqe-lint bench: reference {r:.1} ms, ratio {x:.2}x"),
        _ => println!(
            "sqe-lint bench: no reference at {} — measuring only",
            ref_path.display()
        ),
    }

    if let Some(out_path) = flag_value(args, "--out") {
        let mut m = serde_json::Map::new();
        m.insert("files".into(), serde_json::Value::from(files as u64));
        m.insert("findings".into(), serde_json::Value::from(diags.len() as u64));
        m.insert("lint_wall_ms".into(), serde_json::Value::from(wall_ms));
        if let Some(r) = reference_ms {
            m.insert("reference_ms".into(), serde_json::Value::from(r));
        }
        if let Some(x) = ratio {
            m.insert("ratio".into(), serde_json::Value::from(x));
        }
        let text = serde_json::to_string_pretty(&serde_json::Value::Object(m))
            .expect("bench report serializes");
        if let Err(e) = std::fs::write(&out_path, text) {
            eprintln!("sqe-lint: writing {out_path}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(x) = ratio {
        if x > 2.0 {
            eprintln!("sqe-lint bench: FAIL — lint wall time regressed {x:.2}x over the reference");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn load_config(args: &[String], root: &Path) -> Result<LintConfig, String> {
    let path = match flag_value(args, "--config") {
        Some(p) => PathBuf::from(p),
        None => {
            let default = root.join("sqe-lint.json");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    LintConfig::from_json(&text)
}

fn cmd_rules() -> ExitCode {
    for (name, description, severity, layer) in rules::rule_table() {
        println!("{name:<28} {:<6} {layer:<6} {description}", severity.as_str());
    }
    ExitCode::SUCCESS
}

/// Prints one rule's full story: description, rationale, the fixture
/// pair pinning its behaviour, and how to suppress it.
fn cmd_explain(args: &[String]) -> ExitCode {
    let Some(name) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: sqe-lint explain <rule>");
        return ExitCode::from(2);
    };
    let Some(e) = rules::explanation(name) else {
        eprintln!("sqe-lint: unknown rule `{name}`; valid rules are:");
        for (n, ..) in rules::rule_table() {
            eprintln!("  {n}");
        }
        return ExitCode::from(2);
    };
    println!("{} ({} layer, default severity {})", e.name, e.layer, e.severity.as_str());
    println!();
    println!("  {}", e.summary);
    println!();
    println!("why:");
    for line in wrap(e.rationale, 72) {
        println!("  {line}");
    }
    if let Some(stem) = e.fixture {
        println!();
        println!("fixtures (pinned by the rule tests):");
        println!("  bad:  crates/analyzer/tests/fixtures/{stem}_bad.rs");
        println!("  good: crates/analyzer/tests/fixtures/{stem}_good.rs");
    }
    println!();
    println!("suppress (requires a written justification in review):");
    println!("  // lint:allow({})       — this line or the line below", e.name);
    println!("  // lint:allow-file({})  — whole file, in the header comment", e.name);
    ExitCode::SUCCESS
}

/// Greedy word-wrap for terminal output.
fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let selftest = args.iter().any(|a| a == "--selftest");

    // Audit a realistic synthetic testbed: the generated knowledge graph
    // and an index built over its first document collection.
    let bed = synthwiki::TestBed::generate(&synthwiki::TestBedConfig::small());
    let graph_audit = kbgraph::audit::GraphAudit::run(&bed.kb.graph);
    let mut builder = searchlite::IndexBuilder::new(searchlite::Analyzer::english());
    if let Some(coll) = bed.collections.first() {
        for doc in &coll.docs {
            builder
                .add_document(&doc.id, &doc.text)
                .expect("generated testbed ids are unique");
        }
    }
    let index = builder.build();
    let index_audit = searchlite::audit::IndexAudit::run(&index);

    println!(
        "graph audit: {} articles, {} categories — {}",
        bed.kb.graph.num_articles(),
        bed.kb.graph.num_categories(),
        if graph_audit.is_clean() { "clean" } else { "VIOLATIONS" }
    );
    if !graph_audit.is_clean() {
        println!("{}", graph_audit.report());
    }
    println!(
        "index audit: {} docs — {}",
        index.num_docs(),
        if index_audit.is_clean() { "clean" } else { "VIOLATIONS" }
    );
    if !index_audit.is_clean() {
        println!("{}", index_audit.report());
    }

    let mut failed = !graph_audit.is_clean() || !index_audit.is_clean();
    if selftest {
        for (name, detected) in selftest_results() {
            println!(
                "selftest {:<24} {}",
                name,
                if detected { "detected" } else { "MISSED" }
            );
            failed |= !detected;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Seeds one corruption per known mutation class into freshly built
/// structures and reports whether the auditor flags it with the expected
/// violation kind.
fn selftest_results() -> Vec<(&'static str, bool)> {
    use kbgraph::audit::{GraphAudit, GraphViolation};
    use kbgraph::{Csr, GraphBuilder, KbGraph};
    use searchlite::audit::{IndexAudit, IndexViolation};
    use searchlite::{Analyzer, Index, IndexBuilder};

    // A small hand-built graph with every structure populated: mutual
    // article links, memberships, and a one-edge category DAG.
    fn fresh_graph() -> KbGraph {
        let mut b = GraphBuilder::new();
        let a0 = b.add_article("A0");
        let a1 = b.add_article("A1");
        let a2 = b.add_article("A2");
        let a3 = b.add_article("A3");
        let c0 = b.add_category("C0");
        let c1 = b.add_category("C1");
        b.add_mutual_link(a0, a1);
        b.add_mutual_link(a0, a2);
        b.add_article_link(a2, a3);
        b.add_membership(a0, c0);
        b.add_membership(a1, c1);
        b.add_subcategory(c1, c0);
        b.build()
    }

    /// Reassembles `g` with one CSR slot replaced.
    /// Slots: 0 article_links, 1 article_links_rev, 4 subcats, 5 subcats_rev.
    fn with_part(g: &KbGraph, slot: usize, part: Csr) -> KbGraph {
        let titles_a: Vec<String> = g.articles().map(|a| g.article_title(a).to_string()).collect();
        let titles_c: Vec<String> = g
            .categories()
            .map(|c| g.category_title(c).to_string())
            .collect();
        let mut parts = [
            g.article_links().clone(),
            g.article_links_rev().clone(),
            g.memberships().clone(),
            g.members().clone(),
            g.subcategories().clone(),
            g.subcats_rev().clone(),
        ];
        parts[slot] = part;
        let [al, alr, mem, mbr, sc, scr] = parts;
        // Deliberately unaudited: this helper manufactures *corrupt*
        // graphs so the selftest can prove the auditor flags them; every
        // caller runs GraphAudit on the result.
        // lint:allow(must-audit-after-mutation)
        KbGraph::from_parts(titles_a, titles_c, al, alr, mem, mbr, sc, scr)
    }

    fn graph_case(
        slot: usize,
        mutate: impl Fn(&mut Vec<u32>, &mut Vec<u32>),
        expect: impl Fn(&GraphViolation) -> bool,
    ) -> bool {
        let g = fresh_graph();
        let src = match slot {
            0 => g.article_links(),
            1 => g.article_links_rev(),
            4 => g.subcategories(),
            _ => g.subcats_rev(),
        };
        let mut offsets = src.offsets().to_vec();
        let mut targets = src.targets().to_vec();
        mutate(&mut offsets, &mut targets);
        let bad = with_part(&g, slot, Csr::from_raw_parts(offsets, targets));
        GraphAudit::run(&bad).violations().iter().any(expect)
    }

    fn fresh_index() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d0", "alpha beta alpha").expect("unique id");
        b.add_document("d1", "beta gamma").expect("unique id");
        b.build()
    }

    let mut results = Vec::new();

    results.push((
        "graph:swapped-offsets",
        graph_case(
            0,
            |offsets, _| offsets.swap(1, 2),
            |v| {
                matches!(
                    v,
                    GraphViolation::OffsetsNotMonotonic { .. } | GraphViolation::OffsetsShape { .. }
                )
            },
        ),
    ));
    results.push((
        "graph:oob-target",
        graph_case(
            0,
            |_, targets| targets[0] = 99,
            |v| matches!(v, GraphViolation::TargetOutOfBounds { .. }),
        ),
    ));
    results.push((
        "graph:unsorted-row",
        graph_case(
            0,
            |_, targets| targets.swap(0, 1), // row 0 holds [a1, a2]
            |v| matches!(v, GraphViolation::RowNotStrictlySorted { .. }),
        ),
    ));
    results.push(("graph:dropped-reciprocal", {
        let g = fresh_graph();
        let rows = g.num_articles();
        let empty = Csr::from_raw_parts(vec![0; rows + 1], Vec::new());
        let bad = with_part(&g, 1, empty);
        GraphAudit::run(&bad)
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::MissingReciprocal { .. }))
    }));
    results.push(("graph:category-cycle", {
        let g = fresh_graph();
        // Two categories referencing each other: c0 → c1 and c1 → c0.
        let cycle = Csr::from_raw_parts(vec![0, 1, 2], vec![1, 0]);
        let bad = with_part(&with_part(&g, 4, cycle.clone()), 5, cycle);
        GraphAudit::run(&bad)
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::CategoryCycle { .. }))
    }));

    fn index_case(
        mutate: impl Fn(searchlite::index::IndexRawMut<'_>),
        expect: impl Fn(&IndexViolation) -> bool,
    ) -> bool {
        let mut idx = fresh_index();
        mutate(idx.raw_mut());
        IndexAudit::run(&idx).violations().iter().any(expect)
    }

    results.push((
        "index:unsorted-postings",
        index_case(
            |raw| {
                for p in raw.postings.iter_mut() {
                    let pr = p.raw_mut();
                    if pr.docs.len() >= 2 {
                        pr.docs.swap(0, 1);
                        break;
                    }
                }
            },
            |v| matches!(v, IndexViolation::PostingsNotSorted { .. }),
        ),
    ));
    results.push((
        "index:wrong-doc-len",
        index_case(
            |raw| raw.doc_lens[0] += 5,
            |v| matches!(v, IndexViolation::DocLenMismatch { .. }),
        ),
    ));
    results.push((
        "index:wrong-collection-len",
        index_case(
            |raw| *raw.collection_len += 7,
            |v| matches!(v, IndexViolation::CollectionLenMismatch { .. }),
        ),
    ));
    results.push((
        "index:duplicate-external-id",
        index_case(
            |raw| raw.external_ids[1] = raw.external_ids[0].clone(),
            |v| matches!(v, IndexViolation::DuplicateExternalId { .. }),
        ),
    ));

    results
}
