// Fixture: a guard handed down a forwarding chain into a field store.
// `pin` only passes the guard to `stash`; `stash` only forwards it to
// `keep`; `keep` is the one that parks it in a field. No single
// function both acquires and stores — the escape is visible only when
// parameter-escape summaries flow back up the chain.

fn keep(&mut self, g: MutexGuard<'static, Vec<u32>>) {
    self.parked = Some(g);
}

fn stash(&mut self, g: MutexGuard<'static, Vec<u32>>) {
    self.keep(g);
}

pub fn pin(&mut self) {
    let g = self.live.lock().unwrap();
    self.stash(g);
}
