// Fixture: the two accepted shapes — checked conversion with an
// invariant-naming expect, and a cast dominated by an assert on the
// same operand.

pub fn seal(offsets: &mut Vec<u32>, targets: &[u32]) {
    offsets.push(u32::try_from(targets.len()).expect("invariant: edge count fits in u32"));
}

pub fn encode(pos: usize) -> u32 {
    assert!(pos <= u32::MAX as usize);
    pos as u32
}
