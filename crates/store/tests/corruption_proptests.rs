//! Property-based corruption wall for the snapshot store: no sequence
//! of bit flips, truncations or section-table lies may ever be accepted
//! — and none may panic. Every injected fault must surface as a typed
//! [`StoreError`] from [`Snapshot::from_bytes`]. Both format versions
//! are walled: v2 (footer-led, what the encoder writes today) and v1
//! (front header, the frozen compat path).
//!
//! The unit tests in `snapshot.rs` already prove the *exhaustive*
//! single-bit case for v2; this wall adds randomized multi-byte damage
//! and the adversarial case where the liar also fixes up the table
//! checksum, so only the structural validation stands between the lie
//! and the pipeline.

use std::sync::OnceLock;

use entitylink::Dictionary;
use kbgraph::GraphBuilder;
use proptest::prelude::*;
use searchlite::{Analyzer, Index, IndexBuilder};
use sqe_store::crc32::crc32;
use sqe_store::format::{FOOTER_SUFFIX_LEN, HEADER_PREFIX_LEN, SECTION_ENTRY_LEN};
use sqe_store::{encode_snapshot, encode_snapshot_v1, Snapshot, SnapshotContents};

/// A small but fully populated world: two articles, a category, two
/// collections (one of them two segments in v2), a linker dictionary.
/// Encoded once per version and shared.
fn toy_parts() -> (kbgraph::KbGraph, Vec<Index>, Dictionary) {
    let mut b = GraphBuilder::new();
    let cable = b.add_article("cable car");
    let funi = b.add_article("funicular");
    let rail = b.add_category("rail transport");
    b.add_article_link(cable, funi);
    b.add_article_link(funi, cable);
    b.add_membership(cable, rail);
    b.add_membership(funi, rail);
    let graph = b.build();

    let mut ib = IndexBuilder::new(Analyzer::english());
    ib.add_document("d0", "the cable car climbs the hill").expect("unique ids");
    ib.add_document("d1", "a funicular railway in the alps").expect("unique ids");
    let idx_a = ib.build();
    let mut ib = IndexBuilder::new(Analyzer::english());
    ib.add_document("e0", "history of rail transport").expect("unique ids");
    let idx_b = ib.build();

    let mut dict = Dictionary::new();
    dict.add("cable car", cable, 1.0);
    dict.add("funicular", funi, 1.0);
    (graph, vec![idx_a, idx_b], dict)
}

fn valid_bytes_v2() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (graph, indexes, dict) = toy_parts();
        // "alpha" is two segments: the v2 wall must cover the
        // per-segment section layout, not just the monolithic shape.
        let alpha = [&indexes[0], &indexes[1]];
        let beta = [&indexes[1]];
        let collections = [("alpha", &alpha[..]), ("beta", &beta[..])];
        encode_snapshot(&SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        })
        .expect("the valid toy world encodes")
    })
}

fn valid_bytes_v1() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (graph, indexes, dict) = toy_parts();
        let alpha = [&indexes[0]];
        let beta = [&indexes[1]];
        let collections = [("alpha", &alpha[..]), ("beta", &beta[..])];
        encode_snapshot_v1(&SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        })
        .expect("the valid toy world encodes as v1")
    })
}

/// Number of sections in a v1 snapshot's front table.
fn v1_section_count(bytes: &[u8]) -> usize {
    u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize
}

/// Recomputes the v1 header CRC over `[0, table_end)` and patches it
/// in, so a table lie survives the checksum and must be caught
/// structurally.
fn fix_v1_header_crc(bytes: &mut [u8]) {
    let table_end = HEADER_PREFIX_LEN + v1_section_count(bytes) * SECTION_ENTRY_LEN;
    let crc = crc32(&bytes[..table_end]);
    bytes[table_end..table_end + 4].copy_from_slice(&crc.to_le_bytes());
}

/// `(footer_start, section count)` of a v2 image.
fn v2_footer(bytes: &[u8]) -> (usize, usize) {
    let end = bytes.len();
    let count = u32::from_le_bytes([
        bytes[end - 16],
        bytes[end - 15],
        bytes[end - 14],
        bytes[end - 13],
    ]) as usize;
    (end - (count * SECTION_ENTRY_LEN + FOOTER_SUFFIX_LEN), count)
}

/// Recomputes the v2 footer CRC over the table + count and patches it
/// in — the strongest checksum-clean lie about the footer.
fn fix_v2_footer_crc(bytes: &mut [u8]) {
    let (start, _) = v2_footer(bytes);
    let end = bytes.len();
    let crc = crc32(&bytes[start..end - 12]);
    bytes[end - 12..end - 8].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    /// Random bit flips anywhere in a v2 file are always rejected.
    #[test]
    fn v2_random_bit_flip_rejected(at in 0usize..1 << 24, bit in 0u8..8) {
        let bytes = valid_bytes_v2();
        let mut bad = bytes.to_vec();
        let at = at % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "bit {bit} of byte {at} flipped and the v2 snapshot was accepted"
        );
    }

    /// Random bit flips anywhere in a v1 file are always rejected.
    #[test]
    fn v1_random_bit_flip_rejected(at in 0usize..1 << 24, bit in 0u8..8) {
        let bytes = valid_bytes_v1();
        let mut bad = bytes.to_vec();
        let at = at % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "bit {bit} of byte {at} flipped and the v1 snapshot was accepted"
        );
    }

    /// A handful of random byte overwrites is always rejected (as long
    /// as at least one byte actually changed).
    #[test]
    fn v2_random_byte_smear_rejected(
        edits in prop::collection::vec((0usize..1 << 24, 0u8..=255), 1..8),
    ) {
        let bytes = valid_bytes_v2();
        let mut bad = bytes.to_vec();
        for (at, val) in edits {
            bad[at % bytes.len()] = val;
        }
        prop_assume!(bad != bytes);
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }

    /// Every proper prefix of a v2 file is rejected: the footer must
    /// sit exactly at the end, so truncation anywhere is detected.
    #[test]
    fn v2_truncation_rejected(cut in 0usize..1 << 24) {
        let bytes = valid_bytes_v2();
        let keep = cut % bytes.len();
        prop_assert!(
            Snapshot::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {keep} of {} bytes was accepted",
            bytes.len()
        );
    }

    /// Every proper prefix of a v1 file is rejected too.
    #[test]
    fn v1_truncation_rejected(cut in 0usize..1 << 24) {
        let bytes = valid_bytes_v1();
        let keep = cut % bytes.len();
        prop_assert!(Snapshot::from_bytes(&bytes[..keep]).is_err());
    }

    /// Trailing garbage is rejected: a v2 file must end with the footer
    /// magic and the table must tile the payload region exactly.
    #[test]
    fn v2_trailing_garbage_rejected(tail in prop::collection::vec(0u8..=255, 1..64)) {
        let bytes = valid_bytes_v2();
        let mut bad = bytes.to_vec();
        bad.extend_from_slice(&tail);
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }

    /// Even re-appending the original footer after garbage is rejected:
    /// the tiling check pins every payload byte.
    #[test]
    fn v2_garbage_before_refooter_rejected(tail in prop::collection::vec(1u8..=255, 1..32)) {
        let bytes = valid_bytes_v2();
        let (start, _) = v2_footer(bytes);
        let mut bad = bytes[..start].to_vec();
        bad.extend_from_slice(&tail);
        bad.extend_from_slice(&bytes[start..]);
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }

    /// A v2 footer-table lie with a *fixed-up footer checksum* is still
    /// rejected: only the structural checks (known ids, uniqueness,
    /// alignment, contiguity, exact tiling, payload CRCs) stand.
    #[test]
    fn v2_checksum_clean_table_lie_rejected(
        entry in 0usize..1 << 8,
        field_byte in 0usize..SECTION_ENTRY_LEN,
        bit in 0u8..8,
    ) {
        let bytes = valid_bytes_v2();
        let (start, count) = v2_footer(bytes);
        let mut bad = bytes.to_vec();
        let entry = entry % count;
        let at = start + entry * SECTION_ENTRY_LEN + field_byte;
        bad[at] ^= 1 << bit;
        fix_v2_footer_crc(&mut bad);
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "entry {entry} byte {field_byte} bit {bit}: checksum-clean v2 lie accepted"
        );
    }

    /// A v1 table lie with a fixed-up header checksum is still rejected.
    #[test]
    fn v1_checksum_clean_table_lie_rejected(
        entry in 0usize..1 << 8,
        field_byte in 0usize..SECTION_ENTRY_LEN,
        bit in 0u8..8,
    ) {
        let bytes = valid_bytes_v1();
        let mut bad = bytes.to_vec();
        let entry = entry % v1_section_count(bytes);
        let at = HEADER_PREFIX_LEN + entry * SECTION_ENTRY_LEN + field_byte;
        bad[at] ^= 1 << bit;
        fix_v1_header_crc(&mut bad);
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "entry {entry} byte {field_byte} bit {bit}: checksum-clean v1 lie accepted"
        );
    }

    /// A lie about the v2 prefix — version or reserved word — is always
    /// rejected, even though neither is covered by the footer CRC: the
    /// version gate and the zero-reserved rule pin them.
    #[test]
    fn v2_prefix_lie_rejected(at in 8usize..16, bit in 0u8..8) {
        let bytes = valid_bytes_v2();
        let mut bad = bytes.to_vec();
        bad[at] ^= 1 << bit;
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }
}

#[test]
fn empty_and_tiny_inputs_are_rejected_not_panics() {
    for len in 0..64usize {
        let zeros = vec![0u8; len];
        assert!(Snapshot::from_bytes(&zeros).is_err(), "{len} zero bytes accepted");
    }
    assert!(Snapshot::from_bytes(b"SQESNAP\0").is_err());
}

#[test]
fn unknown_section_id_with_clean_checksums_is_rejected_v2() {
    // Rewrite the DICT section id (0x3) in the footer to an id no
    // reader knows, keep its payload and CRC intact, and fix the footer
    // CRC: the file is checksum-perfect yet must be rejected, because
    // accepting unknown sections would let a newer writer smuggle state
    // past this reader.
    let bytes = valid_bytes_v2().to_vec();
    let (start, count) = v2_footer(&bytes);
    let mut bad = bytes.clone();
    let mut patched = false;
    for e in 0..count {
        let at = start + e * SECTION_ENTRY_LEN;
        let id = u32::from_le_bytes([bad[at], bad[at + 1], bad[at + 2], bad[at + 3]]);
        if id == 0x3 {
            bad[at..at + 4].copy_from_slice(&0xDEAD_u32.to_le_bytes());
            patched = true;
        }
    }
    assert!(patched, "toy snapshot must contain the DICT section");
    fix_v2_footer_crc(&mut bad);
    assert!(Snapshot::from_bytes(&bad).is_err());
}

#[test]
fn unknown_section_id_with_clean_checksums_is_rejected_v1() {
    let bytes = valid_bytes_v1().to_vec();
    let n = v1_section_count(&bytes);
    let mut bad = bytes.clone();
    let mut patched = false;
    for e in 0..n {
        let at = HEADER_PREFIX_LEN + e * SECTION_ENTRY_LEN;
        let id = u32::from_le_bytes([bad[at], bad[at + 1], bad[at + 2], bad[at + 3]]);
        if id == 0x3 {
            bad[at..at + 4].copy_from_slice(&0xDEAD_u32.to_le_bytes());
            patched = true;
        }
    }
    assert!(patched, "toy snapshot must contain the DICT section");
    fix_v1_header_crc(&mut bad);
    assert!(Snapshot::from_bytes(&bad).is_err());
}
