// Fixture: corpus-stat merge arithmetic routed through floats — the
// round-trip silently loses precision above 2^53 and the merged stats
// stop being a pure integer function of the inputs.

pub fn merge(&mut self, other: &Stats) {
    let tf = other.coll_tf as f64;
    self.coll_tf += tf as u64;
    self.num_docs += other.num_docs;
}
