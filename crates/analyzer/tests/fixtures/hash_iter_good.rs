// Fixture: the two determinism-safe shapes — an ordered container, and a
// hash container whose collected output is sorted before use.

use std::collections::BTreeMap;

use rustc_hash::FxHashMap;

pub fn ranked_titles(m: &BTreeMap<String, f64>) -> Vec<String> {
    m.keys().cloned().collect::<Vec<String>>()
}

pub fn top(m: &FxHashMap<String, f64>) -> Vec<String> {
    let mut v: Vec<String> = m.keys().cloned().collect();
    v.sort();
    v
}
