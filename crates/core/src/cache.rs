//! Seeded-capacity LRU cache for motif expansions.
//!
//! The serving layer keys cached expansions by the *sorted* query-node id
//! set plus the motif configuration, so the same entity set reached
//! through different link orders shares one entry. A generation counter
//! invalidates the whole cache in O(1) when the underlying graph or index
//! is swapped: stale entries simply miss (and are unlinked lazily), so no
//! lock is held for a full clear on the swap path. The serving layer
//! drives the generation from the segmented index's **segment-set
//! epoch**: each seal advances the epoch once, and the service bumps the
//! generation exactly once per advance, so auto-merges that ride a seal
//! never cause a second flush.
//!
//! The LRU core is an index-linked list over a slab plus a hash map from
//! key to slot — O(1) lookup, insert, touch, and eviction, with no
//! iteration over the hash map anywhere (iteration order must never
//! influence behaviour; see the `hash-iteration-determinism` lint).

use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard};

use kbgraph::ArticleId;
use rustc_hash::FxHashMap;

use crate::spec::MotifFingerprint;

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    generation: u64,
    prev: usize,
    next: usize,
}

/// A generational LRU cache with a fixed ("seeded") capacity.
///
/// Not internally synchronized — wrap in a mutex for shared use (see
/// [`ExpansionCache`]). Generic so the recency/capacity invariants can be
/// property-tested with small keys.
pub struct LruCache<K, V> {
    capacity: usize,
    generation: u64,
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            generation: 0,
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots (live *and* stale-but-unreclaimed).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Entries evicted by the capacity policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bumps the generation: every existing entry becomes stale and will
    /// miss (and be reclaimed) on its next lookup or eviction.
    pub fn invalidate(&mut self) {
        self.generation += 1;
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = match self.slots.get(idx) {
            Some(s) => (s.prev, s.next),
            None => return,
        };
        match self.slots.get_mut(prev) {
            Some(p) => p.next = next,
            None => self.head = next,
        }
        match self.slots.get_mut(next) {
            Some(n) => n.prev = prev,
            None => self.tail = prev,
        }
    }

    /// Links `idx` at the head (most recently used).
    fn link_front(&mut self, idx: usize) {
        let old_head = self.head;
        if let Some(s) = self.slots.get_mut(idx) {
            s.prev = NIL;
            s.next = old_head;
        }
        match self.slots.get_mut(old_head) {
            Some(h) => h.prev = idx,
            None => self.tail = idx,
        }
        self.head = idx;
    }

    /// Removes the entry in `idx` entirely (map, list, slab).
    fn remove_slot(&mut self, idx: usize) {
        self.unlink(idx);
        if let Some(s) = self.slots.get(idx) {
            self.map.remove(&s.key);
        }
        self.free.push(idx);
    }

    /// Looks a key up. A hit refreshes recency and returns a clone of the
    /// value; a stale (old-generation) entry is reclaimed and misses.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        let live = self
            .slots
            .get(idx)
            .is_some_and(|s| s.generation == self.generation);
        if !live {
            self.remove_slot(idx);
            return None;
        }
        self.unlink(idx);
        self.link_front(idx);
        self.slots.get(idx).map(|s| s.value.clone())
    }

    /// Inserts or refreshes an entry at the current generation, evicting
    /// the least recently used entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            if let Some(s) = self.slots.get_mut(idx) {
                s.value = value;
                s.generation = self.generation;
            }
            self.unlink(idx);
            self.link_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            if victim != NIL {
                let was_live = self
                    .slots
                    .get(victim)
                    .is_some_and(|s| s.generation == self.generation);
                self.remove_slot(victim);
                if was_live {
                    self.evictions += 1;
                }
            }
        }
        let generation = self.generation;
        let idx = match self.free.pop() {
            Some(i) => {
                if let Some(s) = self.slots.get_mut(i) {
                    s.key = key.clone();
                    s.value = value;
                    s.generation = generation;
                }
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    generation,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
    }

    /// Keys from most to least recently used, skipping stale entries.
    /// For tests and diagnostics (O(len)).
    pub fn recency_keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while let Some(s) = self.slots.get(cur) {
            if s.generation == self.generation {
                out.push(s.key.clone());
            }
            cur = s.next;
        }
        out
    }
}

/// Cache key of one expansion computation: the sorted query-node id set
/// plus the canonical fingerprint of the motif set that expanded it —
/// distinct motif sets over the same nodes can never collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query-node ids, ascending (duplicates preserved so the cached
    /// result is exactly what a fresh build over the same slice returns —
    /// `QueryGraphBuilder::build` sums multiplicities per occurrence).
    nodes: Vec<ArticleId>,
    /// Canonical fingerprint of the expanding motif set.
    motifs: MotifFingerprint,
}

impl CacheKey {
    /// Builds the canonical key for a query-node slice: node order never
    /// affects the expansion result, so the key sorts it away; the motif
    /// set is already canonical through its fingerprint.
    pub fn new(nodes: &[ArticleId], motifs: MotifFingerprint) -> Self {
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        CacheKey { nodes, motifs }
    }
}

/// The weighted expansion features of one cached entry, shared so a hit
/// costs one `Arc` clone.
pub type CachedExpansions = Arc<Vec<(ArticleId, u32)>>;

/// Thread-safe expansion cache: a mutex-wrapped [`LruCache`] keyed by
/// [`CacheKey`].
pub struct ExpansionCache {
    inner: Mutex<LruCache<CacheKey, CachedExpansions>>,
}

impl ExpansionCache {
    /// Creates a cache with the given seeded capacity.
    pub fn new(capacity: usize) -> Self {
        ExpansionCache {
            inner: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// Locks the inner cache; a poisoned mutex still yields usable state
    /// because every critical section below is panic-free.
    fn lock(&self) -> MutexGuard<'_, LruCache<CacheKey, CachedExpansions>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up cached expansions.
    pub fn get(&self, key: &CacheKey) -> Option<CachedExpansions> {
        self.lock().get(key)
    }

    /// Stores expansions under `key`.
    pub fn insert(&self, key: CacheKey, value: CachedExpansions) {
        self.lock().insert(key, value);
    }

    /// Bumps the generation (call when the graph or index is swapped).
    pub fn invalidate(&self) {
        self.lock().invalidate();
    }

    /// Occupied entries (live and stale-but-unreclaimed).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The seeded capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.lock().generation()
    }

    /// Entries evicted by the capacity policy so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> LruCache<u32, u64> {
        LruCache::new(cap)
    }

    #[test]
    fn lookup_returns_inserted_value() {
        let mut c = cache(4);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = cache(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = cache(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, 1 most recent
        c.insert(3, 30); // evicts 2, not 1
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn invalidate_makes_every_entry_miss() {
        let mut c = cache(4);
        c.insert(1, 10);
        c.insert(2, 20);
        c.invalidate();
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.generation(), 1);
        // Stale entries were reclaimed by the lookups.
        assert_eq!(c.len(), 0);
        // New generation works normally.
        c.insert(1, 100);
        assert_eq!(c.get(&1), Some(100));
    }

    #[test]
    fn stale_entries_are_reclaimed_by_eviction_without_counting() {
        let mut c = cache(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.invalidate();
        c.insert(3, 30); // evicts a stale slot: not a "real" eviction
        c.insert(4, 40);
        assert_eq!(c.evictions(), 0);
        c.insert(5, 50); // evicts live entry 3
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.get(&5), Some(50));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = cache(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn recency_order_is_mru_first() {
        let mut c = cache(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.recency_keys(), vec![3, 2, 1]);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.recency_keys(), vec![1, 3, 2]);
    }

    #[test]
    fn cache_key_canonicalizes_node_order() {
        use crate::spec::MotifSet;
        let a = ArticleId::new(3);
        let b = ArticleId::new(7);
        let t = MotifSet::triangular().fingerprint();
        let s = MotifSet::square().fingerprint();
        assert_eq!(CacheKey::new(&[a, b], t), CacheKey::new(&[b, a], t));
        assert_ne!(CacheKey::new(&[a, b], t), CacheKey::new(&[a, b], s));
        // Duplicates are part of the key: they change multiplicities.
        assert_ne!(CacheKey::new(&[a, a], t), CacheKey::new(&[a], t));
    }

    #[test]
    fn distinct_motif_sets_occupy_distinct_entries() {
        use crate::spec::{MotifSet, MotifSpec};
        // Same query nodes, every enumerable singleton motif set: each
        // must hold its own entry — no fingerprint collisions anywhere
        // in the spec space.
        let nodes = [ArticleId::new(1), ArticleId::new(2)];
        let c = ExpansionCache::new(64);
        let sets: Vec<MotifSet> = MotifSpec::all()
            .into_iter()
            .map(MotifSet::single)
            .chain([MotifSet::t_and_s(), MotifSet::empty()])
            .collect();
        for (i, set) in sets.iter().enumerate() {
            c.insert(
                CacheKey::new(&nodes, set.fingerprint()),
                Arc::new(vec![(ArticleId::new(100), i as u32)]),
            );
        }
        for (i, set) in sets.iter().enumerate() {
            let hit = c
                .get(&CacheKey::new(&nodes, set.fingerprint()))
                .expect("every set keeps its own entry");
            assert_eq!(*hit, vec![(ArticleId::new(100), i as u32)], "{}", set.name());
        }
        assert_eq!(c.len(), sets.len());
    }

    #[test]
    fn expansion_cache_roundtrip_and_invalidate() {
        use crate::spec::MotifSet;
        let c = ExpansionCache::new(8);
        let key = CacheKey::new(&[ArticleId::new(1)], MotifSet::t_and_s().fingerprint());
        assert!(c.get(&key).is_none());
        c.insert(key.clone(), Arc::new(vec![(ArticleId::new(9), 2)]));
        let hit = c.get(&key).expect("just inserted");
        assert_eq!(*hit, vec![(ArticleId::new(9), 2)]);
        c.invalidate();
        assert!(c.get(&key).is_none());
        assert_eq!(c.generation(), 1);
    }
}
