/root/repo/target/debug/deps/calibration-ac8c7a2d93dc8231.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-ac8c7a2d93dc8231: tests/calibration.rs

tests/calibration.rs:
