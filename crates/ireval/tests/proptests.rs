//! Property-based tests for the evaluation substrate.

use ireval::precision::{average_precision, precision_at};
use ireval::stats::{incomplete_beta, ln_gamma, two_sided_p};
use ireval::{paired_t_test, Qrels, Run};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn ranking() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(0u32..40, 0..40).prop_map(|v| {
        let mut seen = FxHashSet::default();
        v.into_iter()
            .filter(|d| seen.insert(*d))
            .map(|d| format!("d{d}"))
            .collect()
    })
}

fn relevant() -> impl Strategy<Value = FxHashSet<String>> {
    prop::collection::btree_set(0u32..40, 0..20)
        .prop_map(|s| s.into_iter().map(|d| format!("d{d}")).collect())
}

proptest! {
    /// P@k is always within [0, 1] and the hit count k·P@k is integral
    /// and non-decreasing in k.
    #[test]
    fn precision_bounds_and_monotone_hits(r in ranking(), q in relevant()) {
        let mut prev_hits = 0.0;
        for k in 1..=30usize {
            let p = precision_at(&r, &q, k);
            prop_assert!((0.0..=1.0).contains(&p));
            let hits = p * k as f64;
            prop_assert!((hits - hits.round()).abs() < 1e-9);
            prop_assert!(hits + 1e-9 >= prev_hits);
            prev_hits = hits;
        }
    }

    /// P@k is bounded by |relevant| / k.
    #[test]
    fn precision_bounded_by_relevant_count(r in ranking(), q in relevant(), k in 1usize..40) {
        let p = precision_at(&r, &q, k);
        prop_assert!(p <= q.len() as f64 / k as f64 + 1e-12);
    }

    /// Average precision lies in [0, 1]; a perfect prefix ranking of all
    /// relevant documents achieves exactly 1.
    #[test]
    fn average_precision_bounds(r in ranking(), q in relevant()) {
        let ap = average_precision(&r, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        if !q.is_empty() {
            let perfect: Vec<String> = q.iter().cloned().collect();
            prop_assert!((average_precision(&perfect, &q) - 1.0).abs() < 1e-9);
        }
    }

    /// The paired t-test is antisymmetric: swapping treatment and
    /// baseline negates t and preserves p.
    #[test]
    fn t_test_antisymmetric(diffs in prop::collection::vec(-1.0f64..1.0, 3..30)) {
        let base: Vec<f64> = vec![0.5; diffs.len()];
        let treat: Vec<f64> = diffs.iter().map(|d| 0.5 + d).collect();
        match (paired_t_test(&treat, &base), paired_t_test(&base, &treat)) {
            (Some(a), Some(b)) => {
                prop_assert!((a.t + b.t).abs() < 1e-9);
                prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
                prop_assert!(!(a.significant_improvement(0.05) && b.significant_improvement(0.05)));
            }
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric degeneracy"),
        }
    }

    /// p-values live in [0, 1] and shrink as |t| grows.
    #[test]
    fn p_value_monotone_in_t(df in 1.0f64..100.0, t in 0.0f64..8.0) {
        let p1 = two_sided_p(t, df);
        let p2 = two_sided_p(t + 0.5, df);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1 + 1e-12);
    }

    /// The regularized incomplete beta is monotone in x and hits its
    /// boundary values.
    #[test]
    fn incomplete_beta_monotone(a in 0.2f64..10.0, b in 0.2f64..10.0, x in 0.01f64..0.98) {
        let i1 = incomplete_beta(a, b, x);
        let i2 = incomplete_beta(a, b, x + 0.01);
        prop_assert!((0.0..=1.0).contains(&i1));
        prop_assert!(i2 + 1e-9 >= i1);
        prop_assert_eq!(incomplete_beta(a, b, 0.0), 0.0);
        prop_assert_eq!(incomplete_beta(a, b, 1.0), 1.0);
    }

    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn gamma_recurrence(x in 0.5f64..20.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }

    /// Run rankings deduplicate while preserving first-occurrence order.
    #[test]
    fn run_dedup_preserves_order(docs in prop::collection::vec(0u32..10, 0..30)) {
        let mut run = Run::new("t");
        let input: Vec<String> = docs.iter().map(|d| format!("d{d}")).collect();
        run.set_ranking("q", input.clone());
        let stored = run.ranking("q").unwrap();
        // Deduplicated.
        let mut seen = FxHashSet::default();
        prop_assert!(stored.iter().all(|d| seen.insert(d.clone())));
        // Subsequence of the input in order of first occurrence.
        let mut expected: Vec<String> = Vec::new();
        let mut s2 = FxHashSet::default();
        for d in input {
            if s2.insert(d.clone()) {
                expected.push(d);
            }
        }
        prop_assert_eq!(stored, &expected[..]);
    }

    /// Qrels averaging counts zero-relevant queries in the denominator.
    #[test]
    fn qrels_average_includes_empty_queries(n_empty in 0usize..5, n_full in 1usize..5) {
        let mut q = Qrels::new();
        for i in 0..n_empty {
            q.add_query(&format!("e{i}"));
        }
        for i in 0..n_full {
            q.add_judgment(&format!("f{i}"), "d");
        }
        let avg = q.avg_relevant_per_query();
        let expected = n_full as f64 / (n_empty + n_full) as f64;
        prop_assert!((avg - expected).abs() < 1e-12);
    }
}
