//! SQE ⊕ PRF orthogonality demo (the paper's Section 4.3): run the same
//! query unexpanded, with pure relevance-model feedback, with SQE, and
//! with PRF on top of the SQE-expanded query, and compare what each
//! retrieves on the synthetic CHiC-like collection.
//!
//! ```text
//! cargo run --release --example prf_pipeline
//! ```

use ireval::precision::precision_at;
use rustc_hash::FxHashSet;
use searchlite::prf::{self, PrfParams};
use searchlite::{Analyzer, IndexBuilder, QlParams};
use sqe::{MotifSet, SqeConfig, SqePipeline};
use synthwiki::{TestBed, TestBedConfig};

fn main() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let dataset = bed.dataset("chic2013");
    let collection = bed.collection_of(dataset);
    let mut builder = IndexBuilder::new(Analyzer::english());
    for d in &collection.docs {
        builder
            .add_document(&d.id, &d.text)
            .expect("generated ids are unique");
    }
    let index = builder.build();
    let ql = QlParams { mu: 15.0 };
    let pipeline = SqePipeline::from_index(
        &bed.kb.graph,
        &index,
        SqeConfig {
            ql,
            ..SqeConfig::default()
        },
    );

    // First query with relevant documents.
    let query = dataset
        .queries
        .iter()
        .find(|q| !dataset.relevant[&q.id].is_empty())
        .expect("dataset has non-empty queries");
    let relevant: FxHashSet<String> = dataset.relevant[&query.id].iter().cloned().collect();
    let nodes: Vec<_> = query.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
    println!("query {}: \"{}\" ({} relevant docs)", query.id, query.text, relevant.len());

    let show = |name: &str, ids: Vec<String>| {
        let p10 = precision_at(&ids, &relevant, 10);
        println!("{name:<18} P@10 = {p10:.2}   top: {:?}", &ids[..ids.len().min(3)]);
    };

    // 1. Unexpanded.
    let hits = pipeline.rank_user(&query.text);
    show("QL (unexpanded)", pipeline.external_ids(&hits));

    // 2. Pure relevance-model PRF on the user query (the paper's failing
    //    comparator: new concepts only).
    let user = sqe::expand::user_part(&query.text, index.analyzer());
    let prf_params = PrfParams {
        fb_docs: 10,
        fb_terms: 20,
        orig_weight: 0.0,
        exclude_base_terms: true,
        ql,
    };
    let hits = prf::rank_with_prf(pipeline.searcher(), &user, prf_params, 1000);
    show("PRF alone", pipeline.external_ids(&hits));

    // 3. SQE (both motifs).
    let (hits, qg) = pipeline.rank_sqe(&query.text, &nodes, &MotifSet::t_and_s());
    println!("    (SQE found {} expansion features)", qg.num_expansions());
    show("SQE", pipeline.external_ids(&hits));

    // 4. SQE then PRF: feedback over the SQE-expanded query (RM3).
    let expanded = pipeline.expand(&query.text, &nodes, &MotifSet::t_and_s());
    let rm3 = PrfParams {
        orig_weight: 0.5,
        exclude_base_terms: false,
        ..prf_params
    };
    let hits = prf::rank_with_prf(pipeline.searcher(), &expanded.query, rm3, 1000);
    show("SQE then PRF", pipeline.external_ids(&hits));
}
