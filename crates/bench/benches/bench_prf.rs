//! Pseudo-relevance-feedback benchmarks (Table 3's inner loop): relevance
//! model estimation and the full feedback retrieval pass.

use criterion::{criterion_group, criterion_main, Criterion};
use searchlite::prf::{self, PrfParams};
use searchlite::Query;
use sqe::expand;
use sqe_bench::ExperimentContext;

fn bench_prf(c: &mut Criterion) {
    let ctx = ExperimentContext::small();
    let runner = ctx.runner("chic2013");
    let pipeline = runner.pipeline();
    let searcher = pipeline.searcher();
    let q = &runner.dataset().queries[2];
    let user: Query = expand::user_part(&q.text, searcher.analyzer());
    let params = PrfParams {
        fb_docs: 10,
        fb_terms: 20,
        orig_weight: 0.0,
        exclude_base_terms: true,
        ql: ctx.sqe_config.ql,
    };

    c.bench_function("prf/relevance_model", |b| {
        b.iter(|| prf::relevance_model(searcher, std::hint::black_box(&user), params).len())
    });
    c.bench_function("prf/rank_with_prf", |b| {
        b.iter(|| prf::rank_with_prf(searcher, std::hint::black_box(&user), params, 1000).len())
    });

    // The SQE→PRF combination (the paper's SQE_C/PRF row).
    let nodes = runner.manual_nodes(q);
    let expanded = pipeline.expand(&q.text, &nodes, &sqe::MotifSet::t_and_s());
    let rm3 = PrfParams {
        orig_weight: 0.5,
        exclude_base_terms: false,
        ..params
    };
    c.bench_function("prf/sqe_then_prf", |b| {
        b.iter(|| prf::rank_with_prf(searcher, std::hint::black_box(&expanded.query), rm3, 1000).len())
    });
}

criterion_group!(benches, bench_prf);
criterion_main!(benches);
