//! Regeneration of the paper's Figures 2, 5 and 6 (as text series).

use ireval::precision::{mean_precision, PrecisionTable, TREC_CUTOFFS};
use kbgraph::{ArticleId, CycleLimits};
use sqe::analysis::{analyze_query_graph, average_analyses, CycleAnalysis};

use crate::context::ExperimentContext;
use crate::report::{fmt_pct, pct_gain};

/// Figure 2: structural analysis of the ground-truth query graphs —
/// (a) contribution, (b) category ratio, (c) extra-edge density, per
/// cycle length 3/4/5.
pub fn figure2(ctx: &ExperimentContext) -> String {
    let dataset = "imageclef";
    let r = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    let gt = ctx.ground_truth(dataset);
    let graph = &ctx.bed.kb.graph;
    let limits = CycleLimits {
        max_len: 5,
        max_expand_degree: 96,
        max_cycles: 20_000,
    };
    // Full ground-truth precision (the denominator of the contribution).
    let full = PrecisionTable::evaluate(&r.run_sqe_ub(), &qrels);

    let ds = r.dataset();
    let mut analyses: Vec<CycleAnalysis> = Vec::new();
    for q in &ds.queries {
        let g = gt.graph(&q.id).expect("covered");
        analyses.push(analyze_query_graph(
            graph,
            &g.query_nodes,
            &g.expansion_nodes,
            limits,
        ));
    }
    let stats = average_analyses(&analyses);

    // Contribution per length: retrieval with only the expansion nodes
    // reached by cycles of that length, relative to the full query graph.
    let pipeline = r.pipeline();
    let mut contribution: Vec<(usize, f64)> = Vec::new();
    for length in [3usize, 4, 5] {
        let mut run = ireval::Run::new(&format!("gt-len{length}"));
        for (q, a) in ds.queries.iter().zip(analyses.iter()) {
            let g = gt.graph(&q.id).expect("covered");
            let reached: Vec<(ArticleId, u32)> =
                a.reached_by(length).iter().map(|&x| (x, 1)).collect();
            let hits = pipeline.rank_with_expansions(&q.text, &g.query_nodes, &reached);
            run.set_ranking(&q.id, pipeline.external_ids(&hits));
        }
        // Average P@k ratio over the small cutoffs the paper's figure uses.
        let mut ratios = Vec::new();
        for &k in &[5usize, 10, 15, 20, 30] {
            let p = mean_precision(&run, &qrels, k);
            if full.at(k) > 0.0 {
                ratios.push(p / full.at(k));
            }
        }
        let c = if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        contribution.push((length, c.min(1.0)));
    }

    let mut s = String::from("=== Figure 2: ground-truth cycle analysis (Image CLEF) ===\n");
    s.push_str("len   cycles  (a) contribution  (b) category ratio  (c) extra-edge density\n");
    for length in [3usize, 4, 5] {
        let st = stats.iter().find(|x| x.length == length);
        let c = contribution
            .iter()
            .find(|&&(l, _)| l == length)
            .map_or(0.0, |&(_, c)| c);
        match st {
            Some(st) => s.push_str(&format!(
                "{length:<6}{:<8}{c:<18.3}{:<20.3}{:.3}\n",
                st.cycles, st.category_ratio, st.extra_edge_density
            )),
            None => s.push_str(&format!("{length:<6}0       {c:<18.3}-                   -\n")),
        }
    }

    // Companion statistic: how far the optimal expansion nodes sit from
    // the query nodes (cycles of length 3–5 imply hop distances 1–2).
    let mut hist_total = [0usize; 4];
    let mut unreachable_total = 0usize;
    for q in &ds.queries {
        let g = gt.graph(&q.id).expect("covered");
        let sources: Vec<kbgraph::Node> =
            g.query_nodes.iter().map(|&a| kbgraph::Node::Article(a)).collect();
        let targets: Vec<kbgraph::Node> = g
            .expansion_nodes
            .iter()
            .map(|&a| kbgraph::Node::Article(a))
            .collect();
        let (hist, unreachable) =
            kbgraph::distance_histogram(graph, &sources, &targets, 3);
        for (i, h) in hist.iter().enumerate() {
            hist_total[i] += h;
        }
        unreachable_total += unreachable;
    }
    s.push_str(&format!(
        "optimal expansion nodes by hop distance from the query nodes: \
         1 hop: {}, 2 hops: {}, 3 hops: {}, farther: {}\n",
        hist_total[1], hist_total[2], hist_total[3], unreachable_total
    ));
    s
}

/// Figure 5: % improvement of SQE_T / SQE_T&S / SQE_S over the best QL
/// baseline at each cutoff (ImageCLEF, manual entities).
pub fn figure5(ctx: &ExperimentContext) -> String {
    let r = ctx.runner("imageclef");
    let qrels = ctx.qrels("imageclef");
    let baselines = [
        PrecisionTable::evaluate(&r.run_ql_q(), &qrels),
        PrecisionTable::evaluate(&r.run_ql_e(false), &qrels),
        PrecisionTable::evaluate(&r.run_ql_qe(false), &qrels),
    ];
    let configs = [
        ("SQE_T", r.run_sqe(&sqe::MotifSet::triangular(), false)),
        ("SQE_T&S", r.run_sqe(&sqe::MotifSet::t_and_s(), false)),
        ("SQE_S", r.run_sqe(&sqe::MotifSet::square(), false)),
    ];
    let mut s = String::from("=== Figure 5: % improvement over best QL baseline (Image CLEF) ===\n");
    s.push_str(&format!("{:<10}", ""));
    for k in TREC_CUTOFFS {
        s.push_str(&format!("{:>10}", format!("P@{k}")));
    }
    s.push('\n');
    for (name, run) in &configs {
        let table = PrecisionTable::evaluate(run, &qrels);
        s.push_str(&format!("{name:<10}"));
        for &k in &TREC_CUTOFFS {
            let best = baselines
                .iter()
                .map(|b| b.at(k))
                .fold(f64::NEG_INFINITY, f64::max);
            s.push_str(&format!("{:>10}", fmt_pct(pct_gain(table.at(k), best))));
        }
        s.push('\n');
    }
    s
}

/// One panel of Figure 6: % improvement of SQE_C (M), SQE_C (A) and QL_X
/// over the best baseline at each cutoff.
pub fn figure6(ctx: &ExperimentContext, dataset: &str) -> String {
    let r = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    let baselines = [
        PrecisionTable::evaluate(&r.run_ql_q(), &qrels),
        PrecisionTable::evaluate(&r.run_ql_e(false), &qrels),
        PrecisionTable::evaluate(&r.run_ql_e(true), &qrels),
        PrecisionTable::evaluate(&r.run_ql_qe(false), &qrels),
        PrecisionTable::evaluate(&r.run_ql_qe(true), &qrels),
    ];
    let series = [
        ("SQE_C (M)", PrecisionTable::evaluate(&r.run_sqe_c(false), &qrels)),
        ("SQE_C (A)", PrecisionTable::evaluate(&r.run_sqe_c(true), &qrels)),
        ("QL_X", PrecisionTable::evaluate(&r.run_ql_x(), &qrels)),
    ];
    let mut s = format!("=== Figure 6 ({dataset}): % improvement over best baseline ===\n");
    s.push_str(&format!("{:<12}", ""));
    for k in TREC_CUTOFFS {
        s.push_str(&format!("{:>10}", format!("P@{k}")));
    }
    s.push('\n');
    for (name, table) in &series {
        s.push_str(&format!("{name:<12}"));
        for &k in &TREC_CUTOFFS {
            let best = baselines
                .iter()
                .map(|b| b.at(k))
                .fold(f64::NEG_INFINITY, f64::max);
            s.push_str(&format!("{:>10}", fmt_pct(pct_gain(table.at(k), best))));
        }
        s.push('\n');
    }
    s
}

/// All three Figure 6 panels.
pub fn figure6_all(ctx: &ExperimentContext) -> String {
    let mut s = String::new();
    for d in ["imageclef", "chic2012", "chic2013"] {
        s.push_str(&figure6(ctx, d));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_on_small_world() {
        let ctx = ExperimentContext::small();
        let f2 = figure2(&ctx);
        assert!(f2.contains("category ratio"));
        let f5 = figure5(&ctx);
        assert!(f5.contains("SQE_T&S"));
        let f6 = figure6(&ctx, "imageclef");
        assert!(f6.contains("QL_X"));
    }
}
