/root/repo/target/debug/deps/persistence_interop-2b03c1b3921f0f9c.d: tests/persistence_interop.rs

/root/repo/target/debug/deps/persistence_interop-2b03c1b3921f0f9c: tests/persistence_interop.rs

tests/persistence_interop.rs:
