//! Intraprocedural control-flow graphs over the lossy AST.
//!
//! [`Cfg::build`] lowers a function body ([`crate::ast::FnDef`]) into
//! statement-level basic blocks: straight-line statement runs connected by
//! branch/join edges for `if`/`match`, back edges for `while`/`loop`/`for`,
//! and early-exit edges for `return`, `break`, `continue`, and the postfix
//! `?` operator. Two properties matter to the dataflow rules built on top:
//!
//! - **Coverage**: every source statement is placed in exactly one block
//!   (structured statements contribute their header expression — the `if`
//!   condition, `match` scrutinee, `for` iterable — and their nested
//!   statements recursively). `cfg_roundtrip.rs` pins this against an
//!   independent count for every function in the workspace.
//! - **Drop points**: when a lexical block closes, a synthetic
//!   [`Stmt::ScopeEnd`] listing the block's `let`-bound names is emitted,
//!   so analyses tracking RAII values (lock guards) see where they die.
//!
//! Early exits nested *inside* a linear statement (`let x = f()?;`,
//! `let y = if c { return 0 } else { 1 };`) are modelled as *may* edges
//! out of the containing block; jumps inside closures stay local to the
//! closure, and `break`/`continue` inside a nested loop expression bind
//! to that loop, not the enclosing one.
//!
//! [`solve_forward`] is a generic worklist solver over any join-semilattice
//! ([`Lattice`]); [`for_each_state`] replays the fixpoint to hand rules the
//! state immediately before each statement.

use std::collections::HashSet;
use std::collections::VecDeque;

use crate::ast::{Block, Expr, FnDef};

/// One entry in a basic block: a source statement or a synthetic marker.
#[derive(Debug)]
pub enum Stmt<'a> {
    /// A source statement, or the header expression of a structured
    /// statement (`if` condition, `match` scrutinee, `for` iterable).
    Expr(&'a Expr),
    /// A lexical scope closed here; the listed `let`-bound names go out
    /// of scope (RAII drop point for guards bound in that scope).
    ScopeEnd(Vec<String>),
}

/// A run of statements with no internal control transfer.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// Statements in execution order.
    pub stmts: Vec<Stmt<'a>>,
    /// Successor block indices (deduplicated, in creation order).
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; indices are stable ids.
    pub blocks: Vec<BasicBlock<'a>>,
    /// Function entry block.
    pub entry: usize,
    /// Synthetic exit block (always empty); `return`, `?`, and normal
    /// fallthrough all edge here.
    pub exit: usize,
}

impl<'a> Cfg<'a> {
    /// Builds the CFG for `def`'s body; `None` when the function has no
    /// body (trait method declarations).
    pub fn build(def: &'a FnDef) -> Option<Cfg<'a>> {
        let body = def.body.as_ref()?;
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            exit: 1,
            loops: Vec::new(),
        };
        let entry = 0;
        if let Some(end) = b.lower_block(body, entry) {
            b.edge(end, b.exit);
        }
        Some(Cfg {
            blocks: b.blocks,
            entry,
            exit: 1,
        })
    }

    /// Number of [`Stmt::Expr`] entries across all blocks (the coverage
    /// metric pinned by `cfg_roundtrip.rs`).
    pub fn placed_stmts(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.stmts
                    .iter()
                    .filter(|s| matches!(s, Stmt::Expr(_)))
                    .count()
            })
            .sum()
    }

    /// Block indices reachable from `entry` (including `entry` itself).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// Where a jump nested inside a linear statement can transfer control.
struct Jumps {
    /// Contains `return` or `?` (function exit).
    exit: bool,
    /// Contains `break` binding to the *enclosing* loop.
    brk: bool,
    /// Contains `continue` binding to the *enclosing* loop.
    cont: bool,
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
    exit: usize,
    /// Innermost-last stack of `(continue target, break target)`.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        let succs = &mut self.blocks[from].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }

    fn push(&mut self, block: usize, stmt: Stmt<'a>) {
        self.blocks[block].stmts.push(stmt);
    }

    /// Lowers a lexical block starting in `cur`. Returns the block where
    /// control falls out the bottom, or `None` when every path diverges.
    /// Emits a [`Stmt::ScopeEnd`] for the block's `let` bindings at the
    /// fallthrough point.
    fn lower_block(&mut self, b: &'a Block, cur: usize) -> Option<usize> {
        let mut cur = Some(cur);
        for s in &b.stmts {
            let c = match cur {
                Some(c) => c,
                // Dead code after a diverging statement still gets placed
                // (coverage invariant); the block is simply unreachable.
                None => self.new_block(),
            };
            cur = self.lower_stmt(s, c);
        }
        let names: Vec<String> = b
            .stmts
            .iter()
            .filter_map(|s| match s {
                Expr::Let {
                    name: Some(n), ..
                } => Some(n.clone()),
                _ => None,
            })
            .collect();
        if let Some(c) = cur {
            if !names.is_empty() {
                self.push(c, Stmt::ScopeEnd(names));
            }
        }
        cur
    }

    /// Lowers one statement (or branch expression); returns the block
    /// where control continues, or `None` when the statement diverges.
    fn lower_stmt(&mut self, s: &'a Expr, cur: usize) -> Option<usize> {
        match s {
            Expr::If {
                cond, then, else_, ..
            } => {
                let cur = self.lower_linear(cond, cur);
                let then_entry = self.new_block();
                self.edge(cur, then_entry);
                let then_end = self.lower_block(then, then_entry);
                let else_end = match else_ {
                    Some(e) => {
                        let else_entry = self.new_block();
                        self.edge(cur, else_entry);
                        self.lower_stmt(e, else_entry)
                    }
                    // No else: condition-false falls through.
                    None => Some(cur),
                };
                match (then_end, else_end) {
                    (None, None) => None,
                    (t, e) => {
                        let join = self.new_block();
                        if let Some(t) = t {
                            self.edge(t, join);
                        }
                        if let Some(e) = e {
                            self.edge(e, join);
                        }
                        Some(join)
                    }
                }
            }
            Expr::While { cond, body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                self.lower_linear(cond, header);
                let body_entry = self.new_block();
                self.edge(header, body_entry);
                let after = self.new_block();
                self.edge(header, after);
                self.loops.push((header, after));
                if let Some(end) = self.lower_block(body, body_entry) {
                    self.edge(end, header);
                }
                self.loops.pop();
                Some(after)
            }
            Expr::Loop { body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                let after = self.new_block();
                self.loops.push((header, after));
                if let Some(end) = self.lower_block(body, header) {
                    self.edge(end, header);
                }
                self.loops.pop();
                // `after` is reachable only through `break` edges; with no
                // break it stays an (empty) unreachable sink.
                Some(after)
            }
            Expr::For { iter, body, .. } => {
                let cur = self.lower_linear(iter, cur);
                let header = self.new_block();
                self.edge(cur, header);
                let body_entry = self.new_block();
                self.edge(header, body_entry);
                let after = self.new_block();
                self.edge(header, after);
                self.loops.push((header, after));
                if let Some(end) = self.lower_block(body, body_entry) {
                    self.edge(end, header);
                }
                self.loops.pop();
                Some(after)
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let cur = self.lower_linear(scrutinee, cur);
                if arms.is_empty() {
                    return Some(cur);
                }
                let mut ends: Vec<usize> = Vec::new();
                for arm in arms {
                    let arm_entry = self.new_block();
                    self.edge(cur, arm_entry);
                    if let Some(end) = self.lower_stmt(arm, arm_entry) {
                        ends.push(end);
                    }
                }
                if ends.is_empty() {
                    return None;
                }
                let join = self.new_block();
                for e in ends {
                    self.edge(e, join);
                }
                Some(join)
            }
            Expr::Block(b) => {
                let entry = self.new_block();
                self.edge(cur, entry);
                self.lower_block(b, entry)
            }
            Expr::Return { .. } => {
                self.push(cur, Stmt::Expr(s));
                self.edge(cur, self.exit);
                None
            }
            Expr::Break { .. } => {
                self.push(cur, Stmt::Expr(s));
                let target = self.loops.last().map_or(self.exit, |&(_, brk)| brk);
                self.edge(cur, target);
                None
            }
            Expr::Continue { .. } => {
                self.push(cur, Stmt::Expr(s));
                let target = self.loops.last().map_or(self.exit, |&(hdr, _)| hdr);
                self.edge(cur, target);
                None
            }
            _ => Some(self.lower_linear(s, cur)),
        }
    }

    /// Places a linear statement in `cur` and adds *may* edges for any
    /// early exits nested inside it. Always falls through.
    fn lower_linear(&mut self, s: &'a Expr, cur: usize) -> usize {
        self.push(cur, Stmt::Expr(s));
        let j = scan_jumps(s);
        if j.exit {
            self.edge(cur, self.exit);
        }
        if j.brk {
            let target = self.loops.last().map_or(self.exit, |&(_, brk)| brk);
            self.edge(cur, target);
        }
        if j.cont {
            let target = self.loops.last().map_or(self.exit, |&(hdr, _)| hdr);
            self.edge(cur, target);
        }
        cur
    }
}

/// Scans a linear statement for control transfers that escape it.
/// `return`/`?` anywhere outside a closure exit the function; `break`/
/// `continue` count only when they bind to the loop *enclosing* the
/// statement — occurrences inside nested loop or closure subtrees are
/// local and ignored.
fn scan_jumps(s: &Expr) -> Jumps {
    // Mark subtrees whose jumps do not escape: closure bodies (all jumps)
    // and nested loop bodies (break/continue). Pointer identity is stable
    // for the duration of the scan.
    let mut closed: HashSet<*const Expr> = HashSet::new();
    let mut looped: HashSet<*const Expr> = HashSet::new();
    s.walk(&mut |e| match e {
        Expr::Closure { body, .. } => {
            body.walk(&mut |c| {
                closed.insert(c as *const Expr);
            });
        }
        Expr::For { body, .. } | Expr::While { body, .. } | Expr::Loop { body, .. } => {
            for st in &body.stmts {
                st.walk(&mut |c| {
                    looped.insert(c as *const Expr);
                });
            }
        }
        _ => {}
    });
    let mut j = Jumps {
        exit: false,
        brk: false,
        cont: false,
    };
    s.walk(&mut |e| {
        if closed.contains(&(e as *const Expr)) {
            return;
        }
        match e {
            Expr::Return { .. } | Expr::Try { .. } => j.exit = true,
            Expr::Break { .. } if !looped.contains(&(e as *const Expr)) => j.brk = true,
            Expr::Continue { .. } if !looped.contains(&(e as *const Expr)) => j.cont = true,
            _ => {}
        }
    });
    j
}

/// A join-semilattice domain for forward dataflow.
pub trait Lattice: Clone {
    /// The ⊥ element — the state of code not yet reached.
    fn bottom() -> Self;
    /// Least upper bound with `other`, in place; returns `true` when
    /// `self` changed (drives the worklist to fixpoint).
    fn join_from(&mut self, other: &Self) -> bool;
}

/// Runs a forward dataflow analysis to fixpoint over `cfg`. `transfer`
/// mutates the state across one statement. Returns the state at the
/// *entry* of every block; unreached blocks keep [`Lattice::bottom`].
pub fn solve_forward<'a, D: Lattice>(
    cfg: &Cfg<'a>,
    entry_state: D,
    transfer: &mut impl FnMut(&Stmt<'a>, &mut D),
) -> Vec<D> {
    let mut states: Vec<D> = (0..cfg.blocks.len()).map(|_| D::bottom()).collect();
    states[cfg.entry] = entry_state;
    let mut queued = vec![false; cfg.blocks.len()];
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(cfg.entry);
    queued[cfg.entry] = true;
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let mut s = states[b].clone();
        for stmt in &cfg.blocks[b].stmts {
            transfer(stmt, &mut s);
        }
        for &succ in &cfg.blocks[b].succs {
            if states[succ].join_from(&s) && !queued[succ] {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
    }
    states
}

/// Solves the analysis, then replays every block to hand `visit` the
/// state immediately *before* each statement.
pub fn for_each_state<'a, D: Lattice>(
    cfg: &Cfg<'a>,
    entry_state: D,
    transfer: &mut impl FnMut(&Stmt<'a>, &mut D),
    visit: &mut impl FnMut(&Stmt<'a>, &D),
) {
    let states = solve_forward(cfg, entry_state, transfer);
    for (i, block) in cfg.blocks.iter().enumerate() {
        let mut s = states[i].clone();
        for stmt in &block.stmts {
            visit(stmt, &s);
            transfer(stmt, &mut s);
        }
    }
}

/// Solves the analysis and returns the state at the function's single
/// exit block — the effect of the whole body on `entry_state`.
pub fn exit_state<'a, D: Lattice>(
    cfg: &Cfg<'a>,
    entry_state: D,
    transfer: &mut impl FnMut(&Stmt<'a>, &mut D),
) -> D {
    let states = solve_forward(cfg, entry_state, transfer);
    let mut s = states[cfg.exit].clone();
    for stmt in &cfg.blocks[cfg.exit].stmts {
        transfer(stmt, &mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn first_cfg(src: &str) -> (crate::ast::SourceFile, usize) {
        let f = parse_file("crates/x/src/lib.rs", src);
        assert!(f.errors.is_empty(), "parse errors: {:?}", f.errors);
        (f, 0)
    }

    fn build<'a>(f: &'a crate::ast::SourceFile, name: &str) -> Cfg<'a> {
        let mut found = None;
        f.for_each_fn(&mut |_, _, def| {
            if def.name == name && found.is_none() {
                found = Some(def);
            }
        });
        Cfg::build(found.expect("fn present")).expect("fn has body")
    }

    #[test]
    fn straight_line_single_block() {
        let (f, _) = first_cfg("fn f() { let a = 1; let b = a; touch(b); }");
        let cfg = build(&f, "f");
        assert_eq!(cfg.placed_stmts(), 3);
        // Entry holds everything and falls through to exit.
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        // ScopeEnd lists both bindings.
        let last = cfg.blocks[cfg.entry].stmts.last().expect("stmts");
        match last {
            Stmt::ScopeEnd(names) => assert_eq!(names, &["a", "b"]),
            other => panic!("expected ScopeEnd, got {other:?}"),
        }
    }

    #[test]
    fn if_else_branches_and_join() {
        let (f, _) = first_cfg("fn f(c: bool) { if c { one(); } else { two(); } done(); }");
        let cfg = build(&f, "f");
        // cond + one + two + done
        assert_eq!(cfg.placed_stmts(), 4);
        // Entry (holding the condition) branches two ways.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        let reach = cfg.reachable();
        for (i, b) in cfg.blocks.iter().enumerate() {
            if b.stmts.iter().any(|s| matches!(s, Stmt::Expr(_))) {
                assert!(reach[i], "stmt-bearing block {i} unreachable");
            }
        }
    }

    #[test]
    fn while_has_back_edge_and_exit() {
        let (f, _) = first_cfg("fn f() { while cond() { step(); } after(); }");
        let cfg = build(&f, "f");
        assert_eq!(cfg.placed_stmts(), 3);
        // Find the block holding the condition: it has two successors
        // (body, after) and the body eventually edges back to it.
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.succs.len() == 2 && !b.stmts.is_empty())
            .expect("loop header");
        assert!(
            cfg.blocks.iter().any(|b| b.succs.contains(&header)),
            "no back edge to header"
        );
    }

    #[test]
    fn return_edges_to_exit_and_divergence_tracked() {
        let (f, _) = first_cfg("fn f(c: bool) -> u32 { if c { return 1; } 2 }");
        let cfg = build(&f, "f");
        assert_eq!(cfg.placed_stmts(), 3);
        let ret_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| matches!(s, Stmt::Expr(Expr::Return { .. })))
            })
            .expect("return placed");
        assert_eq!(cfg.blocks[ret_block].succs, vec![cfg.exit]);
    }

    #[test]
    fn try_operator_adds_may_exit_edge() {
        let (f, _) = first_cfg("fn f() -> R { let x = open()?; use_it(x); Ok(()) }");
        let cfg = build(&f, "f");
        assert!(
            cfg.blocks[cfg.entry].succs.contains(&cfg.exit),
            "`?` must add a may-exit edge from its block"
        );
    }

    #[test]
    fn break_and_continue_target_enclosing_loop() {
        let (f, _) = first_cfg(
            "fn f() { loop { if done() { break; } if skip() { continue; } work(); } tail(); }",
        );
        let cfg = build(&f, "f");
        // tail() must be reachable (via the break edge).
        let reach = cfg.reachable();
        let tail = cfg
            .blocks
            .iter()
            .position(|b| {
                b.stmts.iter().any(
                    |s| matches!(s, Stmt::Expr(e) if e.text().contains("tail")),
                )
            })
            .expect("tail placed");
        assert!(reach[tail], "code after loop-with-break must be reachable");
    }

    #[test]
    fn nested_loop_break_stays_local() {
        let (f, _) = first_cfg(
            "fn f() { let x = loop { break 1; }; touch(x); }",
        );
        let cfg = build(&f, "f");
        // The statement-level `let` contains a nested loop whose break is
        // local: no edge out of the entry block except fallthrough.
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn closure_jumps_do_not_escape() {
        let (f, _) = first_cfg("fn f(v: V) { v.retain(|x| { return x > 0; }); after(); }");
        let cfg = build(&f, "f");
        assert_eq!(
            cfg.blocks[cfg.entry].succs,
            vec![cfg.exit],
            "closure-internal return must not add a function exit edge"
        );
    }

    #[test]
    fn match_arms_branch_and_join() {
        let (f, _) = first_cfg(
            "fn f(x: u8) { match x { 0 => zero(), 1 => { one(); } _ => other(), } tail(); }",
        );
        let cfg = build(&f, "f");
        // scrutinee + 3 arm bodies + tail
        assert_eq!(cfg.placed_stmts(), 5);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 3);
    }

    #[derive(Clone, PartialEq, Debug)]
    struct Count(u32);
    impl Lattice for Count {
        fn bottom() -> Self {
            Count(0)
        }
        fn join_from(&mut self, other: &Self) -> bool {
            if other.0 > self.0 {
                self.0 = other.0;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn solver_reaches_fixpoint_on_loops() {
        let (f, _) = first_cfg("fn f() { while c() { step(); } done(); }");
        let cfg = build(&f, "f");
        // Max-count lattice saturates: transfer capped keeps it finite.
        let states = solve_forward(&cfg, Count(0), &mut |_, d: &mut Count| {
            d.0 = (d.0 + 1).min(10);
        });
        // Exit state is derivable; no infinite loop, all states bounded.
        assert!(states.iter().all(|s| s.0 <= 10));
        let mut visited = 0;
        for_each_state(
            &cfg,
            Count(0),
            &mut |_, d: &mut Count| d.0 = (d.0 + 1).min(10),
            &mut |_, _| visited += 1,
        );
        assert_eq!(visited as usize, cfg.placed_stmts());
    }

    #[test]
    fn exit_state_summarizes_whole_body() {
        // Branches join at exit: max over both paths; the loop saturates.
        let (f, _) = first_cfg("fn f(c: bool) { if c { one(); } else { two(); three(); } }");
        let cfg = build(&f, "f");
        let out = exit_state(&cfg, Count(0), &mut |_, d: &mut Count| {
            d.0 = (d.0 + 1).min(10);
        });
        // Longest path through the body: cond + two + three + ScopeEnd ≥ 3.
        assert!(out.0 >= 3, "exit state must reflect the longest path, got {}", out.0);
    }
}
