//! The triangular and square expansion motifs.
//!
//! Both motifs are anchored at a **query node** (an article) and identify
//! **expansion nodes** (other articles) through local structure only:
//!
//! * **Triangular** (length-3 cycle, Figure 3a): the query node and the
//!   expansion node are *doubly linked* (each hyperlinks the other) and
//!   the expansion node belongs to **at least the same categories** as the
//!   query node. Every category shared this way closes one triangle, so
//!   the motif count of an expansion node is the number of such triangles.
//!
//! * **Square** (length-4 cycle, Figure 3b): the pair is doubly linked and
//!   **some category of one is inside some category of the other** (a
//!   direct sub-category edge, in either direction). Every such category
//!   pair closes one square.
//!
//! The paper deliberately avoids length-5 cycles for performance; the
//! [`Motif`] trait keeps the design open for other knowledge bases (the
//! paper's future work).

use kbgraph::{ArticleId, CategoryId, KbGraph};

/// Identifies a motif implementation (for configs and display).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifKind {
    /// The length-3 cycle motif.
    Triangular,
    /// The length-4 cycle motif.
    Square,
}

impl MotifKind {
    /// Short display name as used in the paper's tables (T / S).
    pub fn short_name(self) -> &'static str {
        match self {
            MotifKind::Triangular => "T",
            MotifKind::Square => "S",
        }
    }
}

/// A structural expansion motif: maps a query node to expansion articles,
/// each with the number of motif instances it closes.
pub trait Motif: Send + Sync {
    /// Which motif this is.
    fn kind(&self) -> MotifKind;

    /// Appends `(expansion article, instance count)` pairs for
    /// `query_node` to `out` (which is *not* cleared — callers batch
    /// several traversals into one buffer). Counts are ≥ 1; articles
    /// absent from the result close no instance of this motif with the
    /// query node.
    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    );

    /// Enumerates `(expansion article, instance count)` pairs for
    /// `query_node` into a fresh vector (convenience over
    /// [`Motif::expansions_into`]).
    fn expansions(&self, graph: &KbGraph, query_node: ArticleId) -> Vec<(ArticleId, u32)> {
        let mut out = Vec::new();
        self.expansions_into(graph, query_node, &mut out);
        out
    }
}

/// The triangular motif (Figure 3a).
#[derive(Debug, Clone, Copy, Default)]
pub struct Triangular;

impl Motif for Triangular {
    fn kind(&self) -> MotifKind {
        MotifKind::Triangular
    }

    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    ) {
        let query_cats = graph.categories_of(query_node);
        if query_cats.is_empty() {
            // No category evidence ⇒ no triangles.
            return;
        }
        for cand in graph.mutual_links(query_node) {
            if graph.categories_superset(query_node, cand) {
                // cats(cand) ⊇ cats(query): each shared category (i.e.
                // every category of the query node) closes one triangle.
                out.push((cand, query_cats.len() as u32));
            }
        }
    }
}

/// The square motif (Figure 3b).
#[derive(Debug, Clone, Copy, Default)]
pub struct Square;

impl Motif for Square {
    fn kind(&self) -> MotifKind {
        MotifKind::Square
    }

    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    ) {
        let query_cats = graph.categories_of(query_node);
        if query_cats.is_empty() {
            return;
        }
        for cand in graph.mutual_links(query_node) {
            let cand_cats = graph.categories_of(cand);
            if cand_cats.is_empty() {
                continue;
            }
            let mut squares = 0u32;
            for &cq in query_cats {
                for &cc in cand_cats {
                    if cq != cc
                        && graph
                            .category_adjacent(CategoryId::new(cq), CategoryId::new(cc))
                    {
                        squares += 1;
                    }
                }
            }
            if squares > 0 {
                out.push((cand, squares));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;

    /// Paper's Figure 4a example: "cable car" ↔ "funicular", both in the
    /// same categories ⇒ triangular expansion.
    #[test]
    fn triangular_fires_on_figure_4a() {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        let mountain = b.add_category("mountain transport");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        b.add_membership(cable, mountain);
        b.add_membership(funi, mountain);
        let g = b.build();
        let exp = Triangular.expansions(&g, cable);
        assert_eq!(exp, vec![(funi, 2)], "two shared categories, two triangles");
    }

    #[test]
    fn triangular_requires_double_link() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_article_link(a, x); // one-way only
        b.add_membership(a, c);
        b.add_membership(x, c);
        let g = b.build();
        assert!(Triangular.expansions(&g, a).is_empty());
    }

    #[test]
    fn triangular_requires_category_superset() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(a, c2);
        b.add_membership(x, c1); // missing c2 ⇒ not a superset
        let g = b.build();
        assert!(Triangular.expansions(&g, a).is_empty());
        // From x's perspective a IS a superset partner.
        assert_eq!(Triangular.expansions(&g, x), vec![(a, 1)]);
    }

    #[test]
    fn triangular_expansion_may_have_extra_categories() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c1);
        b.add_membership(x, c2);
        let g = b.build();
        assert_eq!(Triangular.expansions(&g, a), vec![(x, 1)]);
    }

    #[test]
    fn uncategorized_query_node_yields_nothing() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        b.add_mutual_link(a, x);
        let g = b.build();
        assert!(Triangular.expansions(&g, a).is_empty());
        assert!(Square.expansions(&g, a).is_empty());
    }

    /// Paper's Figure 4b example: "graffiti" ↔ "Banksy": query node in
    /// "street art", Banksy in "graffiti artists", and one category is
    /// inside the other ⇒ square expansion.
    #[test]
    fn square_fires_on_figure_4b() {
        let mut b = GraphBuilder::new();
        let graffiti = b.add_article("graffiti");
        let banksy = b.add_article("banksy");
        let street_art = b.add_category("street art");
        let artists = b.add_category("graffiti artists");
        b.add_mutual_link(graffiti, banksy);
        b.add_membership(graffiti, street_art);
        b.add_membership(banksy, artists);
        b.add_subcategory(artists, street_art);
        let g = b.build();
        assert_eq!(Square.expansions(&g, graffiti), vec![(banksy, 1)]);
        // The motif is symmetric ("or vice versa").
        assert_eq!(Square.expansions(&g, banksy), vec![(graffiti, 1)]);
    }

    #[test]
    fn square_requires_double_link() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_article_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c2);
        b.add_subcategory(c2, c1);
        let g = b.build();
        assert!(Square.expansions(&g, a).is_empty());
    }

    #[test]
    fn square_requires_category_adjacency() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(x, c2);
        // c1 and c2 unrelated ⇒ no square.
        let g = b.build();
        assert!(Square.expansions(&g, a).is_empty());
    }

    #[test]
    fn square_counts_each_category_pair() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        let d1 = b.add_category("d1");
        let d2 = b.add_category("d2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(a, d1);
        b.add_membership(x, c2);
        b.add_membership(x, d2);
        b.add_subcategory(c2, c1);
        b.add_subcategory(d1, d2);
        let g = b.build();
        assert_eq!(Square.expansions(&g, a), vec![(x, 2)]);
    }

    #[test]
    fn square_ignores_shared_identical_category() {
        // A shared category is the *triangular* pattern, not a square:
        // the square needs two distinct, hierarchy-adjacent categories.
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, x);
        b.add_membership(a, c);
        b.add_membership(x, c);
        let g = b.build();
        assert!(Square.expansions(&g, a).is_empty());
        assert_eq!(Triangular.expansions(&g, a), vec![(x, 1)]);
    }

    #[test]
    fn motif_kinds_and_names() {
        assert_eq!(Triangular.kind().short_name(), "T");
        assert_eq!(Square.kind().short_name(), "S");
    }

    #[test]
    fn expansions_into_appends_without_clearing() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, x);
        b.add_membership(a, c);
        b.add_membership(x, c);
        let g = b.build();
        let sentinel = (ArticleId::new(99), 7);
        let mut out = vec![sentinel];
        Triangular.expansions_into(&g, a, &mut out);
        assert_eq!(out, vec![sentinel, (x, 1)]);
    }
}
