// Fixture: a snapshot loader that reassembles graph state from raw
// section bytes and hands it out with no structural audit anywhere in
// the decoding functions.

pub fn decode_graph(payload: &[u8]) -> Result<KbGraph, StoreError> {
    let mut c = Cursor::new(payload);
    let titles_a = c.get_str_list()?;
    let titles_c = c.get_str_list()?;
    let links = Csr::from_raw_parts(c.get_u32_vec()?, c.get_u32_vec()?);
    let links_rev = Csr::from_raw_parts(c.get_u32_vec()?, c.get_u32_vec()?);
    Ok(KbGraph::from_parts(titles_a, titles_c, links, links_rev))
}
