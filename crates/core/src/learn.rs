//! Automatic motif identification (the paper's future work).
//!
//! Given ground-truth examples — query nodes paired with their *optimal*
//! expansion articles, exactly the resource the paper's Section 2.1
//! analysis consumes — the learner scores every [`PatternMotif`] by how
//! well its expansions match the optimal sets, and ranks them by F1 (or
//! precision / recall). Running it on the synthetic Wikipedia recovers
//! the paper's hand-crafted choice: mutual linking with category
//! superset/adjacency conditions dominates link-only and one-way
//! patterns.

use kbgraph::{ArticleId, KbGraph};
use rustc_hash::FxHashSet;

use crate::motif::Motif;
use crate::pattern::PatternMotif;

/// One training example: a query's nodes and its optimal expansions.
#[derive(Debug, Clone)]
pub struct Example {
    /// The query nodes.
    pub query_nodes: Vec<ArticleId>,
    /// The ground-truth optimal expansion articles.
    pub optimal: Vec<ArticleId>,
}

/// A scored pattern.
#[derive(Debug, Clone)]
pub struct LearnedMotif {
    /// The pattern.
    pub pattern: PatternMotif,
    /// Micro-averaged precision of its expansions against the optima.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
    /// Mean number of expansions per example (the feature-budget axis the
    /// paper discusses: T ≈ 0.76 features, S ≈ 20).
    pub avg_expansions: f64,
}

/// Scoring mode for ranking patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Rank by F1 (balanced; the default).
    F1,
    /// Rank by precision (yields triangular-like patterns — best for
    /// small tops).
    Precision,
    /// Rank by recall (yields square-like patterns — best for large
    /// tops).
    Recall,
}

/// Scores one pattern over the examples.
pub fn score_pattern(
    graph: &KbGraph,
    pattern: PatternMotif,
    examples: &[Example],
) -> LearnedMotif {
    let mut tp = 0usize;
    let mut proposed = 0usize;
    let mut optimal_total = 0usize;
    for ex in examples {
        let optimal: FxHashSet<ArticleId> = ex.optimal.iter().copied().collect();
        optimal_total += optimal.len();
        let mut seen: FxHashSet<ArticleId> = FxHashSet::default();
        for &qn in &ex.query_nodes {
            for (a, _) in pattern.expansions(graph, qn) {
                if !ex.query_nodes.contains(&a) {
                    seen.insert(a);
                }
            }
        }
        proposed += seen.len();
        tp += seen.iter().filter(|a| optimal.contains(a)).count();
    }
    let precision = if proposed == 0 {
        0.0
    } else {
        tp as f64 / proposed as f64
    };
    let recall = if optimal_total == 0 {
        0.0
    } else {
        tp as f64 / optimal_total as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    LearnedMotif {
        pattern,
        precision,
        recall,
        f1,
        avg_expansions: if examples.is_empty() {
            0.0
        } else {
            proposed as f64 / examples.len() as f64
        },
    }
}

/// Scores the whole pattern space and returns it ranked by the
/// objective (best first; ties by pattern name for determinism).
pub fn learn_motifs(
    graph: &KbGraph,
    examples: &[Example],
    objective: Objective,
) -> Vec<LearnedMotif> {
    let mut scored: Vec<LearnedMotif> = PatternMotif::all()
        .into_iter()
        .map(|p| score_pattern(graph, p, examples))
        .collect();
    scored.sort_by(|a, b| {
        let key = |m: &LearnedMotif| match objective {
            Objective::F1 => m.f1,
            Objective::Precision => m.precision,
            Objective::Recall => m.recall,
        };
        scorecmp::by_score_desc_then_id(key(a), key(b), a.pattern.name(), b.pattern.name())
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{CategoryCondition, LinkCondition};
    use kbgraph::GraphBuilder;

    /// A world where optimal expansions are exactly the mutual+shared-cat
    /// partners; one-way neighbours and cat-free mutual partners are not
    /// optimal.
    fn world() -> (KbGraph, Vec<Example>) {
        let mut b = GraphBuilder::new();
        let c = b.add_category("c");
        let mut examples = Vec::new();
        for i in 0..6 {
            let q = b.add_article(&format!("q{i}"));
            let good = b.add_article(&format!("good{i}"));
            let oneway = b.add_article(&format!("oneway{i}"));
            let linkonly = b.add_article(&format!("linkonly{i}"));
            b.add_membership(q, c);
            b.add_membership(good, c);
            b.add_membership(oneway, c);
            b.add_mutual_link(q, good);
            b.add_article_link(q, oneway);
            b.add_mutual_link(q, linkonly); // mutual but no categories
            examples.push((q, good));
        }
        let g = b.build();
        let examples = examples
            .into_iter()
            .map(|(q, good)| Example {
                query_nodes: vec![q],
                optimal: vec![good],
            })
            .collect();
        (g, examples)
    }

    #[test]
    fn learner_recovers_the_papers_choice() {
        let (g, examples) = world();
        let ranked = learn_motifs(&g, &examples, Objective::F1);
        let best = &ranked[0];
        assert_eq!(best.pattern.link, LinkCondition::Mutual, "best: {}", best.pattern.name());
        assert!(
            matches!(
                best.pattern.category,
                CategoryCondition::Superset | CategoryCondition::SharedAny
            ),
            "best: {}",
            best.pattern.name()
        );
        assert!((best.f1 - 1.0).abs() < 1e-9, "perfect on this toy world");
    }

    #[test]
    fn link_only_patterns_score_lower() {
        let (g, examples) = world();
        let ranked = learn_motifs(&g, &examples, Objective::Precision);
        let mutual_free = ranked
            .iter()
            .find(|m| {
                m.pattern.link == LinkCondition::Mutual
                    && m.pattern.category == CategoryCondition::Unconstrained
            })
            .unwrap();
        // Link-only proposes `linkonly*` too: precision 0.5.
        assert!((mutual_free.precision - 0.5).abs() < 1e-9);
        assert!(ranked[0].precision > mutual_free.precision);
    }

    #[test]
    fn precision_recall_bounds() {
        let (g, examples) = world();
        for m in learn_motifs(&g, &examples, Objective::F1) {
            assert!((0.0..=1.0).contains(&m.precision), "{}", m.pattern.name());
            assert!((0.0..=1.0).contains(&m.recall));
            assert!((0.0..=1.0).contains(&m.f1));
            assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
        }
    }

    #[test]
    fn empty_examples_are_harmless() {
        let (g, _) = world();
        let ranked = learn_motifs(&g, &[], Objective::F1);
        assert_eq!(ranked.len(), 12);
        assert!(ranked.iter().all(|m| m.f1 == 0.0));
    }

    #[test]
    fn recall_objective_prefers_broader_patterns() {
        let (g, examples) = world();
        let by_recall = learn_motifs(&g, &examples, Objective::Recall);
        // Any top-recall pattern must reach every optimal node here.
        assert!((by_recall[0].recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn avg_expansions_reports_feature_budget() {
        let (g, examples) = world();
        let scored = score_pattern(
            &g,
            PatternMotif {
                link: LinkCondition::Mutual,
                category: CategoryCondition::Unconstrained,
            },
            &examples,
        );
        // Two mutual partners per query node.
        assert!((scored.avg_expansions - 2.0).abs() < 1e-9);
    }
}
