// Fixture: pass the data, not the guard. The critical section ends
// inside `pin` (explicit drop before the call); the helpers store a
// plain snapshot, so nothing holds the lock open beyond the acquiring
// function.

fn keep(&mut self, rows: Vec<u32>) {
    self.parked = Some(rows);
}

fn stash(&mut self, rows: Vec<u32>) {
    self.keep(rows);
}

pub fn pin(&mut self) {
    let g = self.live.lock().unwrap();
    let snapshot = g.clone();
    drop(g);
    self.stash(snapshot);
}
