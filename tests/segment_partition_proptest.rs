//! Property wall for the segmented architecture's core guarantee: *any*
//! partition of a collection into contiguous segments produces run files
//! byte-identical to the monolithic index — for every dataset and every
//! motif configuration (SQE_T, SQE_S, SQE_T&S, SQE_C).
//!
//! Byte-identity holds because the [`searchlite::Searcher`] merges
//! corpus-wide statistics as exact integers before any floating-point
//! scoring happens; there is no per-segment score that gets combined
//! after the fact.
//!
//! The second wall extends the guarantee across *shards*: any hash
//! routing of the collection over 1–8 shards (each shard its own
//! segmented index) served through [`sqe::ShardedService`]'s
//! scatter-gather must reproduce the same run files, because global
//! corpus statistics are gathered as exact integer sums before any
//! shard scores a document.

use std::sync::OnceLock;

use kbgraph::ArticleId;
use proptest::prelude::*;
use searchlite::{Analyzer, Index, IndexBuilder, QlParams, Searcher, Segment, ShardRouter};
use sqe::{MotifSet, ServeConfig, ShardedService, SqeConfig, SqePipeline};
use synthwiki::{TestBed, TestBedConfig};

const DATASETS: [&str; 3] = ["imageclef", "chic2012", "chic2013"];
const NUM_CONFIGS: usize = 4;

/// The motif configuration under test: a named [`MotifSet`] for the
/// plain SQE variants, or `None` for SQE_C (rank_sqe_c fixes its own
/// stages).
fn motif_config(cfg_idx: usize) -> (&'static str, Option<MotifSet>) {
    match cfg_idx {
        0 => ("SQE_T", Some(MotifSet::triangular())),
        1 => ("SQE_S", Some(MotifSet::square())),
        2 => ("SQE_TS", Some(MotifSet::t_and_s())),
        _ => ("SQE_C", None),
    }
}

fn config() -> SqeConfig {
    SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    }
}

struct World {
    bed: TestBed,
    indexes: Vec<Index>,
    /// `references[ds][cfg]` = the monolithic run file for that pair.
    references: Vec<Vec<String>>,
    /// `batches[ds]` = (query text, linked nodes) for every query.
    batches: Vec<Vec<(String, Vec<ArticleId>)>>,
}

fn rank_ids(
    pipeline: &SqePipeline<'_>,
    batch: &[(String, Vec<ArticleId>)],
    cfg_idx: usize,
) -> Vec<Vec<String>> {
    let (_, motifs) = motif_config(cfg_idx);
    batch
        .iter()
        .map(|(text, nodes)| match &motifs {
            None => pipeline.rank_sqe_c(text, nodes),
            Some(motifs) => pipeline.external_ids(&pipeline.rank_sqe(text, nodes, motifs).0),
        })
        .collect()
}

fn run_file(bed: &TestBed, ds_idx: usize, cfg_idx: usize, rankings: &[Vec<String>]) -> String {
    let dataset = bed.dataset(DATASETS[ds_idx]);
    let mut run = ireval::Run::new(motif_config(cfg_idx).0);
    for (q, ids) in dataset.queries.iter().zip(rankings) {
        run.set_ranking(&q.id, ids.clone());
    }
    ireval::trec::write_run(&run)
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let bed = TestBed::generate(&TestBedConfig::small());
        let indexes: Vec<Index> = bed
            .collections
            .iter()
            .map(|coll| {
                let mut b = IndexBuilder::new(Analyzer::english());
                for d in &coll.docs {
                    b.add_document(&d.id, &d.text).expect("generated ids are unique");
                }
                b.build()
            })
            .collect();
        let batches: Vec<Vec<(String, Vec<ArticleId>)>> = DATASETS
            .iter()
            .map(|name| {
                bed.dataset(name)
                    .queries
                    .iter()
                    .map(|q| {
                        let nodes =
                            q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
                        (q.text.clone(), nodes)
                    })
                    .collect()
            })
            .collect();
        let references: Vec<Vec<String>> = DATASETS
            .iter()
            .enumerate()
            .map(|(ds_idx, name)| {
                let dataset = bed.dataset(name);
                let pipeline = SqePipeline::from_index(
                    &bed.kb.graph,
                    &indexes[dataset.collection],
                    config(),
                );
                (0..NUM_CONFIGS)
                    .map(|cfg_idx| {
                        let ids = rank_ids(&pipeline, &batches[ds_idx], cfg_idx);
                        run_file(&bed, ds_idx, cfg_idx, &ids)
                    })
                    .collect()
            })
            .collect();
        World {
            bed,
            indexes,
            references,
            batches,
        }
    })
}

/// Splits a collection at the (deduplicated, sorted) cut positions and
/// indexes each non-empty contiguous chunk as its own segment.
fn partitioned_searcher(w: &World, ds_idx: usize, raw_cuts: &[usize]) -> Searcher {
    let dataset = w.bed.dataset(DATASETS[ds_idx]);
    let coll = w.bed.collection_of(dataset);
    let n = coll.docs.len();
    let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % n).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();

    let analyzer = w.indexes[dataset.collection].analyzer().clone();
    let mut segments = Vec::new();
    for (seg_id, bounds) in cuts.windows(2).enumerate() {
        let (start, end) = (bounds[0], bounds[1]);
        if start == end {
            continue;
        }
        let mut b = IndexBuilder::new(analyzer.clone());
        for d in &coll.docs[start..end] {
            b.add_document(&d.id, &d.text).expect("generated ids are unique");
        }
        segments.push(std::sync::Arc::new(Segment::new(seg_id as u64, b.build())));
    }
    Searcher::new(analyzer, segments, 0)
}

/// Builds the dataset's collection as a sharded service under the given
/// routing (shard count + salt), sealing every shard once at the end.
fn sharded_service<'a>(w: &'a World, ds_idx: usize, shards: usize, salt: u64) -> ShardedService<'a> {
    let dataset = w.bed.dataset(DATASETS[ds_idx]);
    let coll = w.bed.collection_of(dataset);
    let analyzer = w.indexes[dataset.collection].analyzer().clone();
    let service = ShardedService::new(
        &w.bed.kb.graph,
        analyzer,
        ShardRouter::with_salt(shards, salt),
        config(),
        ServeConfig {
            workers: 1,
            cache_capacity: 256,
            ..ServeConfig::default()
        },
    );
    for d in &coll.docs {
        service
            .add_document(&d.id, &d.text)
            .expect("generated ids are unique");
    }
    service.seal_all();
    service
}

fn rank_ids_sharded(
    service: &ShardedService<'_>,
    batch: &[(String, Vec<ArticleId>)],
    cfg_idx: usize,
) -> Vec<Vec<String>> {
    let (_, motifs) = motif_config(cfg_idx);
    batch
        .iter()
        .map(|(text, nodes)| match &motifs {
            None => service.rank_sqe_c(text, nodes),
            Some(motifs) => service.external_ids(&service.rank_sqe(text, nodes, motifs)),
        })
        .collect()
}

proptest! {
    /// Any contiguous partition into up to ~6 segments reproduces the
    /// monolithic run file byte for byte, on a random (dataset, motif
    /// config) pair each case.
    #[test]
    fn any_partition_reproduces_monolithic_run_files(
        ds_idx in 0usize..3,
        cfg_idx in 0usize..4,
        raw_cuts in prop::collection::vec(0usize..1 << 24, 0..6),
    ) {
        let w = world();
        let searcher = partitioned_searcher(w, ds_idx, &raw_cuts);
        let pipeline = SqePipeline::new(&w.bed.kb.graph, searcher, config());
        let ids = rank_ids(&pipeline, &w.batches[ds_idx], cfg_idx);
        let got = run_file(&w.bed, ds_idx, cfg_idx, &ids);
        prop_assert_eq!(
            &got,
            &w.references[ds_idx][cfg_idx],
            "{} segments over {} diverged from the monolithic {} run",
            pipeline.searcher().num_segments(),
            DATASETS[ds_idx],
            motif_config(cfg_idx).0
        );
    }
}

proptest! {
    /// Any hash routing over 1–8 shards reproduces the monolithic run
    /// file byte for byte, on a random (dataset, motif config, shard
    /// count, salt) tuple each case. The salt permutes the routing, so
    /// every case exercises a different document-to-shard assignment.
    #[test]
    fn any_shard_routing_reproduces_monolithic_run_files(
        ds_idx in 0usize..3,
        cfg_idx in 0usize..4,
        shards in 1usize..=8,
        salt in 0u64..u64::MAX,
    ) {
        let w = world();
        let service = sharded_service(w, ds_idx, shards, salt);
        let ids = rank_ids_sharded(&service, &w.batches[ds_idx], cfg_idx);
        let got = run_file(&w.bed, ds_idx, cfg_idx, &ids);
        prop_assert_eq!(
            &got,
            &w.references[ds_idx][cfg_idx],
            "{} shards (salt {:#x}) over {} diverged from the monolithic {} run",
            shards,
            salt,
            DATASETS[ds_idx],
            motif_config(cfg_idx).0
        );
    }
}
