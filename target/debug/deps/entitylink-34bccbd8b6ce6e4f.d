/root/repo/target/debug/deps/entitylink-34bccbd8b6ce6e4f.d: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

/root/repo/target/debug/deps/libentitylink-34bccbd8b6ce6e4f.rlib: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

/root/repo/target/debug/deps/libentitylink-34bccbd8b6ce6e4f.rmeta: crates/entitylink/src/lib.rs crates/entitylink/src/corpus.rs crates/entitylink/src/dictionary.rs crates/entitylink/src/linker.rs crates/entitylink/src/noise.rs crates/entitylink/src/spotter.rs

crates/entitylink/src/lib.rs:
crates/entitylink/src/corpus.rs:
crates/entitylink/src/dictionary.rs:
crates/entitylink/src/linker.rs:
crates/entitylink/src/noise.rs:
crates/entitylink/src/spotter.rs:
