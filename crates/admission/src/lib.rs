//! Admission control and degraded serving for the SQE query service.
//!
//! Under open-loop load (arrivals do not wait for completions), a serving
//! system without admission control exhibits queueing collapse: latency
//! grows without bound while throughput stays pinned at capacity. This
//! crate provides the pieces the serving layer wires together to stay
//! *predictably degraded* instead:
//!
//! * [`Deadline`] — a per-request completion deadline in injected-clock
//!   nanoseconds. Library code never reads a wall clock; the service's
//!   `Clock` supplies `now`, so tests drive a manual clock and the whole
//!   admission path stays bit-deterministic.
//! * [`ServeOutcome`] — the typed result of a deadline-aware serve call:
//!   full-quality `Ok`, `Degraded` at a cheaper ladder rung, `Shed`
//!   before any work ran, or `DeadlineExceeded` at a stage boundary.
//! * [`AdmissionController`] — rejects *before* work is enqueued, via a
//!   bounded pending-work queue, a deterministic integer token bucket,
//!   and CoDel-style queue-delay shedding at dequeue time. All decisions
//!   are pure functions of `(config, call order, supplied now)` — the
//!   controller itself holds no clock and no entropy source.
//! * [`select_rung`] — the degraded-mode ladder rule: pick the highest
//!   quality rung of the service's motif ladder (by default `SQE_T&S` →
//!   `SQE_T` → unexpanded) whose estimated cost fits the remaining
//!   deadline budget. The ladder is an ordered list of motif-set rungs
//!   owned by the serving layer; admission sees only the per-rung cost
//!   estimates and names the chosen rung with a [`RungId`].
//!
//! The service layer (`sqe::serve`, `sqe::sharded`) owns the clock, the
//! per-rung cost estimates (maintained from its latency histograms) and
//! the metrics; this crate owns the decisions.

pub mod controller;
pub mod deadline;
pub mod ladder;
pub mod outcome;

pub use controller::{AdmissionConfig, AdmissionController, Ticket};
pub use deadline::{Deadline, Stage};
pub use ladder::select_rung;
pub use outcome::{RungId, ServeOutcome, ShedReason};
