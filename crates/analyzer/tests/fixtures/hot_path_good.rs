// Fixture: the fixed version of hot_path_bad.rs — expect names the
// violated invariant, bounds are handled, and test-module unwraps are
// exempt.

pub fn top_score(scores: &[f64]) -> f64 {
    let first = scores
        .first()
        .expect("invariant: caller guarantees a non-empty score list");
    let second = scores.get(1).copied().unwrap_or(f64::NEG_INFINITY);
    first.max(second)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
