/root/repo/target/debug/deps/linker_integration-796b4b18c8258c4e.d: tests/linker_integration.rs

/root/repo/target/debug/deps/linker_integration-796b4b18c8258c4e: tests/linker_integration.rs

tests/linker_integration.rs:
