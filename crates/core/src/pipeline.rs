//! End-to-end SQE retrieval pipeline.
//!
//! Binds a KB graph and a document index and exposes every retrieval
//! configuration of the paper's evaluation: the `QL` baselines, the three
//! motif configurations, the combined `SQE_C`, and the ground-truth upper
//! bound `SQE^UB`.

use kbgraph::{ArticleId, KbGraph};
use searchlite::ql::{self, QlParams, QlScratch, SearchHit};
use searchlite::{Index, Query, Searcher};

use crate::combine;
use crate::expand::{self, ExpandConfig, ExpandedQuery};
use crate::query_graph::{QueryGraph, QueryGraphBuilder, QueryGraphScratch};
use crate::spec::MotifSet;

/// Reusable per-worker buffers for batch SQE serving: motif-traversal
/// scratch plus retrieval scratch. One instance per worker thread.
#[derive(Debug, Default)]
pub struct SqeScratch {
    pub(crate) qg: QueryGraphScratch,
    pub(crate) ql: QlScratch,
}

impl SqeScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        SqeScratch::default()
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqeConfig {
    /// Query-part weights.
    pub expand: ExpandConfig,
    /// Retrieval-model parameters.
    pub ql: QlParams,
    /// Ranked-list depth (trec_eval evaluates down to P@1000).
    pub depth: usize,
}

impl Default for SqeConfig {
    fn default() -> Self {
        SqeConfig {
            expand: ExpandConfig::default(),
            ql: QlParams::default(),
            depth: 1000,
        }
    }
}

/// The SQE pipeline over one KB and one collection view.
///
/// Retrieval goes through a [`Searcher`] — a merged read view over one
/// or more immutable segments — so a pipeline built from a monolithic
/// index and one built from any partition of the same documents score
/// byte-identically.
pub struct SqePipeline<'a> {
    graph: &'a KbGraph,
    searcher: Searcher,
    cfg: SqeConfig,
}

impl<'a> SqePipeline<'a> {
    /// Creates a pipeline over a segmented searcher view.
    ///
    /// In debug builds with the default `validate` feature, the graph and
    /// every segment are run through their structural auditors first, so a
    /// graph or index corrupted in persistence fails loudly here instead
    /// of producing silently wrong rankings downstream.
    pub fn new(graph: &'a KbGraph, searcher: Searcher, cfg: SqeConfig) -> Self {
        #[cfg(all(debug_assertions, feature = "validate"))]
        {
            kbgraph::audit::GraphAudit::run(graph).assert_clean("SqePipeline::new");
            for seg in searcher.segments() {
                searchlite::audit::IndexAudit::run(seg.index()).assert_clean("SqePipeline::new");
            }
        }
        SqePipeline {
            graph,
            searcher,
            cfg,
        }
    }

    /// Convenience constructor over a single monolithic index: wraps it in
    /// a one-segment [`Searcher`] (the index is cloned into the segment).
    pub fn from_index(graph: &'a KbGraph, index: &Index, cfg: SqeConfig) -> Self {
        SqePipeline::new(graph, Searcher::from_index(index.clone()), cfg)
    }

    /// Creates a pipeline over a loaded binary snapshot — the cold-start
    /// path. The snapshot's structures were already checksum-verified,
    /// shape-validated and audited at decode, so this only resolves the
    /// collection into a searcher view (over however many segments the
    /// snapshot holds); no JSON and no regeneration is involved.
    pub fn from_snapshot(
        snapshot: &'a sqe_store::Snapshot,
        collection: &str,
        cfg: SqeConfig,
    ) -> Result<Self, sqe_store::StoreError> {
        let searcher = snapshot.searcher(collection)?;
        Ok(SqePipeline::new(snapshot.graph(), searcher, cfg))
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &SqeConfig {
        &self.cfg
    }

    /// The KB graph.
    pub fn graph(&self) -> &KbGraph {
        self.graph
    }

    /// The merged searcher view over the collection's segments.
    pub fn searcher(&self) -> &Searcher {
        &self.searcher
    }

    fn rank(&self, query: &Query) -> Vec<SearchHit> {
        ql::rank(&self.searcher, query, self.cfg.ql, self.cfg.depth)
    }

    /// Converts hits to external document ids.
    pub fn external_ids(&self, hits: &[SearchHit]) -> Vec<String> {
        hits.iter()
            .map(|h| self.searcher.external_id(h.doc).to_owned())
            .collect()
    }

    // ------------------------------------------------------ baselines --

    /// `QL_Q`: the user's keywords only.
    pub fn rank_user(&self, text: &str) -> Vec<SearchHit> {
        let q = expand::user_part(text, self.searcher.analyzer());
        self.rank(&q)
    }

    /// [`SqePipeline::rank_user`] against a caller-owned scratch — the
    /// sequential reference for the serving layer's unexpanded
    /// degraded-mode rung.
    pub fn rank_user_with_scratch(&self, text: &str, scratch: &mut SqeScratch) -> Vec<SearchHit> {
        let q = expand::user_part(text, self.searcher.analyzer());
        ql::rank_with_scratch(&self.searcher, &q, self.cfg.ql, self.cfg.depth, &mut scratch.ql)
    }

    /// `QL_E`: the query-entity titles only, as a keyword bag (the
    /// baseline runs titles through plain query likelihood).
    pub fn rank_entities(&self, nodes: &[ArticleId]) -> Vec<SearchHit> {
        let q = expand::entities_bag_part(self.graph, nodes, self.searcher.analyzer());
        self.rank(&q)
    }

    /// `QL_Q&E`: user keywords and entity-title keywords, equally
    /// weighted.
    pub fn rank_user_entities(&self, text: &str, nodes: &[ArticleId]) -> Vec<SearchHit> {
        let user = expand::user_part(text, self.searcher.analyzer());
        let ents = expand::entities_bag_part(self.graph, nodes, self.searcher.analyzer());
        let q = Query::combine(&[(user, 0.5), (ents, 0.5)]);
        self.rank(&q)
    }

    /// `QL_X`: the expansion features alone (used in Figure 6 to show
    /// that isolated expansion features *hurt*).
    pub fn rank_expansion_only(&self, qg: &QueryGraph) -> Vec<SearchHit> {
        let q = expand::expansion_part(
            self.graph,
            qg,
            self.searcher.analyzer(),
            self.cfg.expand.max_expansions,
        );
        self.rank(&q)
    }

    // ------------------------------------------------------------ SQE --

    /// Builds the query graph for the given motif set.
    pub fn build_query_graph(&self, nodes: &[ArticleId], motifs: &MotifSet) -> QueryGraph {
        QueryGraphBuilder::from_set(self.graph, motifs).build(nodes)
    }

    /// Expands a query with the given motif set.
    pub fn expand(&self, text: &str, nodes: &[ArticleId], motifs: &MotifSet) -> ExpandedQuery {
        let qg = self.build_query_graph(nodes, motifs);
        expand::build_expanded_query(
            self.graph,
            text,
            &qg,
            self.searcher.analyzer(),
            &self.cfg.expand,
        )
    }

    /// `SQE` retrieval under any motif set — the paper's `SQE_T`,
    /// `SQE_S` and `SQE_T&S` are [`MotifSet::triangular`],
    /// [`MotifSet::square`] and [`MotifSet::t_and_s`].
    pub fn rank_sqe(
        &self,
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
    ) -> (Vec<SearchHit>, QueryGraph) {
        self.rank_sqe_with_scratch(text, nodes, motifs, &mut SqeScratch::new())
    }

    /// [`SqePipeline::rank_sqe`] with caller-owned scratch buffers;
    /// identical output.
    pub fn rank_sqe_with_scratch(
        &self,
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> (Vec<SearchHit>, QueryGraph) {
        let qg = QueryGraphBuilder::from_set(self.graph, motifs)
            .build_with_scratch(nodes, &mut scratch.qg);
        let query = expand::build_query(
            self.graph,
            text,
            &qg.query_nodes,
            &qg.expansions,
            self.searcher.analyzer(),
            &self.cfg.expand,
        );
        let hits =
            ql::rank_with_scratch(&self.searcher, &query, self.cfg.ql, self.cfg.depth, &mut scratch.ql);
        (hits, qg)
    }

    /// `SQE^UB`: expansion from externally supplied (ground-truth)
    /// expansion nodes instead of motif traversal.
    pub fn rank_with_expansions(
        &self,
        text: &str,
        nodes: &[ArticleId],
        expansions: &[(ArticleId, u32)],
    ) -> Vec<SearchHit> {
        let qg = QueryGraph {
            query_nodes: nodes.to_vec(),
            expansions: expansions.to_vec(),
        };
        let eq = expand::build_expanded_query(
            self.graph,
            text,
            &qg,
            self.searcher.analyzer(),
            &self.cfg.expand,
        );
        self.rank(&eq.query)
    }

    /// Batch `SQE` retrieval over many queries, spread across `threads`
    /// workers via the work-stealing executor (the parallelization the
    /// paper's Section 4.4 suggests would trivially reduce its expansion
    /// times). Results keep input order; each entry is the ranked hit
    /// list of the corresponding `(text, nodes)` pair.
    pub fn rank_sqe_many(
        &self,
        queries: &[(String, Vec<ArticleId>)],
        motifs: &MotifSet,
        threads: usize,
    ) -> Vec<Vec<SearchHit>> {
        crate::serve::run_indexed(queries, threads, SqeScratch::new, |(text, nodes), scratch| {
            self.rank_sqe_with_scratch(text, nodes, motifs, scratch).0
        })
    }

    /// `SQE_C`: the paper's rank-range combination — ranks 1–5 from
    /// `SQE_T`, 6–200 from `SQE_T&S`, the rest from `SQE_S`. Returns
    /// external document ids (the form trec_eval consumes).
    pub fn rank_sqe_c(&self, text: &str, nodes: &[ArticleId]) -> Vec<String> {
        let (t, _) = self.rank_sqe(text, nodes, &MotifSet::triangular());
        let (ts, _) = self.rank_sqe(text, nodes, &MotifSet::t_and_s());
        let (s, _) = self.rank_sqe(text, nodes, &MotifSet::square());
        combine::sqe_c(
            &self.external_ids(&t),
            &self.external_ids(&ts),
            &self.external_ids(&s),
            self.cfg.depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;
    use searchlite::{Analyzer, IndexBuilder};

    /// A miniature world: two doubly-linked articles in one category;
    /// documents about each; the expansion should pull in funicular docs
    /// for a cable-car query.
    fn world() -> (KbGraph, Index, ArticleId) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let cat = b.add_category("mountain railways");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, cat);
        b.add_membership(funi, cat);
        let graph = b.build();

        let mut ib = IndexBuilder::new(Analyzer::plain());
        ib.add_document("d-cable-0", "cable car climbing the peak").expect("unique test ids");
        ib.add_document("d-funi-0", "old funicular near the village").expect("unique test ids");
        ib.add_document("d-funi-1", "the funicular station entrance").expect("unique test ids");
        ib.add_document("d-noise-0", "a market square with fruit").expect("unique test ids");
        let index = ib.build();
        (graph, index, cable)
    }

    #[test]
    fn baseline_misses_expansion_docs() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let hits = p.rank_user("cable car");
        let ids = p.external_ids(&hits);
        assert!(ids.contains(&"d-cable-0".to_owned()));
        assert!(!ids.contains(&"d-funi-0".to_owned()));
        let _ = cable;
    }

    #[test]
    fn sqe_t_reaches_funicular_documents() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let (hits, qg) = p.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        assert_eq!(qg.num_expansions(), 1);
        let ids = p.external_ids(&hits);
        assert!(ids.contains(&"d-funi-0".to_owned()));
        assert!(ids.contains(&"d-funi-1".to_owned()));
        assert!(!ids.contains(&"d-noise-0".to_owned()));
    }

    #[test]
    fn square_motif_finds_nothing_here() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let qg = p.build_query_graph(&[cable], &MotifSet::square());
        assert_eq!(qg.num_expansions(), 0, "shared category is not a square");
    }

    #[test]
    fn expansion_only_ranks_only_expansion_docs_on_top() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let qg = p.build_query_graph(&[cable], &MotifSet::triangular());
        let hits = p.rank_expansion_only(&qg);
        let ids = p.external_ids(&hits);
        assert!(ids[0].starts_with("d-funi"));
    }

    #[test]
    fn ground_truth_expansion_api() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let funi = graph.find_article_by_title("funicular").unwrap();
        let hits = p.rank_with_expansions("cable car", &[cable], &[(funi, 2)]);
        let ids = p.external_ids(&hits);
        assert!(ids.contains(&"d-funi-0".to_owned()));
    }

    #[test]
    fn sqe_c_combines_and_dedups() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let ids = p.rank_sqe_c("cable car", &[cable]);
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "no duplicates");
        assert!(!ids.is_empty());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let queries: Vec<(String, Vec<ArticleId>)> = vec![
            ("cable car".into(), vec![cable]),
            ("funicular station".into(), vec![cable]),
            ("market fruit".into(), vec![]),
        ];
        let seq = p.rank_sqe_many(&queries, &MotifSet::t_and_s(), 1);
        let par = p.rank_sqe_many(&queries, &MotifSet::t_and_s(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pipeline_from_snapshot_matches_fresh() {
        let (graph, index, cable) = world();
        let dict = entitylink::Dictionary::new();
        let segments = [&index];
        let named = [("world", &segments[..])];
        let bytes = sqe_store::encode_snapshot(&sqe_store::SnapshotContents {
            graph: &graph,
            collections: &named,
            dict: &dict,
        })
        .unwrap();
        let snap = sqe_store::Snapshot::from_bytes(&bytes).unwrap();
        let fresh = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let loaded = SqePipeline::from_snapshot(&snap, "world", SqeConfig::default()).unwrap();
        let (h1, qg1) = fresh.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        let (h2, qg2) = loaded.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        assert_eq!(h1, h2);
        assert_eq!(qg1.expansions, qg2.expansions);
        assert!(matches!(
            SqePipeline::from_snapshot(&snap, "missing", SqeConfig::default()),
            Err(sqe_store::StoreError::NoSuchCollection { .. })
        ));
    }

    #[test]
    fn segmented_pipeline_matches_monolithic() {
        use searchlite::Segment;
        use std::sync::Arc;
        let (graph, index, cable) = world();
        // The same four documents, split across two segments.
        let mut a = IndexBuilder::new(Analyzer::plain());
        a.add_document("d-cable-0", "cable car climbing the peak").expect("unique test ids");
        a.add_document("d-funi-0", "old funicular near the village").expect("unique test ids");
        let mut b = IndexBuilder::new(Analyzer::plain());
        b.add_document("d-funi-1", "the funicular station entrance").expect("unique test ids");
        b.add_document("d-noise-0", "a market square with fruit").expect("unique test ids");
        let searcher = Searcher::new(
            Analyzer::plain(),
            vec![Arc::new(Segment::new(0, a.build())), Arc::new(Segment::new(1, b.build()))],
            0,
        );
        let mono = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let segp = SqePipeline::new(&graph, searcher, SqeConfig::default());
        let (h1, qg1) = mono.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        let (h2, qg2) = segp.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        assert_eq!(qg1.expansions, qg2.expansions);
        assert_eq!(mono.external_ids(&h1), segp.external_ids(&h2));
        for (x, y) in h1.iter().zip(h2.iter()) {
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "scores must be bit-identical");
        }
    }

    #[test]
    fn entities_baseline_uses_phrase() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let hits = p.rank_entities(&[cable]);
        let ids = p.external_ids(&hits);
        assert_eq!(ids[0], "d-cable-0");
    }

    #[test]
    fn user_entities_baseline_combines() {
        let (graph, index, cable) = world();
        let p = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let hits = p.rank_user_entities("peak climbing", &[cable]);
        assert!(!hits.is_empty());
        let ids = p.external_ids(&hits);
        assert_eq!(ids[0], "d-cable-0");
    }
}
