//! `experiments store-bench`: cold-start measurement for the snapshot
//! store.
//!
//! Compares the three ways a service can obtain its working state:
//!
//! * **regenerate** — build the synthetic world from scratch
//!   (generation + indexing + linker dictionary), the pre-store status
//!   quo of every boot;
//! * **json** — decode the KB graph and every collection index from the
//!   JSON persistence strings (`KbGraph::from_json`,
//!   `Index::from_json`);
//! * **snapshot** — decode the single binary snapshot
//!   ([`sqe_store::Snapshot::from_bytes`]), which additionally restores
//!   the linker dictionary and runs the full structural audits.
//!
//! Timings use the warmup + median-of-k [`TimingProtocol`]. The report
//! is written to `BENCH_store.json`; CI runs `--smoke` on the small bed
//! and archives the file, and the acceptance bar is a ≥5× speedup of
//! the snapshot path over the JSON path on `TestBedConfig::small()`.

use std::io;
use std::path::Path;

use serde::Serialize;
use sqe_store::{encode_snapshot, Snapshot, SnapshotContents};
use synthwiki::TestBedConfig;

use crate::context::ExperimentContext;
use crate::timing::{measure_ms, TimingProtocol};

/// Store-bench options.
#[derive(Debug, Clone, Copy)]
pub struct StoreBenchOptions {
    /// Timing protocol for every measured path.
    pub protocol: TimingProtocol,
}

impl Default for StoreBenchOptions {
    fn default() -> Self {
        StoreBenchOptions {
            protocol: TimingProtocol::default(),
        }
    }
}

impl StoreBenchOptions {
    /// The CI smoke preset: fewer samples, same coverage.
    pub fn smoke() -> Self {
        StoreBenchOptions {
            protocol: TimingProtocol {
                warmup: 1,
                samples: 3,
                inner_iters: 1,
            },
        }
    }
}

/// The whole store-bench report (`BENCH_store.json`).
#[derive(Debug, Clone, Serialize)]
pub struct StoreBenchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Timed samples per path (median reported).
    pub samples: usize,
    /// Collections persisted.
    pub collections: Vec<String>,
    /// Milliseconds to regenerate the whole world from scratch.
    pub regenerate_ms: f64,
    /// Total bytes of the JSON persistence strings (graph + indexes).
    pub json_bytes: u64,
    /// Milliseconds to decode graph + all indexes from JSON.
    pub json_load_ms: f64,
    /// Bytes of the binary snapshot (graph + indexes + dictionary).
    pub snapshot_bytes: u64,
    /// Milliseconds to decode + audit the snapshot.
    pub snapshot_load_ms: f64,
    /// `json_load_ms / snapshot_load_ms`.
    pub speedup_vs_json: f64,
    /// `regenerate_ms / snapshot_load_ms`.
    pub speedup_vs_regenerate: f64,
}

/// Runs the cold-start comparison on the given test-bed config.
pub fn run_store_bench(
    cfg: &TestBedConfig,
    context_name: &str,
    opts: &StoreBenchOptions,
) -> StoreBenchReport {
    let protocol = opts.protocol;

    // Path 1: full regeneration (what every boot did before the store).
    let regenerate_ms = measure_ms(protocol, || {
        let ctx = ExperimentContext::from_config(cfg);
        std::hint::black_box(ctx.indexes.len());
    });

    // One context provides the state the persistence paths serialize.
    let ctx = ExperimentContext::from_config(cfg);
    let graph = &ctx.bed.kb.graph;
    let collections: Vec<String> = ctx
        .bed
        .collections
        .iter()
        .map(|c| c.name.clone())
        .collect();

    // Path 2: the JSON strings (graph + one string per index).
    let graph_json = graph.to_json().expect("graph serializes to JSON");
    let index_jsons: Vec<String> = ctx
        .indexes
        .iter()
        .map(|i| i.to_json().expect("index serializes to JSON"))
        .collect();
    let json_bytes =
        (graph_json.len() + index_jsons.iter().map(String::len).sum::<usize>()) as u64;
    let json_load_ms = measure_ms(protocol, || {
        let g = kbgraph::KbGraph::from_json(&graph_json).expect("persisted graph decodes");
        std::hint::black_box(g.num_articles());
        for j in &index_jsons {
            let idx = searchlite::Index::from_json(j).expect("persisted index decodes");
            std::hint::black_box(idx.num_docs());
        }
    });

    // Path 3: the binary snapshot (graph + indexes + linker dictionary,
    // decoded with checksum verification and full audits).
    let segment_slices: Vec<Vec<&searchlite::Index>> =
        ctx.indexes.iter().map(|i| vec![i]).collect();
    let named: Vec<(&str, &[&searchlite::Index])> = collections
        .iter()
        .map(String::as_str)
        .zip(segment_slices.iter().map(Vec::as_slice))
        .collect();
    let snapshot = encode_snapshot(&SnapshotContents {
        graph,
        collections: &named,
        dict: ctx.linker.dictionary(),
    })
    .expect("snapshot encodes");
    let snapshot_bytes = snapshot.len() as u64;
    let snapshot_load_ms = measure_ms(protocol, || {
        let snap = Snapshot::from_bytes(&snapshot).expect("snapshot decodes");
        std::hint::black_box(snap.graph().num_articles());
    });

    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    StoreBenchReport {
        context: context_name.to_owned(),
        samples: protocol.samples,
        collections,
        regenerate_ms,
        json_bytes,
        json_load_ms,
        snapshot_bytes,
        snapshot_load_ms,
        speedup_vs_json: ratio(json_load_ms, snapshot_load_ms),
        speedup_vs_regenerate: ratio(regenerate_ms, snapshot_load_ms),
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &StoreBenchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_store.json` (or any other path).
pub fn write_report(report: &StoreBenchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary of the report.
pub fn format_report(report: &StoreBenchReport) -> String {
    format!(
        "=== store-bench ({} bed, median of {}) ===\n\
         {:<12}{:>12}{:>14}\n\
         {:<12}{:>12}{:>14.2}\n\
         {:<12}{:>12}{:>14.2}\n\
         {:<12}{:>12}{:>14.2}\n\
         snapshot vs json: {:.1}x faster; vs regenerate: {:.1}x faster\n",
        report.context,
        report.samples,
        "path",
        "bytes",
        "cold ms",
        "regenerate",
        "-",
        report.regenerate_ms,
        "json",
        report.json_bytes,
        report.json_load_ms,
        "snapshot",
        report.snapshot_bytes,
        report.snapshot_load_ms,
        report.speedup_vs_json,
        report.speedup_vs_regenerate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_reports_sane_numbers() {
        let report = run_store_bench(&TestBedConfig::small(), "small", &StoreBenchOptions::smoke());
        assert_eq!(report.collections.len(), 2);
        assert!(report.regenerate_ms > 0.0);
        assert!(report.json_load_ms > 0.0);
        assert!(report.snapshot_load_ms > 0.0);
        assert!(report.json_bytes > 0);
        assert!(report.snapshot_bytes > 0);
        // No relative-speed assertion: debug builds on a loaded machine
        // make such comparisons flaky. The ≥5x snapshot-vs-JSON bar is
        // enforced on the release-mode BENCH_store.json artifact.
        assert!(report.speedup_vs_json.is_finite() && report.speedup_vs_json > 0.0);
        assert!(report.speedup_vs_regenerate.is_finite() && report.speedup_vs_regenerate > 0.0);
        let json = report_json(&report);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        assert!(parsed.get("speedup_vs_json").is_some());
        let table = format_report(&report);
        assert!(table.contains("snapshot vs json"));
    }
}
