//! Assembly of the full test bed: KB + collections + query sets + qrels.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::concepts::ConceptSpace;
use crate::config::TestBedConfig;
use crate::docs::{generate_documents_with_means, Document};
use crate::kb::SynthKb;
use crate::queries::{generate_queries, QuerySpec};

pub use crate::docs::Document as Doc;

/// A document collection (index target).
#[derive(Debug)]
pub struct Collection {
    /// Display name.
    pub name: String,
    /// All documents.
    pub docs: Vec<Document>,
}

/// A benchmark dataset: a query set over one collection, with qrels.
#[derive(Debug)]
pub struct Dataset {
    /// Display name (`imageclef`, `chic2012`, `chic2013`).
    pub name: String,
    /// Index into [`TestBed::collections`].
    pub collection: usize,
    /// The queries.
    pub queries: Vec<QuerySpec>,
    /// Relevance judgments: query id → relevant doc ids.
    pub relevant: FxHashMap<String, FxHashSet<String>>,
}

impl Dataset {
    /// Mean number of relevant documents per query (all queries count).
    pub fn avg_relevant_per_query(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .queries
            .iter()
            .map(|q| self.relevant.get(&q.id).map_or(0, |s| s.len()))
            .sum();
        total as f64 / self.queries.len() as f64
    }

    /// Number of queries with zero relevant documents.
    pub fn num_zero_relevant(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| self.relevant.get(&q.id).is_none_or(|s| s.is_empty()))
            .count()
    }
}

/// The complete generated world.
#[derive(Debug)]
pub struct TestBed {
    /// The concept space (semantic ground truth).
    pub space: ConceptSpace,
    /// The knowledge base built from it.
    pub kb: SynthKb,
    /// Collections: `[0]` Image CLEF-like, `[1]` CHiC-like (shared).
    pub collections: Vec<Collection>,
    /// Datasets: `[0]` imageclef, `[1]` chic2012, `[2]` chic2013.
    pub datasets: Vec<Dataset>,
}

impl TestBed {
    /// Generates everything deterministically from the config.
    pub fn generate(cfg: &TestBedConfig) -> TestBed {
        let space = ConceptSpace::generate(&cfg.kb);
        let kb = SynthKb::build(&space, &cfg.kb);

        // Allocate disjoint topics to the three query sets.
        let mut topics: Vec<usize> = (0..space.num_topics()).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.kb.seed ^ 0xa110c);
        for i in (1..topics.len()).rev() {
            let j = rng.gen_range(0..=i);
            topics.swap(i, j);
        }
        let n1 = cfg.imageclef_queries.num_queries;
        let n2 = cfg.chic2012_queries.num_queries;
        let n3 = cfg.chic2013_queries.num_queries;
        assert!(topics.len() >= n1 + n2 + n3, "not enough topics");
        let ic_topics = &topics[..n1];
        let c12_topics = &topics[n1..n1 + n2];
        let c13_topics = &topics[n1 + n2..n1 + n2 + n3];

        let ic_queries = generate_queries(&space, &cfg.imageclef_queries, ic_topics);
        let c12_queries = generate_queries(&space, &cfg.chic2012_queries, c12_topics);
        let c13_queries = generate_queries(&space, &cfg.chic2013_queries, c13_topics);

        let ic_docs = generate_documents_with_means(
            &space,
            &cfg.imageclef,
            &[&ic_queries],
            &[cfg.imageclef_queries.mean_relevant_per_query],
        );
        let chic_docs = generate_documents_with_means(
            &space,
            &cfg.chic,
            &[&c12_queries, &c13_queries],
            &[
                cfg.chic2012_queries.mean_relevant_per_query,
                cfg.chic2013_queries.mean_relevant_per_query,
            ],
        );

        let collections = vec![
            Collection {
                name: cfg.imageclef.name.to_owned(),
                docs: ic_docs,
            },
            Collection {
                name: cfg.chic.name.to_owned(),
                docs: chic_docs,
            },
        ];

        let datasets = vec![
            build_dataset("imageclef", 0, ic_queries, &collections[0]),
            build_dataset("chic2012", 1, c12_queries, &collections[1]),
            build_dataset("chic2013", 1, c13_queries, &collections[1]),
        ];

        TestBed {
            space,
            kb,
            collections,
            datasets,
        }
    }

    /// Finds a dataset by name.
    pub fn dataset(&self, name: &str) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dataset {name}"))
    }

    /// The collection a dataset runs over.
    pub fn collection_of(&self, dataset: &Dataset) -> &Collection {
        &self.collections[dataset.collection]
    }
}

/// Computes qrels for a query set over a collection: a document is
/// relevant to a query iff it is about an entity of the query's relevance
/// neighbourhood.
fn build_dataset(
    name: &str,
    collection: usize,
    queries: Vec<QuerySpec>,
    coll: &Collection,
) -> Dataset {
    // entity → queries that consider it relevant (topics are disjoint, so
    // usually a single query).
    let mut entity_queries: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (qi, q) in queries.iter().enumerate() {
        for &e in &q.relevant_entities {
            entity_queries.entry(e).or_default().push(qi);
        }
    }
    let mut relevant: FxHashMap<String, FxHashSet<String>> = FxHashMap::default();
    for q in &queries {
        relevant.entry(q.id.clone()).or_default();
    }
    for doc in &coll.docs {
        if !doc.judged_relevant {
            continue;
        }
        if let Some(e) = doc.about {
            if let Some(qis) = entity_queries.get(&e) {
                for &qi in qis {
                    relevant
                        .get_mut(&queries[qi].id)
                        .expect("prefilled")
                        .insert(doc.id.clone());
                }
            }
        }
    }
    Dataset {
        name: name.to_owned(),
        collection,
        queries,
        relevant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> TestBed {
        TestBed::generate(&TestBedConfig::small())
    }

    #[test]
    fn three_datasets_two_collections() {
        let b = bed();
        assert_eq!(b.collections.len(), 2);
        assert_eq!(b.datasets.len(), 3);
        assert_eq!(b.dataset("chic2012").collection, 1);
        assert_eq!(b.dataset("chic2013").collection, 1);
        assert_eq!(b.dataset("imageclef").collection, 0);
    }

    #[test]
    fn zero_relevant_counts_match_config() {
        let cfg = TestBedConfig::small();
        let b = TestBed::generate(&cfg);
        assert_eq!(
            b.dataset("chic2012").num_zero_relevant(),
            cfg.chic2012_queries.zero_relevant_queries
        );
        assert_eq!(
            b.dataset("chic2013").num_zero_relevant(),
            cfg.chic2013_queries.zero_relevant_queries
        );
        assert_eq!(b.dataset("imageclef").num_zero_relevant(), 0);
    }

    #[test]
    fn query_topics_disjoint_across_datasets() {
        let b = bed();
        let mut seen = std::collections::HashSet::new();
        for d in &b.datasets {
            for q in &d.queries {
                assert!(seen.insert(q.topic), "topic {} reused", q.topic);
            }
        }
    }

    #[test]
    fn qrels_reference_existing_docs() {
        let b = bed();
        for d in &b.datasets {
            let coll = b.collection_of(d);
            let ids: std::collections::HashSet<&String> =
                coll.docs.iter().map(|doc| &doc.id).collect();
            for docs in d.relevant.values() {
                for doc in docs {
                    assert!(ids.contains(doc));
                }
            }
        }
    }

    #[test]
    fn imageclef_every_query_has_relevant_docs() {
        let b = bed();
        let d = b.dataset("imageclef");
        for q in &d.queries {
            assert!(
                !d.relevant[&q.id].is_empty(),
                "imageclef query {} lacks relevant docs",
                q.id
            );
        }
    }

    #[test]
    fn avg_relevant_in_reasonable_band() {
        let cfg = TestBedConfig::small();
        let b = TestBed::generate(&cfg);
        let d = b.dataset("imageclef");
        let avg = d.avg_relevant_per_query();
        // All queries count in the average, including zero-relevant ones,
        // so compare against the query-set target.
        let want = cfg.imageclef_queries.mean_relevant_per_query;
        assert!(
            (avg - want).abs() / want < 0.4,
            "avg {avg} vs target {want}"
        );
    }

    #[test]
    fn generation_deterministic() {
        let a = bed();
        let b = bed();
        assert_eq!(a.collections[0].docs.len(), b.collections[0].docs.len());
        assert_eq!(
            a.collections[0].docs[100].text,
            b.collections[0].docs[100].text
        );
        assert_eq!(
            a.dataset("imageclef").queries[3].text,
            b.dataset("imageclef").queries[3].text
        );
    }
}
