//! Weighted structured queries.
//!
//! The paper's expanded query (Section 2.3) is "a three-part combination:
//! i) the user's query, ii) the titles of the query nodes, and iii) the
//! titles of the articles expansion nodes", where titles are matched as
//! n-grams of consecutive terms and expansion features are weighted by the
//! number of motifs `|m_a|` they appear in. This module models exactly
//! that: a flat list of weighted features, each either a single term or an
//! exact-phrase n-gram — the subset of Indri's `#weight`/`#combine`/`#1`
//! operators the paper uses.

use crate::analysis::Analyzer;

/// An atomic match feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feature {
    /// A single analyzed term.
    Term(String),
    /// An exact ordered n-gram of analyzed terms (Indri `#1(...)`).
    /// Single-token phrases are normalized to [`Feature::Term`] by the
    /// constructors.
    Phrase(Vec<String>),
    /// Unordered co-occurrence of all terms within a window of the given
    /// extent (Indri `#uwN(...)`) — the "unordered term proximity" the
    /// paper's retrieval model generalizes to.
    Unordered {
        /// The analyzed tokens that must co-occur.
        tokens: Vec<String>,
        /// Window extent in positions.
        window: u32,
    },
}

impl Feature {
    /// The analyzed tokens of the feature.
    pub fn tokens(&self) -> &[String] {
        match self {
            Feature::Term(t) => std::slice::from_ref(t),
            Feature::Phrase(ts) => ts,
            Feature::Unordered { tokens, .. } => tokens,
        }
    }
}

/// A feature with its query weight.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedFeature {
    /// The match feature.
    pub feature: Feature,
    /// Relative weight (normalized at scoring time, like Indri `#weight`).
    pub weight: f64,
}

/// A weighted structured query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    features: Vec<WeightedFeature>,
}

impl Query {
    /// An empty query (matches nothing).
    pub fn new() -> Self {
        Query::default()
    }

    /// Parses free text into unit-weight term features.
    pub fn parse_text(text: &str, analyzer: &Analyzer) -> Self {
        let mut q = Query::new();
        for tok in analyzer.analyze(text) {
            q.push_term(tok, 1.0);
        }
        q
    }

    /// Adds a single-term feature with a weight. Zero- or negative-weight
    /// features are ignored.
    pub fn push_term(&mut self, token: String, weight: f64) {
        if weight > 0.0 && !token.is_empty() {
            self.features.push(WeightedFeature {
                feature: Feature::Term(token),
                weight,
            });
        }
    }

    /// Adds an exact-phrase feature from raw text (e.g. an article title),
    /// analyzed with `analyzer`. Titles reduced to a single token become
    /// term features; titles analyzed to nothing are dropped.
    pub fn push_phrase_text(&mut self, text: &str, analyzer: &Analyzer, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        let tokens = analyzer.analyze(text);
        match tokens.len() {
            0 => {}
            1 => self.push_term(tokens.into_iter().next().expect("len 1"), weight),
            _ => self.features.push(WeightedFeature {
                feature: Feature::Phrase(tokens),
                weight,
            }),
        }
    }

    /// Adds an unordered-window feature from raw text: all analyzed
    /// tokens must co-occur within `window` positions.
    pub fn push_unordered_text(
        &mut self,
        text: &str,
        analyzer: &Analyzer,
        window: u32,
        weight: f64,
    ) {
        if weight <= 0.0 {
            return;
        }
        let tokens = analyzer.analyze(text);
        match tokens.len() {
            0 => {}
            1 => self.push_term(tokens.into_iter().next().expect("len 1"), weight),
            _ => self.features.push(WeightedFeature {
                feature: Feature::Unordered { tokens, window },
                weight,
            }),
        }
    }

    /// Adds an already-analyzed phrase.
    pub fn push_phrase_tokens(&mut self, tokens: Vec<String>, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        match tokens.len() {
            0 => {}
            1 => self.push_term(tokens.into_iter().next().expect("len 1"), weight),
            _ => self.features.push(WeightedFeature {
                feature: Feature::Phrase(tokens),
                weight,
            }),
        }
    }

    /// Combines sub-queries with outer weights: each part's features are
    /// first normalized within the part, then scaled by `weight` (Indri's
    /// nested `#weight( w1 #combine(...) w2 #combine(...) )`).
    pub fn combine(parts: &[(Query, f64)]) -> Query {
        let mut q = Query::new();
        for (part, weight) in parts {
            if *weight <= 0.0 || part.is_empty() {
                continue;
            }
            let inner: f64 = part.features.iter().map(|f| f.weight).sum();
            for f in &part.features {
                q.features.push(WeightedFeature {
                    feature: f.feature.clone(),
                    weight: weight * f.weight / inner,
                });
            }
        }
        q
    }

    /// The query's weighted features.
    pub fn features(&self) -> &[WeightedFeature] {
        &self.features
    }

    /// True when the query has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Sum of all feature weights.
    pub fn total_weight(&self) -> f64 {
        self.features.iter().map(|f| f.weight).sum()
    }

    /// A human-readable Indri-like rendering (for logs and examples).
    pub fn render(&self) -> String {
        let mut s = String::from("#weight(");
        for f in &self.features {
            match &f.feature {
                Feature::Term(t) => {
                    s.push_str(&format!(" {:.3} {}", f.weight, t));
                }
                Feature::Phrase(ts) => {
                    s.push_str(&format!(" {:.3} #1({})", f.weight, ts.join(" ")));
                }
                Feature::Unordered { tokens, window } => {
                    s.push_str(&format!(" {:.3} #uw{window}({})", f.weight, tokens.join(" ")));
                }
            }
        }
        s.push_str(" )");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_text_analyzes() {
        let q = Query::parse_text("The Cable Cars", &Analyzer::english());
        let toks: Vec<&str> = q
            .features()
            .iter()
            .flat_map(|f| f.feature.tokens())
            .map(|s| s.as_str())
            .collect();
        assert_eq!(toks, vec!["cabl", "car"]);
        assert!(q.features().iter().all(|f| f.weight == 1.0));
    }

    #[test]
    fn single_token_phrase_becomes_term() {
        let mut q = Query::new();
        q.push_phrase_text("Funicular", &Analyzer::english(), 2.0);
        assert_eq!(q.len(), 1);
        assert!(matches!(q.features()[0].feature, Feature::Term(_)));
    }

    #[test]
    fn multi_token_phrase_preserved() {
        let mut q = Query::new();
        q.push_phrase_text("cable car", &Analyzer::english(), 1.0);
        assert!(matches!(&q.features()[0].feature, Feature::Phrase(ts) if ts.len() == 2));
    }

    #[test]
    fn empty_title_dropped() {
        let mut q = Query::new();
        q.push_phrase_text("the of", &Analyzer::english(), 1.0);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_weight_dropped() {
        let mut q = Query::new();
        q.push_term("x".into(), 0.0);
        q.push_phrase_text("cable car", &Analyzer::english(), -1.0);
        assert!(q.is_empty());
    }

    #[test]
    fn combine_normalizes_within_parts() {
        let a = Analyzer::plain();
        let q1 = Query::parse_text("x y", &a); // two unit features
        let q2 = Query::parse_text("z", &a); // one unit feature
        let c = Query::combine(&[(q1, 0.6), (q2, 0.4)]);
        assert_eq!(c.len(), 3);
        assert!((c.features()[0].weight - 0.3).abs() < 1e-12);
        assert!((c.features()[1].weight - 0.3).abs() < 1e-12);
        assert!((c.features()[2].weight - 0.4).abs() < 1e-12);
        assert!((c.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combine_skips_empty_parts() {
        let a = Analyzer::plain();
        let q1 = Query::parse_text("x", &a);
        let empty = Query::new();
        let c = Query::combine(&[(q1, 0.5), (empty, 0.5)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unordered_feature_construction() {
        let mut q = Query::new();
        q.push_unordered_text("cable car", &Analyzer::plain(), 8, 1.5);
        assert!(matches!(
            &q.features()[0].feature,
            Feature::Unordered { tokens, window: 8 } if tokens.len() == 2
        ));
        assert!(q.render().contains("#uw8(cable car)"));
        // Single token degrades to a term.
        let mut q2 = Query::new();
        q2.push_unordered_text("cable", &Analyzer::plain(), 8, 1.0);
        assert!(matches!(&q2.features()[0].feature, Feature::Term(_)));
    }

    #[test]
    fn render_is_readable() {
        let mut q = Query::new();
        q.push_term("cabl".into(), 1.0);
        q.push_phrase_tokens(vec!["cabl".into(), "car".into()], 2.0);
        let r = q.render();
        assert!(r.contains("#1(cabl car)"));
        assert!(r.starts_with("#weight("));
    }
}
