//! Ground-truth optimal query graphs.
//!
//! The paper's structural analysis (Section 2.1) and its upper bound
//! `SQE^UB` (Table 1) rely on a published ground truth (the paper's
//! reference \[10\]) that maps each
//! Image CLEF query to its *optimal query graph* — the expansion nodes
//! that maximize precision. In the synthetic world that ground truth is
//! available by construction: the optimal expansion nodes of a query are
//! the articles of its relevance neighbourhood (documents about them are
//! exactly the relevant documents).

use std::collections::BTreeMap;

use kbgraph::ArticleId;

use crate::concepts::ConceptSpace;
use crate::kb::SynthKb;
use crate::queries::QuerySpec;

/// Weight of a same-subtopic expansion node in the optimal query graph.
pub const CLOSE_WEIGHT: u32 = 2;
/// Weight of any other optimal expansion node.
pub const FAR_WEIGHT: u32 = 1;

/// The optimal query graph of one query.
#[derive(Debug, Clone)]
pub struct OptimalQueryGraph {
    /// Query id.
    pub query_id: String,
    /// The query nodes (articles of the target entities).
    pub query_nodes: Vec<ArticleId>,
    /// The optimal expansion nodes (articles of the relevance
    /// neighbourhood, excluding the query nodes themselves).
    pub expansion_nodes: Vec<ArticleId>,
    /// Expansion weights parallel to `expansion_nodes` (same-subtopic
    /// nodes count double — they carry most of the precision, which is
    /// what makes the ground truth an *upper bound*).
    pub weights: Vec<u32>,
}

impl OptimalQueryGraph {
    /// `(article, weight)` pairs ready for
    /// `SqePipeline::rank_with_expansions`.
    pub fn weighted_expansions(&self) -> Vec<(ArticleId, u32)> {
        self.expansion_nodes
            .iter()
            .copied()
            .zip(self.weights.iter().copied())
            .collect()
    }
}

/// Ground truth for a whole query set.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    // BTreeMap (not FxHashMap) so any traversal of the ground truth —
    // averaging, serialization, debug dumps — is deterministic by
    // construction.
    graphs: BTreeMap<String, OptimalQueryGraph>,
}

impl GroundTruth {
    /// Derives the ground truth of a query set from the generator's
    /// relevance neighbourhoods. Same-subtopic peers of a target weigh
    /// [`CLOSE_WEIGHT`], other neighbourhood entities [`FAR_WEIGHT`].
    pub fn derive(kb: &SynthKb, space: &ConceptSpace, queries: &[QuerySpec]) -> GroundTruth {
        let mut graphs = BTreeMap::new();
        for q in queries {
            let query_nodes: Vec<ArticleId> =
                q.targets.iter().map(|&e| kb.article_of[e]).collect();
            let target_subtopics: Vec<usize> = q
                .targets
                .iter()
                .map(|&e| space.entities[e].subtopic)
                .collect();
            let mut expansion_nodes = Vec::new();
            let mut weights = Vec::new();
            for &e in q
                .relevant_entities
                .iter()
                .filter(|e| !q.targets.contains(e))
            {
                expansion_nodes.push(kb.article_of[e]);
                let close = target_subtopics.contains(&space.entities[e].subtopic);
                weights.push(if close { CLOSE_WEIGHT } else { FAR_WEIGHT });
            }
            graphs.insert(
                q.id.clone(),
                OptimalQueryGraph {
                    query_id: q.id.clone(),
                    query_nodes,
                    expansion_nodes,
                    weights,
                },
            );
        }
        GroundTruth { graphs }
    }

    /// The optimal graph of a query, if known.
    pub fn graph(&self, query_id: &str) -> Option<&OptimalQueryGraph> {
        self.graphs.get(query_id)
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when no query is covered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Mean number of expansion nodes per query.
    pub fn avg_expansion_nodes(&self) -> f64 {
        if self.graphs.is_empty() {
            return 0.0;
        }
        let total: usize = self.graphs.values().map(|g| g.expansion_nodes.len()).sum();
        total as f64 / self.graphs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;
    use crate::dataset::TestBed;

    #[test]
    fn ground_truth_covers_all_queries() {
        let bed = TestBed::generate(&TestBedConfig::small());
        let d = bed.dataset("imageclef");
        let gt = GroundTruth::derive(&bed.kb, &bed.space, &d.queries);
        assert_eq!(gt.len(), d.queries.len());
        for q in &d.queries {
            let g = gt.graph(&q.id).unwrap();
            assert_eq!(g.query_nodes.len(), q.targets.len());
            assert!(!g.expansion_nodes.is_empty());
            for qn in &g.query_nodes {
                assert!(!g.expansion_nodes.contains(qn));
            }
        }
        assert!(gt.avg_expansion_nodes() > 1.0);
    }

    #[test]
    fn unknown_query_is_none() {
        let gt = GroundTruth::default();
        assert!(gt.graph("nope").is_none());
        assert!(gt.is_empty());
    }
}
