//! The typed result of a deadline-aware serve call.

use crate::deadline::Stage;

/// Stable lower-case names of the degraded-mode ladder rungs, ordered
/// from highest to lowest quality. Indexes match [`DegradeLevel::index`].
pub const LADDER_LEVEL_NAMES: [&str; 3] = ["full", "triangular", "unexpanded"];

/// A rung of the degraded-mode ladder, ordered from most to least
/// expensive (and most to least effective, per the paper's ablations):
/// SQE_T&S → SQE_T → unexpanded query-likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeLevel {
    /// Full structural expansion: triangular + square motifs (SQE_T&S).
    Full,
    /// Triangular motifs only (SQE_T) — skips the square-motif scan.
    Triangular,
    /// No expansion at all: rank the user part of the query directly.
    Unexpanded,
}

impl DegradeLevel {
    /// All rungs, highest quality first — the order [`crate::select_level`]
    /// walks when fitting a request into its remaining budget.
    pub const LADDER: [DegradeLevel; 3] =
        [DegradeLevel::Full, DegradeLevel::Triangular, DegradeLevel::Unexpanded];

    /// Index into per-level metric arrays (0 = full, 2 = unexpanded).
    pub fn index(self) -> usize {
        match self {
            DegradeLevel::Full => 0,
            DegradeLevel::Triangular => 1,
            DegradeLevel::Unexpanded => 2,
        }
    }

    /// Stable lower-case name (matches [`LADDER_LEVEL_NAMES`]).
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::Triangular => "triangular",
            DegradeLevel::Unexpanded => "unexpanded",
        }
    }
}

/// Why a request was rejected without doing (or completing) any ranking
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded pending-work queue was full at admission time.
    QueueFull,
    /// The token-bucket rate limiter had no token at admission time.
    RateLimited,
    /// Queue delay stayed above the CoDel target for a full interval;
    /// this request was shed at dequeue to drain the standing queue.
    QueueDelay,
    /// The remaining deadline budget could not fit even the cheapest
    /// ladder rung.
    BudgetExhausted,
}

impl ShedReason {
    /// Stable lower-case name (used in outcome labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueDelay => "queue_delay",
            ShedReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// The result of serving one request under admission control and a
/// deadline. `T` is the payload of a successful serve (typically the
/// ranked hits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome<T> {
    /// Served at full quality (SQE_T&S) within the deadline.
    Ok(T),
    /// Served within the deadline, but at a cheaper ladder rung.
    Degraded(DegradeLevel, T),
    /// Rejected before ranking work ran; no payload.
    Shed(ShedReason),
    /// Work started but the deadline expired at the named stage
    /// boundary; any partial payload is discarded.
    DeadlineExceeded(Stage),
}

impl<T> ServeOutcome<T> {
    /// The served payload, if the request completed within its deadline.
    pub fn value(&self) -> Option<&T> {
        match self {
            ServeOutcome::Ok(v) | ServeOutcome::Degraded(_, v) => Some(v),
            _ => None,
        }
    }

    /// Consume the outcome, yielding the payload when one was served.
    pub fn into_value(self) -> Option<T> {
        match self {
            ServeOutcome::Ok(v) | ServeOutcome::Degraded(_, v) => Some(v),
            _ => None,
        }
    }

    /// The ladder rung that served the request (`Full` for `Ok`), or
    /// `None` when nothing was served.
    pub fn level(&self) -> Option<DegradeLevel> {
        match self {
            ServeOutcome::Ok(_) => Some(DegradeLevel::Full),
            ServeOutcome::Degraded(level, _) => Some(*level),
            _ => None,
        }
    }

    /// True when the request was rejected without running.
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeOutcome::Shed(_))
    }

    /// True when the request ran but missed its deadline.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, ServeOutcome::DeadlineExceeded(_))
    }

    /// A compact, stable label for determinism walls and reports:
    /// `ok`, `degraded:triangular`, `shed:queue_full`, `deadline:rank`.
    pub fn label(&self) -> String {
        match self {
            ServeOutcome::Ok(_) => "ok".to_owned(),
            ServeOutcome::Degraded(level, _) => format!("degraded:{}", level.name()),
            ServeOutcome::Shed(reason) => format!("shed:{}", reason.name()),
            ServeOutcome::DeadlineExceeded(stage) => format!("deadline:{}", stage.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_names_agree() {
        for (slot, level) in DegradeLevel::LADDER.iter().enumerate() {
            assert_eq!(level.index(), slot);
            assert_eq!(LADDER_LEVEL_NAMES.get(slot).copied(), Some(level.name()));
        }
    }

    #[test]
    fn accessors_split_served_from_rejected() {
        let ok: ServeOutcome<u32> = ServeOutcome::Ok(7);
        let deg: ServeOutcome<u32> = ServeOutcome::Degraded(DegradeLevel::Unexpanded, 9);
        let shed: ServeOutcome<u32> = ServeOutcome::Shed(ShedReason::QueueFull);
        let late: ServeOutcome<u32> = ServeOutcome::DeadlineExceeded(Stage::Expand);

        assert_eq!(ok.value(), Some(&7));
        assert_eq!(ok.level(), Some(DegradeLevel::Full));
        assert_eq!(deg.clone().into_value(), Some(9));
        assert_eq!(deg.level(), Some(DegradeLevel::Unexpanded));
        assert_eq!(shed.value(), None);
        assert!(shed.is_shed() && !shed.is_deadline_exceeded());
        assert!(late.is_deadline_exceeded() && !late.is_shed());
        assert_eq!(late.level(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServeOutcome::Ok(0u8).label(), "ok");
        assert_eq!(
            ServeOutcome::Degraded(DegradeLevel::Triangular, 0u8).label(),
            "degraded:triangular"
        );
        let shed: ServeOutcome<u8> = ServeOutcome::Shed(ShedReason::RateLimited);
        assert_eq!(shed.label(), "shed:rate_limited");
        let late: ServeOutcome<u8> = ServeOutcome::DeadlineExceeded(Stage::Queue);
        assert_eq!(late.label(), "deadline:queue");
    }
}
