// Fixture: NaN-unsafe comparators. Each sort-family call ranks floats
// with `partial_cmp`, which is not a total order.

pub fn rank(mut hits: Vec<(f64, u32)>) -> Vec<(f64, u32)> {
    hits.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    hits
}

pub fn best(hits: &[(f64, u32)]) -> Option<&(f64, u32)> {
    hits.iter().max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
}

pub fn locate(hits: &[f64], needle: f64) -> Result<usize, usize> {
    hits.binary_search_by(|p| p.partial_cmp(&needle).unwrap())
}
