/root/repo/target/debug/deps/bench_cycles-0e01bc6c1c5a9545.d: crates/bench/benches/bench_cycles.rs

/root/repo/target/debug/deps/bench_cycles-0e01bc6c1c5a9545: crates/bench/benches/bench_cycles.rs

crates/bench/benches/bench_cycles.rs:
