//! Finding baseline + ratchet.
//!
//! `sqe-lint baseline` snapshots the current findings; `sqe-lint check`
//! then fails only on findings *not* in the snapshot, and on snapshot
//! entries that no longer occur (stale — the baseline must be
//! re-generated so it only ever shrinks). Keys are
//! `rule|path|message` with a multiplicity count, deliberately
//! line-independent so unrelated edits that shift code do not churn the
//! baseline.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Severity};

/// A snapshot of accepted findings: key → occurrence count.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<String, u64>,
}

/// Result of ratcheting current findings against a baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Error-severity findings not covered by the baseline (count beyond
    /// the baselined multiplicity). These fail the build.
    pub new: Vec<Diagnostic>,
    /// Baseline keys that no longer occur at their recorded multiplicity.
    /// These also fail: the baseline may only shrink.
    pub stale: Vec<String>,
}

/// Line-independent identity of a finding.
pub fn key(d: &Diagnostic) -> String {
    format!("{}|{}|{}", d.rule, d.path, d.message)
}

/// The current finding closest to a stale baseline key — the hint
/// `sqe-lint check` prints so the developer can tell a genuinely fixed
/// finding from one that merely moved (rule rename, message reword, file
/// rename). Proximity is rule-then-file: same rule and file beats same
/// rule in the same crate, beats same rule anywhere, beats same file
/// under another rule. Returns `None` when no error finding survives at
/// all (everything really was fixed).
pub fn nearest_surviving<'a>(stale_key: &str, diags: &'a [Diagnostic]) -> Option<&'a Diagnostic> {
    let mut parts = stale_key.splitn(3, '|');
    let rule = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let crate_of = |p: &str| p.split('/').take(2).collect::<Vec<_>>().join("/");
    let stale_crate = crate_of(path);
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| {
            let score = if d.rule == rule && d.path == path {
                0
            } else if d.rule == rule && crate_of(&d.path) == stale_crate {
                1
            } else if d.rule == rule {
                2
            } else if d.path == path {
                3
            } else {
                4
            };
            (score, d)
        })
        .min_by_key(|(score, d)| (*score, d.path.clone(), d.line))
        .map(|(_, d)| d)
}

impl Baseline {
    /// Snapshots every error-severity finding. Warnings are advisory and
    /// never baselined — they must not be able to fail a ratchet.
    pub fn from_diags(diags: &[Diagnostic]) -> Self {
        let mut entries: BTreeMap<String, u64> = BTreeMap::new();
        for d in diags.iter().filter(|d| d.severity == Severity::Error) {
            *entries.entry(key(d)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of distinct baselined keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is baselined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes as a stable JSON object (sorted keys via `BTreeMap`).
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut m = serde_json::Map::new();
        for (k, v) in &self.entries {
            m.insert(k.clone(), Value::from(*v));
        }
        serde_json::to_string_pretty(&Value::Object(m)).expect("baseline serializes")
    }

    /// Parses the JSON form. Rejects non-object roots and non-integer
    /// counts rather than silently accepting a corrupt baseline.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let obj = v
            .as_object()
            .ok_or_else(|| "baseline root must be a JSON object".to_string())?;
        let mut entries = BTreeMap::new();
        for (k, count) in obj.iter() {
            let n = count
                .as_u64()
                .ok_or_else(|| format!("baseline count for {k:?} must be a non-negative integer"))?;
            entries.insert(k.clone(), n);
        }
        Ok(Baseline { entries })
    }

    /// Ratchets `diags` against this baseline. Error findings beyond the
    /// baselined multiplicity are `new`; baselined keys whose current
    /// multiplicity dropped below the recorded count are `stale`.
    pub fn compare(&self, diags: &[Diagnostic]) -> Ratchet {
        let mut current: BTreeMap<String, Vec<&Diagnostic>> = BTreeMap::new();
        for d in diags.iter().filter(|d| d.severity == Severity::Error) {
            current.entry(key(d)).or_default().push(d);
        }
        let mut out = Ratchet::default();
        for (k, occurrences) in &current {
            let allowed = self.entries.get(k).copied().unwrap_or(0) as usize;
            for d in occurrences.iter().skip(allowed) {
                out.new.push((*d).clone());
            }
        }
        for (k, &count) in &self.entries {
            let seen = current.get(k).map_or(0, Vec::len) as u64;
            if seen < count {
                out.stale.push(k.clone());
            }
        }
        out.new
            .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, msg: &str, sev: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity: sev,
            path: path.to_string(),
            line: 1,
            message: msg.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_ratchet() {
        let old = vec![
            diag("r1", "a.rs", "m1", Severity::Error),
            diag("r1", "a.rs", "m1", Severity::Error),
            diag("r2", "b.rs", "m2", Severity::Error),
            diag("r3", "c.rs", "warn only", Severity::Warn),
        ];
        let base = Baseline::from_diags(&old);
        assert_eq!(base.len(), 2, "warnings are not baselined");
        let restored = Baseline::from_json(&base.to_json()).unwrap();
        assert_eq!(restored, base);

        // Same findings: clean.
        let r = restored.compare(&old);
        assert!(r.new.is_empty() && r.stale.is_empty(), "{r:?}");

        // One r1 fixed, one brand-new finding: stale + new.
        let now = vec![
            diag("r1", "a.rs", "m1", Severity::Error),
            diag("r2", "b.rs", "m2", Severity::Error),
            diag("r9", "z.rs", "fresh", Severity::Error),
        ];
        let r = restored.compare(&now);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].rule, "r9");
        assert_eq!(r.stale, vec!["r1|a.rs|m1".to_string()]);
    }

    #[test]
    fn multiplicity_beyond_baseline_is_new() {
        let base = Baseline::from_diags(&[diag("r1", "a.rs", "m", Severity::Error)]);
        let now = vec![
            diag("r1", "a.rs", "m", Severity::Error),
            diag("r1", "a.rs", "m", Severity::Error),
        ];
        let r = base.compare(&now);
        assert_eq!(r.new.len(), 1, "second occurrence exceeds baseline");
        assert!(r.stale.is_empty());
    }

    #[test]
    fn nearest_surviving_prefers_rule_then_file() {
        let now = vec![
            diag("r1", "crates/a/src/lib.rs", "m-other", Severity::Error),
            diag("r1", "crates/b/src/lib.rs", "m-sibling", Severity::Error),
            diag("r2", "crates/a/src/lib.rs", "m-samefile", Severity::Error),
            diag("r1", "crates/a/src/lib.rs", "warn", Severity::Warn),
        ];
        // Same rule + same file wins.
        let hit = nearest_surviving("r1|crates/a/src/lib.rs|gone", &now).unwrap();
        assert_eq!((hit.rule, hit.message.as_str()), ("r1", "m-other"));
        // No rule-r9 survivor anywhere: fall back to the stale file.
        let hit = nearest_surviving("r9|crates/a/src/lib.rs|gone", &now).unwrap();
        assert_eq!(hit.path, "crates/a/src/lib.rs");
        // Same rule in another crate beats a different rule.
        let hit = nearest_surviving("r1|crates/z/src/lib.rs|gone", &now).unwrap();
        assert_eq!(hit.message, "m-other");
        // Nothing survives: no hint.
        assert!(nearest_surviving("r1|a.rs|gone", &[]).is_none());
        let warns = vec![diag("r1", "a.rs", "w", Severity::Warn)];
        assert!(nearest_surviving("r1|a.rs|gone", &warns).is_none());
    }

    #[test]
    fn rejects_corrupt_json() {
        assert!(Baseline::from_json("[1,2]").is_err());
        assert!(Baseline::from_json("{\"k\": \"x\"}").is_err());
        assert!(Baseline::from_json("not json").is_err());
    }
}
