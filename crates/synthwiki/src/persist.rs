//! Persistence of generated datasets.
//!
//! Everything the generator produces is deterministic, but exporting the
//! materialized world lets external tooling (real `trec_eval`, other
//! retrieval engines, inspection scripts) consume the same benchmark:
//! documents as JSON-lines, queries as JSON, qrels as trec-format lines.

use std::fmt::Write as _;

use crate::dataset::{Collection, Dataset};
use crate::docs::Document;
use crate::queries::QuerySpec;

/// Serializes a collection as JSON-lines (one document per line).
pub fn collection_to_jsonl(coll: &Collection) -> String {
    let mut out = String::new();
    for d in &coll.docs {
        out.push_str(&serde_json::to_string(d).expect("document serializes"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines collection back into documents.
pub fn collection_from_jsonl(text: &str) -> Result<Vec<Document>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Serializes a dataset's queries as a JSON array.
pub fn queries_to_json(dataset: &Dataset) -> String {
    serde_json::to_string_pretty(&dataset.queries).expect("queries serialize")
}

/// Parses queries back.
pub fn queries_from_json(text: &str) -> Result<Vec<QuerySpec>, serde_json::Error> {
    serde_json::from_str(text)
}

/// Serializes a dataset's relevance judgments in trec_eval qrels format
/// (`qid 0 docid 1`), queries and documents sorted for reproducibility.
pub fn qrels_to_trec(dataset: &Dataset) -> String {
    let mut out = String::new();
    let mut qids: Vec<&String> = dataset.relevant.keys().collect();
    qids.sort_unstable();
    for qid in qids {
        let mut docs: Vec<&String> = dataset.relevant[qid].iter().collect();
        docs.sort_unstable();
        for d in docs {
            let _ = writeln!(out, "{qid} 0 {d} 1");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;
    use crate::dataset::TestBed;

    fn bed() -> TestBed {
        TestBed::generate(&TestBedConfig::small())
    }

    #[test]
    fn collection_jsonl_roundtrip() {
        let b = bed();
        let coll = &b.collections[0];
        let text = collection_to_jsonl(coll);
        let docs = collection_from_jsonl(&text).unwrap();
        assert_eq!(docs.len(), coll.docs.len());
        assert_eq!(docs[42].id, coll.docs[42].id);
        assert_eq!(docs[42].text, coll.docs[42].text);
        assert_eq!(docs[42].judged_relevant, coll.docs[42].judged_relevant);
    }

    #[test]
    fn queries_json_roundtrip() {
        let b = bed();
        let ds = b.dataset("imageclef");
        let text = queries_to_json(ds);
        let queries = queries_from_json(&text).unwrap();
        assert_eq!(queries.len(), ds.queries.len());
        assert_eq!(queries[3].text, ds.queries[3].text);
        assert_eq!(queries[3].targets, ds.queries[3].targets);
        assert_eq!(queries[3].aspect_words, ds.queries[3].aspect_words);
    }

    #[test]
    fn qrels_trec_format_lines() {
        let b = bed();
        let ds = b.dataset("imageclef");
        let text = qrels_to_trec(ds);
        let total: usize = ds.relevant.values().map(|s| s.len()).sum();
        assert_eq!(text.lines().count(), total);
        let first = text.lines().next().unwrap();
        let fields: Vec<&str> = first.split_whitespace().collect();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[1], "0");
        assert_eq!(fields[3], "1");
    }

    #[test]
    fn empty_jsonl_parses_to_empty() {
        assert!(collection_from_jsonl("").unwrap().is_empty());
        assert!(collection_from_jsonl("\n\n").unwrap().is_empty());
    }
}
