//! The admission controller: bounded pending queue, deterministic token
//! bucket, and CoDel-style queue-delay shedding.
//!
//! The controller never reads a clock. Every decision takes `now` (the
//! caller's injected-clock reading, in nanoseconds) as a parameter, so
//! outcomes are pure functions of `(config, call order, now values)` —
//! replaying the same schedule against a `ManualClock` reproduces the
//! same admit/shed sequence byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::outcome::ShedReason;

/// Tokens are tracked in fixed-point "token-nanos": one admission costs
/// `TOKEN_SCALE` units, and a bucket refills at `rate_per_sec` units per
/// wall nanosecond — integer arithmetic throughout, no drift.
const TOKEN_SCALE: u64 = 1_000_000_000;

/// Admission policy. The default ([`AdmissionConfig::unlimited`]) turns
/// every mechanism off, so existing callers see no behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdmissionConfig {
    /// Maximum requests admitted but not yet started. `0` = unbounded.
    pub queue_capacity: u64,
    /// Token-bucket refill rate, requests per second. `0` = unlimited.
    pub rate_per_sec: u64,
    /// Token-bucket capacity, requests. Clamped to at least 1 when a
    /// rate is set.
    pub burst: u64,
    /// CoDel target: the acceptable standing queue delay. `0` disables
    /// queue-delay shedding.
    pub codel_target_nanos: u64,
    /// CoDel interval: how long delay must stay above target before the
    /// first shed.
    pub codel_interval_nanos: u64,
    /// Deadline budget applied when a request arrives without one.
    /// `0` = unbounded (no default deadline).
    pub default_deadline_nanos: u64,
}

impl AdmissionConfig {
    /// No queue bound, no rate limit, no queue-delay shedding, no
    /// default deadline: admission always succeeds.
    pub fn unlimited() -> Self {
        AdmissionConfig {
            queue_capacity: 0,
            rate_per_sec: 0,
            burst: 0,
            codel_target_nanos: 0,
            codel_interval_nanos: 0,
            default_deadline_nanos: 0,
        }
    }

    /// True when every mechanism is disabled.
    pub fn is_unlimited(&self) -> bool {
        *self == AdmissionConfig::unlimited()
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unlimited()
    }
}

/// Proof of admission, carried from [`AdmissionController::try_admit`]
/// to [`AdmissionController::on_start`]. Records the enqueue time so
/// queue delay can be measured at dequeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    enqueued_nanos: u64,
}

impl Ticket {
    /// The clock reading at which the request was admitted.
    pub fn enqueued_nanos(self) -> u64 {
        self.enqueued_nanos
    }
}

/// Mutable controller state, guarded by one mutex. Only integer
/// arithmetic happens under the lock.
#[derive(Debug)]
struct ControllerState {
    /// Token bucket level, in token-nanos (fixed point, see TOKEN_SCALE).
    tokens: u64,
    /// Clock reading of the last refill.
    last_refill_nanos: u64,
    /// CoDel: when sustained above-target delay first becomes sheddable.
    /// `0` = delay is not currently above target.
    first_above_nanos: u64,
    /// CoDel: sheds in the current above-target episode (drives the
    /// inverse-sqrt control law).
    shed_count: u64,
}

/// Rejects requests *before* ranking work is enqueued.
///
/// Three mechanisms, all optional and all deterministic:
/// 1. a bounded pending-work queue (checked at [`try_admit`]);
/// 2. an integer token bucket (checked at [`try_admit`]);
/// 3. CoDel-style queue-delay shedding (checked at [`on_start`], when
///    the queue delay the request actually experienced is known).
///
/// [`try_admit`]: AdmissionController::try_admit
/// [`on_start`]: AdmissionController::on_start
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    /// Requests admitted but not yet started.
    pending: AtomicU64,
    state: Mutex<ControllerState>,
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> Self {
        let burst = if cfg.rate_per_sec == 0 { 0 } else { cfg.burst.max(1) };
        AdmissionController {
            cfg,
            pending: AtomicU64::new(0),
            state: Mutex::new(ControllerState {
                tokens: burst.saturating_mul(TOKEN_SCALE),
                last_refill_nanos: 0,
                first_above_nanos: 0,
                shed_count: 0,
            }),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Requests currently admitted but not yet started.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Apply the configured default deadline budget at `now`: the
    /// absolute expiry in nanos, or `u64::MAX` when no default is set.
    pub fn default_deadline_at(&self, now: u64) -> u64 {
        if self.cfg.default_deadline_nanos == 0 {
            u64::MAX
        } else {
            now.saturating_add(self.cfg.default_deadline_nanos)
        }
    }

    /// Decide admission at arrival time, before any work is enqueued.
    /// Checks the queue bound first, then the token bucket; a request
    /// rejected by the bucket does not hold a queue slot.
    pub fn try_admit(&self, now: u64) -> Result<Ticket, ShedReason> {
        if !self.try_reserve_slot() {
            return Err(ShedReason::QueueFull);
        }
        if !self.take_token(now) {
            self.release_slot();
            return Err(ShedReason::RateLimited);
        }
        Ok(Ticket { enqueued_nanos: now })
    }

    /// Called when an admitted request is dequeued to start work. Always
    /// releases the pending-queue slot; returns `Err(QueueDelay)` when
    /// the CoDel control law says this request should be shed to drain a
    /// standing queue.
    pub fn on_start(&self, ticket: Ticket, now: u64) -> Result<(), ShedReason> {
        self.release_slot();
        let target = self.cfg.codel_target_nanos;
        if target == 0 {
            return Ok(());
        }
        let delay = now.saturating_sub(ticket.enqueued_nanos);
        let mut st = self.state_lock();
        if delay < target {
            // Queue drained below target: leave the shedding episode.
            st.first_above_nanos = 0;
            st.shed_count = 0;
            return Ok(());
        }
        let interval = self.cfg.codel_interval_nanos.max(1);
        if st.first_above_nanos == 0 {
            // Delay just crossed the target; arm the first shed one
            // interval out.
            st.first_above_nanos = now.saturating_add(interval).max(1);
            return Ok(());
        }
        if now < st.first_above_nanos {
            return Ok(());
        }
        // Sustained above target: shed, and arm the next shed sooner
        // (interval / sqrt(n+1), in fixed point so the divisor actually
        // grows between integer square roots) while the episode persists.
        st.shed_count = st.shed_count.saturating_add(1);
        let scaled_root = isqrt(st.shed_count.saturating_add(1).saturating_mul(10_000)).max(1);
        let next = u64::try_from(
            (u128::from(interval).saturating_mul(100) / u128::from(scaled_root)).max(1),
        )
        .expect("invariant: interval*100/sqrt is at most interval*100/100");
        st.first_above_nanos = now.saturating_add(next);
        Err(ShedReason::QueueDelay)
    }

    /// Release an admitted request's queue slot without starting it
    /// (e.g. the caller dropped the request after `try_admit`).
    pub fn cancel(&self, _ticket: Ticket) {
        self.release_slot();
    }

    fn try_reserve_slot(&self) -> bool {
        let cap = self.cfg.queue_capacity;
        if cap == 0 {
            self.pending.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return false;
            }
            match self.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    fn release_slot(&self) {
        // Saturating decrement: a stray release must not wrap pending.
        let mut cur = self.pending.load(Ordering::Relaxed);
        while cur > 0 {
            match self.pending.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    fn take_token(&self, now: u64) -> bool {
        let rate = self.cfg.rate_per_sec;
        if rate == 0 {
            return true;
        }
        let mut st = self.state_lock();
        if now > st.last_refill_nanos {
            let elapsed = now - st.last_refill_nanos;
            let cap = u128::from(self.cfg.burst.max(1))
                .saturating_mul(u128::from(TOKEN_SCALE))
                .min(u128::from(u64::MAX));
            let refilled = u128::from(st.tokens)
                .saturating_add(u128::from(elapsed).saturating_mul(u128::from(rate)))
                .min(cap);
            st.tokens = u64::try_from(refilled)
                .expect("invariant: bucket level is clamped to fit in u64");
            st.last_refill_nanos = now;
        }
        if st.tokens >= TOKEN_SCALE {
            st.tokens -= TOKEN_SCALE;
            true
        } else {
            false
        }
    }

    fn state_lock(&self) -> std::sync::MutexGuard<'_, ControllerState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Integer square root (Newton's method); used by the CoDel control law
/// to shorten the shed interval while delay stays above target.
fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit_n(ctl: &AdmissionController, n: usize, now: u64) -> Vec<Result<Ticket, ShedReason>> {
        (0..n).map(|_| ctl.try_admit(now)).collect()
    }

    #[test]
    fn unlimited_config_admits_everything() {
        let ctl = AdmissionController::new(AdmissionConfig::unlimited());
        for now in [0, 1, u64::MAX] {
            let ticket = ctl.try_admit(now).expect("invariant: unlimited admission");
            assert_eq!(ctl.on_start(ticket, now), Ok(()));
        }
        assert_eq!(ctl.pending(), 0);
        assert_eq!(ctl.default_deadline_at(123), u64::MAX);
    }

    #[test]
    fn queue_bound_rejects_when_full_and_recovers_on_start() {
        let cfg = AdmissionConfig { queue_capacity: 2, ..AdmissionConfig::unlimited() };
        let ctl = AdmissionController::new(cfg);
        let a = ctl.try_admit(0).expect("invariant: slot 1 free");
        let _b = ctl.try_admit(0).expect("invariant: slot 2 free");
        assert_eq!(ctl.try_admit(0), Err(ShedReason::QueueFull));
        assert_eq!(ctl.pending(), 2);
        assert_eq!(ctl.on_start(a, 0), Ok(()));
        assert!(ctl.try_admit(0).is_ok(), "slot freed by on_start");
    }

    #[test]
    fn cancel_releases_the_slot() {
        let cfg = AdmissionConfig { queue_capacity: 1, ..AdmissionConfig::unlimited() };
        let ctl = AdmissionController::new(cfg);
        let t = ctl.try_admit(0).expect("invariant: slot free");
        assert_eq!(ctl.try_admit(0), Err(ShedReason::QueueFull));
        ctl.cancel(t);
        assert!(ctl.try_admit(0).is_ok());
    }

    #[test]
    fn token_bucket_is_deterministic_in_call_order_and_time() {
        // 2 req/s, burst 3: at t=0 exactly three admissions succeed.
        let cfg = AdmissionConfig {
            rate_per_sec: 2,
            burst: 3,
            ..AdmissionConfig::unlimited()
        };
        let ctl = AdmissionController::new(cfg);
        let first: Vec<bool> = admit_n(&ctl, 5, 0).iter().map(|r| r.is_ok()).collect();
        assert_eq!(first, [true, true, true, false, false]);
        // After 500ms one token (2/s * 0.5s) has refilled.
        let half_sec = 500_000_000;
        let second: Vec<bool> = admit_n(&ctl, 2, half_sec).iter().map(|r| r.is_ok()).collect();
        assert_eq!(second, [true, false]);
        for r in admit_n(&ctl, 2, half_sec) {
            assert_eq!(r, Err(ShedReason::RateLimited));
        }
        // Refill is capped at burst: after a long idle stretch, exactly
        // three tokens again.
        let much_later = half_sec + 100_000_000_000;
        let third: Vec<bool> = admit_n(&ctl, 4, much_later).iter().map(|r| r.is_ok()).collect();
        assert_eq!(third, [true, true, true, false]);
    }

    #[test]
    fn rate_rejection_does_not_leak_queue_slots() {
        let cfg = AdmissionConfig {
            queue_capacity: 10,
            rate_per_sec: 1,
            burst: 1,
            ..AdmissionConfig::unlimited()
        };
        let ctl = AdmissionController::new(cfg);
        assert!(ctl.try_admit(0).is_ok());
        for _ in 0..5 {
            assert_eq!(ctl.try_admit(0), Err(ShedReason::RateLimited));
        }
        assert_eq!(ctl.pending(), 1, "rejected admissions must not hold slots");
    }

    #[test]
    fn codel_sheds_after_sustained_delay_and_resets_when_drained() {
        let cfg = AdmissionConfig {
            codel_target_nanos: 1_000,
            codel_interval_nanos: 10_000,
            ..AdmissionConfig::unlimited()
        };
        let ctl = AdmissionController::new(cfg);
        let enq = |at: u64| -> Ticket {
            ctl.try_admit(at).expect("invariant: admission is unlimited here")
        };
        // Below target: never sheds.
        let t = enq(0);
        assert_eq!(ctl.on_start(t, 500), Ok(()));
        // Crossing target arms the law but does not shed within the
        // first interval.
        let t = enq(1_000);
        assert_eq!(ctl.on_start(t, 3_000), Ok(()), "delay 2000 >= target arms the law");
        let t = enq(4_000);
        assert_eq!(ctl.on_start(t, 9_000), Ok(()), "still inside the first interval");
        // Past the armed point with delay still above target: shed.
        let t = enq(10_000);
        assert_eq!(ctl.on_start(t, 13_500), Err(ShedReason::QueueDelay));
        // The next shed arms sooner (interval / sqrt(2) ≈ 7092ns out).
        let t = enq(14_000);
        assert_eq!(ctl.on_start(t, 16_000), Ok(()), "inside the shortened interval");
        let t = enq(15_000);
        assert_eq!(ctl.on_start(t, 20_600), Err(ShedReason::QueueDelay));
        // One below-target dequeue ends the episode entirely.
        let t = enq(21_000);
        assert_eq!(ctl.on_start(t, 21_100), Ok(()));
        let t = enq(22_000);
        assert_eq!(ctl.on_start(t, 25_000), Ok(()), "episode reset: re-arming from scratch");
    }

    #[test]
    fn default_deadline_applies_budget() {
        let cfg = AdmissionConfig {
            default_deadline_nanos: 5_000,
            ..AdmissionConfig::unlimited()
        };
        let ctl = AdmissionController::new(cfg);
        assert_eq!(ctl.default_deadline_at(1_000), 6_000);
        assert_eq!(ctl.default_deadline_at(u64::MAX - 10), u64::MAX);
    }

    #[test]
    fn isqrt_matches_floor_sqrt() {
        for (n, root) in [(0u64, 0u64), (1, 1), (2, 1), (3, 1), (4, 2), (8, 2), (9, 3), (99, 9), (100, 10), (10_000, 100)] {
            assert_eq!(isqrt(n), root, "isqrt({n})");
        }
    }
}
