/root/repo/target/release/deps/rand-0c5ef071be7f61d8.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-0c5ef071be7f61d8.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-0c5ef071be7f61d8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
