//! `experiments motif-search`: enumerate the generalized motif space
//! against the planted optimal query graphs.
//!
//! The paper fixes its two motifs (triangular, square) by hand from the
//! cycle analysis of Section 2.1. The generalized motif engine makes the
//! whole space enumerable — link reciprocity × category-containment
//! depth × multiplicity weighting — so this experiment asks the question
//! the paper answered by inspection: *which motif sets close the gap to
//! the structural upper bound `SQE^UB`?*
//!
//! For every candidate [`MotifSet`] and every dataset the search scores:
//!
//! * retrieval quality (`P@10` of the SQE run built from the set),
//! * the fraction of `SQE^UB`'s `P@10` the set achieves,
//! * expansion-node F1 against the planted optimal query graphs (the
//!   generator's relevance neighbourhoods — available by construction,
//!   like the ground truth reference \[10\] of the paper),
//! * the mean number of expansion features per query.
//!
//! Candidates are ranked per dataset by `P@10` (ties broken by name so
//! the report is deterministic). The report is written to
//! `BENCH_motif.json`; CI runs `--smoke` on the small bed and archives
//! the file as an artifact.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use ireval::precision::mean_precision;
use serde::Serialize;
use sqe::{LinkCondition, MotifSet, MotifSpec};

use crate::context::ExperimentContext;

/// Motif-search options.
#[derive(Debug, Clone)]
pub struct MotifSearchOptions {
    /// Restrict the singleton candidates to mutual-link motifs (the CI
    /// smoke preset; combos are always included).
    pub mutual_only: bool,
}

impl Default for MotifSearchOptions {
    fn default() -> Self {
        MotifSearchOptions { mutual_only: false }
    }
}

impl MotifSearchOptions {
    /// The CI smoke preset: mutual-link singletons plus every combo —
    /// still well above twelve distinct sets per dataset.
    pub fn smoke() -> Self {
        MotifSearchOptions { mutual_only: true }
    }
}

/// One (dataset, motif set) cell of the search.
#[derive(Debug, Clone, Serialize)]
pub struct MotifCell {
    /// Stable set name ([`MotifSet::name`]).
    pub motifs: String,
    /// Canonical fingerprint in text form (`m<hex>`), the expansion-cache
    /// key component.
    pub fingerprint: String,
    /// Number of specs in the set.
    pub specs: usize,
    /// Mean P@10 of the SQE run built from this set.
    pub p10: f64,
    /// `p10 / ub_p10` — how much of the upper bound the set achieves.
    pub ub_fraction: f64,
    /// `ub_p10 - p10` — the remaining gap to `SQE^UB`.
    pub gap_to_ub: f64,
    /// Mean expansion-node F1 against the planted optimal query graphs.
    pub expansion_f1: f64,
    /// Mean expansion features per query.
    pub avg_expansions: f64,
}

/// One dataset's ranked candidates.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetMotifReport {
    /// Dataset name.
    pub dataset: String,
    /// `SQE^UB` P@10 (the target every candidate is measured against).
    pub ub_p10: f64,
    /// Unexpanded `QL_Q` P@10 (the floor).
    pub ql_q_p10: f64,
    /// Candidates ranked by P@10 descending, then by name.
    pub ranked: Vec<MotifCell>,
    /// Name of the top-ranked set.
    pub best: String,
}

/// The whole motif-search report (`BENCH_motif.json`).
#[derive(Debug, Clone, Serialize)]
pub struct MotifSearchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Distinct candidate sets scored per dataset.
    pub candidates: usize,
    /// One ranked report per dataset.
    pub datasets: Vec<DatasetMotifReport>,
}

/// The candidate motif sets: every singleton spec in the enumerable
/// space plus the named multi-motif configurations (the paper's
/// `SQE_T&S` and its structural neighbours), deduplicated by
/// fingerprint.
pub fn candidate_sets(opts: &MotifSearchOptions) -> Vec<MotifSet> {
    let named = |name: &str| -> MotifSpec {
        MotifSpec::from_name(name).expect("invariant: candidate combo names are canonical")
    };
    let mut out: Vec<MotifSet> = MotifSpec::all()
        .into_iter()
        .filter(|s| !opts.mutual_only || s.link == LinkCondition::Mutual)
        .map(MotifSet::single)
        .collect();
    let combos = [
        // The paper's union.
        MotifSet::t_and_s(),
        // Shallower category condition next to the triangular one.
        MotifSet::new(vec![named("mutual+superset"), named("mutual+shared")]),
        // Extend the union one cycle deeper (the 5-cycles the paper
        // declined to traverse).
        MotifSet::new(vec![
            named("mutual+superset"),
            named("mutual+adjacent"),
            named("mutual+cousin"),
        ]),
        // T&S with the reciprocity requirement relaxed / reversed.
        MotifSet::new(vec![named("anylink+superset"), named("anylink+adjacent")]),
        MotifSet::new(vec![named("outlink+superset"), named("outlink+adjacent")]),
        // T&S with the |m_a| weighting flattened.
        MotifSet::new(vec![
            named("mutual+superset+unit"),
            named("mutual+adjacent+unit"),
        ]),
        // Square paired with the shallow triangle.
        MotifSet::new(vec![named("mutual+shared"), named("mutual+adjacent")]),
        // Everything mutual the engine can traverse, all cycle lengths.
        MotifSet::new(vec![
            named("mutual+superset"),
            named("mutual+shared"),
            named("mutual+adjacent"),
            named("mutual+cousin"),
        ]),
    ];
    for set in combos {
        if !out.contains(&set) {
            out.push(set);
        }
    }
    out
}

/// Mean expansion-node F1 of a motif set against the planted optimal
/// query graphs of one dataset.
fn mean_expansion_f1(
    ctx: &ExperimentContext,
    dataset: &str,
    motifs: &MotifSet,
) -> f64 {
    let r = ctx.runner(dataset);
    let p = r.pipeline();
    let gt = ctx.ground_truth(dataset);
    let queries = &r.dataset().queries;
    if queries.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for q in queries {
        let qg = p.build_query_graph(&r.manual_nodes(q), motifs);
        let pred: BTreeSet<usize> = qg.expansions.iter().map(|&(a, _)| a.index()).collect();
        let truth: BTreeSet<usize> = gt
            .graph(&q.id)
            .map(|g| g.expansion_nodes.iter().map(|a| a.index()).collect())
            .unwrap_or_default();
        total += f1(&pred, &truth);
    }
    total / queries.len() as f64
}

fn f1(pred: &BTreeSet<usize>, truth: &BTreeSet<usize>) -> f64 {
    if pred.is_empty() && truth.is_empty() {
        return 1.0;
    }
    let inter = pred.intersection(truth).count() as f64;
    if inter == 0.0 {
        return 0.0;
    }
    let precision = inter / pred.len() as f64;
    let recall = inter / truth.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Scores every candidate against one dataset and ranks them.
fn search_dataset(
    ctx: &ExperimentContext,
    dataset: &str,
    candidates: &[MotifSet],
) -> DatasetMotifReport {
    let r = ctx.runner(dataset);
    let qrels = ctx.qrels(dataset);
    let ub_p10 = mean_precision(&r.run_sqe_ub(), &qrels, 10);
    let ql_q_p10 = mean_precision(&r.run_ql_q(), &qrels, 10);
    let mut ranked: Vec<MotifCell> = candidates
        .iter()
        .map(|motifs| {
            let p10 = mean_precision(&r.run_sqe(motifs, false), &qrels, 10);
            MotifCell {
                motifs: motifs.name(),
                fingerprint: motifs.fingerprint().to_string(),
                specs: motifs.len(),
                p10,
                ub_fraction: if ub_p10 > 0.0 { p10 / ub_p10 } else { 0.0 },
                gap_to_ub: ub_p10 - p10,
                expansion_f1: mean_expansion_f1(ctx, dataset, motifs),
                avg_expansions: r.avg_expansion_features(motifs),
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.p10
            .total_cmp(&a.p10)
            .then_with(|| a.motifs.cmp(&b.motifs))
    });
    let best = ranked.first().map(|c| c.motifs.clone()).unwrap_or_default();
    DatasetMotifReport {
        dataset: dataset.to_owned(),
        ub_p10,
        ql_q_p10,
        ranked,
        best,
    }
}

/// Runs the whole search over the three datasets.
pub fn run_motif_search(
    ctx: &ExperimentContext,
    context_name: &str,
    opts: &MotifSearchOptions,
) -> MotifSearchReport {
    let candidates = candidate_sets(opts);
    let datasets = ["imageclef", "chic2012", "chic2013"]
        .iter()
        .map(|d| search_dataset(ctx, d, &candidates))
        .collect();
    MotifSearchReport {
        context: context_name.to_owned(),
        candidates: candidates.len(),
        datasets,
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &MotifSearchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_motif.json` (or any other path).
pub fn write_report(report: &MotifSearchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary: the top candidates per dataset.
pub fn format_report(report: &MotifSearchReport) -> String {
    let mut s = format!(
        "=== motif-search ({} bed, {} candidate sets/dataset) ===\n",
        report.context, report.candidates
    );
    for ds in &report.datasets {
        s.push_str(&format!(
            "{}: SQE_UB P@10 {:.3}, QL_Q P@10 {:.3}\n{:<44}{:>7}{:>8}{:>8}{:>9}\n",
            ds.dataset, ds.ub_p10, ds.ql_q_p10, "motif set", "P@10", "%UB", "F1", "feats"
        ));
        for cell in ds.ranked.iter().take(8) {
            s.push_str(&format!(
                "  {:<42}{:>7.3}{:>7.1}%{:>8.3}{:>9.2}\n",
                cell.motifs,
                cell.p10,
                cell.ub_fraction * 100.0,
                cell.expansion_f1,
                cell.avg_expansions
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_is_distinct_and_large_enough() {
        for opts in [MotifSearchOptions::default(), MotifSearchOptions::smoke()] {
            let sets = candidate_sets(&opts);
            assert!(sets.len() >= 12, "need >= 12 candidates, got {}", sets.len());
            let fps: BTreeSet<String> =
                sets.iter().map(|s| s.fingerprint().to_string()).collect();
            assert_eq!(fps.len(), sets.len(), "candidate fingerprints must be distinct");
            assert!(sets.contains(&MotifSet::t_and_s()));
            assert!(sets.contains(&MotifSet::triangular()));
            assert!(sets.contains(&MotifSet::square()));
        }
    }

    #[test]
    fn smoke_search_ranks_candidates_against_the_upper_bound() {
        let ctx = ExperimentContext::small();
        let report = run_motif_search(&ctx, "small", &MotifSearchOptions::smoke());
        assert_eq!(report.datasets.len(), 3);
        for ds in &report.datasets {
            assert!(ds.ranked.len() >= 12, "{} ranks too few sets", ds.dataset);
            assert!(ds.ub_p10 > 0.0, "{}: upper bound must retrieve", ds.dataset);
            assert_eq!(ds.best, ds.ranked[0].motifs);
            // Ranking is monotone in P@10.
            for pair in ds.ranked.windows(2) {
                assert!(pair[0].p10 >= pair[1].p10);
            }
            // No candidate beats the planted upper bound.
            for cell in &ds.ranked {
                assert!(
                    cell.p10 <= ds.ub_p10 + 1e-9,
                    "{}: {} beats SQE_UB",
                    ds.dataset,
                    cell.motifs
                );
                assert!((0.0..=1.0 + 1e-9).contains(&cell.expansion_f1));
            }
        }
        let parsed: serde_json::Value =
            serde_json::from_str(&report_json(&report)).expect("report JSON parses");
        assert!(parsed.get("datasets").is_some());
        let table = format_report(&report);
        assert!(table.contains("motif-search"));
    }
}
