//! Live ingestion: a mutable buffer in front of immutable segments.
//!
//! [`SegmentedIndex`] is the only mutable piece of the segmented
//! architecture. `add_document` feeds an in-memory [`IndexBuilder`]
//! buffer; [`SegmentedIndex::seal`] freezes the buffer into a new
//! [`Segment`] — existing segments are never touched — and bumps the
//! **segment-set epoch** exactly once (auto-merges triggered by the
//! seal ride the same bump, so downstream caches invalidate once per
//! seal, not once per merge). [`SegmentedIndex::searcher`] publishes an
//! immutable [`Searcher`] over the sealed segments; buffered documents
//! are invisible until sealed.
//!
//! The [`TieredMergePolicy`] is deterministic and order-preserving: it
//! only ever merges *adjacent* runs of segments whose sizes fall in the
//! same power-of-two tier, so global doc ids (segment base + local id)
//! never change, and the merged segment is byte-identical to the index
//! a monolithic builder would have produced over the same stream.

use std::sync::Arc;

use rustc_hash::FxHashSet;

use crate::analysis::Analyzer;
use crate::index::{DocId, Index, IndexBuilder};
use crate::searcher::Searcher;
use crate::segment::Segment;

/// Rejected ingestion. Mirrors [`crate::IndexBuildError`] but is checked
/// across the *whole* segmented corpus (sealed segments and the live
/// buffer), not just the current builder.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — ingest error, never persisted
pub enum IngestError {
    /// The external id already exists in a sealed segment or the buffer.
    DuplicateExternalId {
        /// The offending external id.
        external_id: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::DuplicateExternalId { external_id } => {
                write!(f, "external id `{external_id}` already exists in the segmented index")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Deterministic merge policy: whenever `merge_factor` *adjacent*
/// segments fall in the same size tier (`floor(log2(num_docs))`), they
/// are compacted into one segment; cascades until no such run exists.
/// Scanning is left-to-right and restarts after every merge, so the
/// result is a pure function of the seal sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — configuration, never persisted
pub struct TieredMergePolicy {
    /// How many same-tier adjacent segments trigger a merge (≥ 2).
    pub merge_factor: usize,
}

impl Default for TieredMergePolicy {
    fn default() -> Self {
        TieredMergePolicy { merge_factor: 4 }
    }
}

impl TieredMergePolicy {
    /// Size tier of a segment: `floor(log2(max(docs, 1)))`.
    fn tier(docs: usize) -> u32 {
        usize::BITS - 1 - docs.max(1).leading_zeros()
    }

    /// Applies the policy in place; returns the number of merge
    /// operations performed. `next_id` supplies fresh segment ids.
    fn apply(&self, segments: &mut Vec<Arc<Segment>>, next_id: &mut u64) -> usize {
        let factor = self.merge_factor.max(2);
        let mut merges = 0;
        'outer: loop {
            for start in 0..segments.len() {
                let end = start + factor;
                if end > segments.len() {
                    break;
                }
                let t = Self::tier(segments[start].num_docs());
                if segments[start + 1..end]
                    .iter()
                    .all(|s| Self::tier(s.num_docs()) == t)
                {
                    let merged = Segment::merge(*next_id, &segments[start..end]).expect(
                        "invariant: merging audited adjacent segments preserves index shape",
                    );
                    *next_id += 1;
                    segments.splice(start..end, std::iter::once(Arc::new(merged)));
                    merges += 1;
                    continue 'outer;
                }
            }
            return merges;
        }
    }
}

/// Outcome of a successful [`SegmentedIndex::seal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — transient report, never persisted
pub struct SealReport {
    /// Id of the newly sealed segment.
    pub segment_id: u64,
    /// Merge operations the seal triggered under the policy.
    pub merges: usize,
    /// The epoch the segment set moved to.
    pub epoch: u64,
}

/// A detached ingest buffer waiting to be built into a segment — the
/// output of [`SegmentedIndex::begin_seal`]. Holding one reserves a
/// segment id; the id is burnt (never reused) if the pending seal is
/// dropped without [`SegmentedIndex::commit_seal`].
///
/// The point of the three-phase `begin_seal` → [`PendingSeal::build`] →
/// `commit_seal` protocol is that the expensive build runs **without**
/// whatever lock guards the [`SegmentedIndex`]: a serving layer takes the
/// lock only for the cheap begin/commit phases, so queries and ingestion
/// are never stalled behind segment construction.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — transient seal phase, never persisted
pub struct PendingSeal {
    builder: IndexBuilder,
    segment_id: u64,
    docs: usize,
}

impl PendingSeal {
    /// Builds the detached buffer into an immutable segment. This is the
    /// expensive phase — run it outside any lock guarding the index.
    pub fn build(self) -> BuiltSegment {
        let index = self.builder.build();
        #[cfg(all(debug_assertions, feature = "validate"))]
        {
            let audit = crate::audit::IndexAudit::run(&index);
            debug_assert!(audit.is_clean(), "sealed buffer failed audit: {audit:?}");
        }
        BuiltSegment {
            segment: Segment::new(self.segment_id, index),
            docs: self.docs,
        }
    }
}

/// An immutable segment built from a [`PendingSeal`], ready for
/// [`SegmentedIndex::commit_seal`].
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — transient seal phase, never persisted
pub struct BuiltSegment {
    segment: Segment,
    docs: usize,
}

/// A point-in-time snapshot of the segment set, detached for merging —
/// the output of [`SegmentedIndex::merge_task`]. Run the expensive
/// [`MergeTask::run_policy`] / [`MergeTask::run_full`] phase outside any
/// lock, then hand the [`MergeOutcome`] back to
/// [`SegmentedIndex::install_merge`].
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — transient merge phase, never persisted
pub struct MergeTask {
    segments: Vec<Arc<Segment>>,
    next_segment_id: u64,
    based_on_epoch: u64,
    policy: TieredMergePolicy,
}

impl MergeTask {
    /// Applies the tiered merge policy to the snapshot. `merges` may be
    /// zero (no same-tier run existed); installing a zero-merge outcome
    /// is a no-op.
    pub fn run_policy(mut self) -> MergeOutcome {
        let merges = self.policy.apply(&mut self.segments, &mut self.next_segment_id);
        MergeOutcome {
            segments: self.segments,
            next_segment_id: self.next_segment_id,
            based_on_epoch: self.based_on_epoch,
            merges,
            bump_epoch: false,
        }
    }

    /// Compacts the whole snapshot into one segment. Returns `None` when
    /// there is nothing to merge (fewer than two segments). The outcome
    /// bumps the epoch on install, mirroring the
    /// [`SegmentedIndex::force_merge`] contract.
    pub fn run_full(mut self) -> Option<MergeOutcome> {
        if self.segments.len() < 2 {
            return None;
        }
        let merged = Segment::merge(self.next_segment_id, &self.segments)
            .expect("invariant: merging audited adjacent segments preserves index shape");
        self.next_segment_id += 1;
        self.segments.clear();
        self.segments.push(Arc::new(merged));
        Some(MergeOutcome {
            segments: self.segments,
            next_segment_id: self.next_segment_id,
            based_on_epoch: self.based_on_epoch,
            merges: 1,
            bump_epoch: true,
        })
    }
}

/// A merged segment set produced by a [`MergeTask`], tagged with the
/// epoch it was based on so a stale outcome is rejected instead of
/// clobbering newer seals.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — transient merge phase, never persisted
pub struct MergeOutcome {
    segments: Vec<Arc<Segment>>,
    next_segment_id: u64,
    based_on_epoch: u64,
    merges: usize,
    bump_epoch: bool,
}

/// A growing corpus: immutable sealed segments plus one mutable buffer.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — persisted per-segment via sqe-store
pub struct SegmentedIndex {
    analyzer: Analyzer,
    segments: Vec<Arc<Segment>>,
    buffer: IndexBuilder,
    /// External ids across sealed segments *and* the buffer.
    seen: FxHashSet<String>,
    /// Documents detached into a [`PendingSeal`] that has not committed
    /// yet. They occupy the global doc-id range right after the sealed
    /// docs, so ids handed out by [`SegmentedIndex::add_document`] during
    /// an out-of-lock build stay correct.
    pending_docs: usize,
    next_segment_id: u64,
    epoch: u64,
    policy: TieredMergePolicy,
}

impl SegmentedIndex {
    /// An empty corpus with the default merge policy.
    pub fn new(analyzer: Analyzer) -> SegmentedIndex {
        SegmentedIndex::with_policy(analyzer, TieredMergePolicy::default())
    }

    /// An empty corpus with an explicit merge policy.
    pub fn with_policy(analyzer: Analyzer, policy: TieredMergePolicy) -> SegmentedIndex {
        let buffer = IndexBuilder::new(analyzer.clone());
        SegmentedIndex {
            analyzer,
            segments: Vec::new(),
            buffer,
            seen: FxHashSet::default(),
            pending_docs: 0,
            next_segment_id: 0,
            epoch: 0,
            policy,
        }
    }

    /// Wraps an existing monolithic index as segment 0 at epoch 0 —
    /// the migration path for callers that build an [`Index`] up front
    /// and want live ingestion afterwards.
    pub fn from_index(index: Index) -> SegmentedIndex {
        let mut s = SegmentedIndex::new(index.analyzer().clone());
        s.seen.extend(index.external_ids().iter().cloned());
        if index.num_docs() > 0 {
            s.segments.push(Arc::new(Segment::new(0, index)));
            s.next_segment_id = 1;
        }
        s
    }

    /// Wraps already-sealed segments (e.g. decoded from a snapshot) at
    /// epoch 0 — the cold-start path for a segmented snapshot. Segment
    /// order is preserved; ids keep counting past the largest existing id.
    pub fn from_segments(analyzer: Analyzer, segments: Vec<Arc<Segment>>) -> SegmentedIndex {
        let mut s = SegmentedIndex::new(analyzer);
        for seg in &segments {
            s.seen.extend(seg.index().external_ids().iter().cloned());
        }
        s.next_segment_id = segments.iter().map(|g| g.id() + 1).max().unwrap_or(0);
        s.segments = segments;
        s
    }

    /// The analyzer every segment and the buffer share.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Current segment-set epoch; bumps exactly once per successful
    /// [`SegmentedIndex::seal`] or effective [`SegmentedIndex::force_merge`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of sealed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Documents in sealed segments (visible to searchers).
    pub fn num_sealed_docs(&self) -> usize {
        self.segments.iter().map(|s| s.num_docs()).sum()
    }

    /// Documents waiting in the buffer or detached in an uncommitted
    /// [`PendingSeal`] (invisible until sealed/committed).
    pub fn num_buffered_docs(&self) -> usize {
        self.buffer.num_docs() + self.pending_docs
    }

    /// True when `external_id` already exists anywhere in this corpus —
    /// sealed segments, pending seals and the live buffer alike. Sharded
    /// deployments route each id to one shard, but a re-routed id (for
    /// example after a shard-count change) could land on a different
    /// shard than its original copy; this probe lets the shard layer
    /// extend the duplicate check across every sibling corpus.
    pub fn contains_external_id(&self, external_id: &str) -> bool {
        self.seen.contains(external_id)
    }

    /// Adds a document to the live buffer; returns the **global** doc id
    /// it will occupy once sealed. Duplicate external ids are rejected
    /// against the entire corpus, sealed and buffered alike.
    pub fn add_document(&mut self, external_id: &str, text: &str) -> Result<DocId, IngestError> {
        if !self.seen.insert(external_id.to_owned()) {
            return Err(IngestError::DuplicateExternalId {
                external_id: external_id.to_owned(),
            });
        }
        let sealed = u32::try_from(self.num_sealed_docs() + self.pending_docs)
            .expect("invariant: doc count fits in u32 ids");
        let local = self
            .buffer
            .add_document(external_id, text)
            .expect("invariant: corpus-wide seen set subsumes the buffer's duplicate check");
        Ok(DocId(sealed + local.0))
    }

    /// Detaches the ingest buffer for an out-of-lock build, reserving a
    /// segment id. Returns `None` when the buffer is empty. Cheap: no
    /// index construction happens here. New documents keep arriving in a
    /// fresh buffer and are assigned ids *after* the detached docs.
    pub fn begin_seal(&mut self) -> Option<PendingSeal> {
        let docs = self.buffer.num_docs();
        if docs == 0 {
            return None;
        }
        let builder = std::mem::replace(&mut self.buffer, IndexBuilder::new(self.analyzer.clone()));
        let segment_id = self.next_segment_id;
        self.next_segment_id += 1;
        self.pending_docs += docs;
        Some(PendingSeal {
            builder,
            segment_id,
            docs,
        })
    }

    /// Appends a segment built from [`PendingSeal::build`] and bumps the
    /// epoch once. Cheap: the expensive build already happened. The merge
    /// policy is *not* applied here — follow up with
    /// [`SegmentedIndex::merge_task`] / [`SegmentedIndex::install_merge`]
    /// (or use the all-in-one [`SegmentedIndex::seal`]).
    pub fn commit_seal(&mut self, built: BuiltSegment) -> SealReport {
        let segment_id = built.segment.id();
        self.pending_docs -= built.docs;
        self.segments.push(Arc::new(built.segment));
        self.epoch += 1;
        SealReport {
            segment_id,
            merges: 0,
            epoch: self.epoch,
        }
    }

    /// Snapshots the segment set for an out-of-lock merge. Cheap: clones
    /// `Arc`s only.
    pub fn merge_task(&self) -> MergeTask {
        MergeTask {
            segments: self.segments.clone(),
            next_segment_id: self.next_segment_id,
            based_on_epoch: self.epoch,
            policy: self.policy,
        }
    }

    /// Installs a merge outcome, returning how many merge operations it
    /// carried. Returns `None` (discarding the outcome) when the epoch
    /// moved since [`SegmentedIndex::merge_task`] — the segment set the
    /// merge was computed from no longer exists, and merges are an
    /// optimisation that can always be redone later. Policy merges keep
    /// the epoch (they ride the seal that triggered them); a
    /// [`MergeTask::run_full`] outcome bumps it.
    pub fn install_merge(&mut self, outcome: MergeOutcome) -> Option<usize> {
        if outcome.based_on_epoch != self.epoch {
            return None;
        }
        if outcome.merges > 0 {
            self.segments = outcome.segments;
            self.next_segment_id = outcome.next_segment_id;
            if outcome.bump_epoch {
                self.epoch += 1;
            }
        }
        Some(outcome.merges)
    }

    /// Seals the buffer into a new immutable segment, applies the merge
    /// policy, and bumps the epoch once. Returns `None` (and leaves the
    /// epoch untouched) when the buffer is empty. Synchronous convenience
    /// over the `begin_seal` → `build` → `commit_seal` → merge phases.
    pub fn seal(&mut self) -> Option<SealReport> {
        let pending = self.begin_seal()?;
        // lint:allow(must-audit-after-mutation) — IndexAudit runs inside PendingSeal::build
        let built = pending.build();
        let mut report = self.commit_seal(built);
        let outcome = self.merge_task().run_policy();
        report.merges = self
            .install_merge(outcome)
            .expect("invariant: no interleaved epoch bump through &mut self");
        Some(report)
    }

    /// Compacts every sealed segment into one. Returns `true` (with one
    /// epoch bump) if the segment set changed. Buffered docs stay put.
    pub fn force_merge(&mut self) -> bool {
        let Some(outcome) = self.merge_task().run_full() else {
            return false;
        };
        self.install_merge(outcome)
            .expect("invariant: no interleaved epoch bump through &mut self");
        true
    }

    /// Publishes an immutable view over the sealed segments at the
    /// current epoch.
    pub fn searcher(&self) -> Searcher {
        Searcher::new(self.analyzer.clone(), self.segments.clone(), self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| {
                (
                    format!("doc{i}"),
                    format!("cable car number {i} climbs hill {}", i % 3),
                )
            })
            .collect()
    }

    fn monolithic(all: &[(String, String)]) -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in all {
            b.add_document(id, text).expect("unique test ids");
        }
        b.build()
    }

    #[test]
    fn duplicate_ids_rejected_across_seals() {
        let mut s = SegmentedIndex::new(Analyzer::plain());
        s.add_document("a", "one").expect("fresh id");
        s.seal().expect("non-empty buffer seals");
        let err = s.add_document("a", "two").unwrap_err();
        assert_eq!(
            err,
            IngestError::DuplicateExternalId {
                external_id: "a".to_owned()
            }
        );
        // Buffer-level duplicates too.
        s.add_document("b", "three").expect("fresh id");
        assert!(s.add_document("b", "four").is_err());
    }

    #[test]
    fn seal_bumps_epoch_exactly_once_and_empty_seal_is_noop() {
        let mut s = SegmentedIndex::new(Analyzer::plain());
        assert_eq!(s.epoch(), 0);
        assert!(s.seal().is_none(), "empty buffer must not seal");
        assert_eq!(s.epoch(), 0);
        s.add_document("a", "cable car").expect("fresh id");
        let r = s.seal().expect("non-empty buffer seals");
        assert_eq!((r.epoch, s.epoch()), (1, 1));
        assert!(s.seal().is_none());
        assert_eq!(s.epoch(), 1, "no-op seal must not bump the epoch");
    }

    #[test]
    fn global_doc_ids_are_assigned_in_ingest_order() {
        let mut s = SegmentedIndex::new(Analyzer::plain());
        assert_eq!(s.add_document("a", "x").expect("fresh"), DocId(0));
        assert_eq!(s.add_document("b", "y").expect("fresh"), DocId(1));
        s.seal().expect("seals");
        assert_eq!(s.add_document("c", "z").expect("fresh"), DocId(2));
        s.seal().expect("seals");
        let view = s.searcher();
        assert_eq!(view.external_id(DocId(2)), "c");
    }

    #[test]
    fn buffered_docs_invisible_until_sealed() {
        let mut s = SegmentedIndex::new(Analyzer::plain());
        s.add_document("a", "cable").expect("fresh");
        assert_eq!(s.searcher().num_docs(), 0);
        s.seal().expect("seals");
        assert_eq!(s.searcher().num_docs(), 1);
    }

    #[test]
    fn tiered_policy_merges_same_tier_runs_deterministically() {
        let policy = TieredMergePolicy { merge_factor: 2 };
        let mut s = SegmentedIndex::with_policy(Analyzer::plain(), policy);
        let all = docs(4);
        // Seal four 1-doc segments: each pair merges, then the pair of
        // merged 2-doc segments merges again — cascading to 1 segment.
        for (i, (id, text)) in all.iter().enumerate() {
            s.add_document(id, text).expect("fresh");
            let r = s.seal().expect("seals");
            if i % 2 == 1 {
                assert!(r.merges >= 1, "seal {i} should trigger a merge");
            }
        }
        assert_eq!(s.num_segments(), 1);
        assert_eq!(
            s.searcher().segments()[0].index().to_json().expect("json"),
            monolithic(&all).to_json().expect("json"),
            "cascaded merges must reproduce the monolithic index"
        );
    }

    #[test]
    fn force_merge_compacts_to_monolithic() {
        // Large merge factor => no auto merges; then force.
        let mut s = SegmentedIndex::with_policy(
            Analyzer::plain(),
            TieredMergePolicy { merge_factor: 64 },
        );
        let all = docs(5);
        for (id, text) in &all {
            s.add_document(id, text).expect("fresh");
            s.seal().expect("seals");
        }
        assert_eq!(s.num_segments(), 5);
        let before = s.epoch();
        assert!(s.force_merge());
        assert_eq!(s.epoch(), before + 1);
        assert_eq!(s.num_segments(), 1);
        assert!(!s.force_merge(), "single segment: nothing to merge");
        assert_eq!(s.epoch(), before + 1);
        assert_eq!(
            s.searcher().segments()[0].index().to_json().expect("json"),
            monolithic(&all).to_json().expect("json")
        );
    }

    #[test]
    fn phased_seal_assigns_ids_across_pending_build() {
        let mut s = SegmentedIndex::new(Analyzer::plain());
        assert_eq!(s.add_document("a", "x").expect("fresh"), DocId(0));
        let pending = s.begin_seal().expect("non-empty buffer detaches");
        // Docs arriving while the detached build runs (out of lock in a
        // serving layer) must slot in after the pending docs.
        assert_eq!(s.add_document("b", "y").expect("fresh"), DocId(1));
        assert_eq!(s.num_buffered_docs(), 2, "pending + fresh buffer");
        let report = s.commit_seal(pending.build());
        assert_eq!((report.epoch, report.merges), (1, 0));
        assert_eq!(s.num_buffered_docs(), 1, "pending docs committed");
        assert_eq!(s.searcher().external_id(DocId(0)), "a");
        s.seal().expect("seals the fresh buffer");
        assert_eq!(s.searcher().external_id(DocId(1)), "b");
    }

    #[test]
    fn stale_merge_outcome_is_discarded() {
        let mut s = SegmentedIndex::with_policy(
            Analyzer::plain(),
            TieredMergePolicy { merge_factor: 64 },
        );
        for (id, text) in &docs(3) {
            s.add_document(id, text).expect("fresh");
            s.seal().expect("seals");
        }
        let task = s.merge_task();
        // Epoch moves under the snapshot: the outcome must be rejected.
        s.add_document("late", "late doc").expect("fresh");
        s.seal().expect("seals");
        let outcome = task.run_full().expect("three segments are mergeable");
        assert_eq!(s.install_merge(outcome), None, "stale outcome discarded");
        assert_eq!(s.num_segments(), 4, "segment set untouched");
        assert!(s.force_merge(), "a fresh merge still works");
        assert_eq!(s.num_segments(), 1);
    }

    #[test]
    fn from_index_preserves_ids_and_rejects_known_duplicates() {
        let all = docs(3);
        let mut s = SegmentedIndex::from_index(monolithic(&all));
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.num_sealed_docs(), 3);
        assert!(s.add_document("doc1", "again").is_err());
        assert_eq!(s.add_document("fresh", "new doc").expect("fresh"), DocId(3));
    }
}
