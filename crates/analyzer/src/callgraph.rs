//! Workspace call graph over the [`crate::symbols::WorkspaceModel`].
//!
//! Nodes are function definitions; edges are call sites resolved by a
//! two-tier scheme:
//!
//! 1. **Qualified resolution**: `Csr::from_raw_parts(..)` links to a
//!    function named `from_raw_parts` defined in `impl Csr` (the last two
//!    path segments must match `Type::name`).
//! 2. **Name fallback**: unqualified calls and method calls (`x.rank(..)`)
//!    link to *every* workspace function with that name — except that
//!    `self.method(..)` prefers same-impl candidates when they exist.
//!    This is deliberately conservative: trait-object dispatch (e.g.
//!    `Motif::expansions`) cannot be resolved statically here, and
//!    over-approximating keeps panic-reachability sound.
//!
//! Calls that match no workspace function (std, vendored deps) produce no
//! edge. Test functions are never edge *targets*, so name collisions with
//! test helpers cannot create false reachability.

use std::collections::BTreeMap;

use crate::ast::{Expr, FnDef};
use crate::symbols::{crate_of, WorkspaceModel};

/// How a function can panic directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect("...")` whose message does not name an invariant.
    NonInvariantExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro(String),
    /// Bare indexing (`x[i]`) with no assert in the function mentioning
    /// the indexed binding.
    Indexing,
}

/// One direct panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What panics.
    pub kind: PanicKind,
}

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Display name: `Csr::neighbors` inside `impl Csr`, bare otherwise.
    pub qual: String,
    /// Bare function name.
    pub name: String,
    /// Impl-type qualifier, if any.
    pub ty: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// Owning crate.
    pub crate_name: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// True for test code (attribute- or location-derived).
    pub is_test: bool,
    /// Direct panic sources in the body.
    pub panics: Vec<PanicSite>,
}

/// Method names shadowed by ubiquitous std-library methods. Bare
/// `.name(..)` calls with these names never use name fallback — they are
/// overwhelmingly std calls, and resolving them would connect nearly every
/// function to every workspace impl of `push`/`len`/`get`/...
pub(crate) const STD_METHOD_NAMES: &[&str] = &[
    "new", "push", "pop", "len", "is_empty", "get", "get_mut", "insert", "remove", "contains",
    "contains_key", "iter", "iter_mut", "into_iter", "next", "clone", "clear", "extend", "entry",
    "keys", "values", "drain", "sort", "sort_by", "sort_unstable", "sort_unstable_by",
    "sort_by_key", "map", "and_then", "filter", "collect", "fold", "sum", "count", "min", "max",
    "rev", "enumerate", "zip", "take", "skip", "chain", "flat_map", "flatten", "cmp",
    "partial_cmp", "eq", "hash", "fmt", "write", "read", "push_str", "chars", "bytes", "split",
    "trim", "parse", "to_string", "to_owned", "as_str", "as_ref", "as_slice", "as_bytes", "join",
    "last", "first", "retain", "dedup", "windows", "chunks", "copied", "cloned", "unwrap",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect", "ok", "err", "any", "all",
    "find", "position", "resize", "truncate", "swap", "abs", "min_by", "max_by", "min_by_key",
    "max_by_key", "to_vec", "starts_with", "ends_with", "lines", "floor", "ceil", "sqrt", "ln",
    "log2", "powi", "powf", "exp", "default", "with_capacity", "reserve", "load", "store",
    "fetch_add", "compare_exchange", "lock", "try_lock",
];

/// Second-to-last path segment — the qualifier of `Ty::name` / `krate::name`.
fn quali(segs: &[String]) -> &String {
    &segs[segs.len() - 2]
}

/// A call site awaiting resolution.
enum CallDesc {
    /// `a::b::c(..)` — full path segments.
    Path(Vec<String>),
    /// `recv.name(..)`; `self_recv` is true when the receiver is `self`.
    Method { name: String, self_recv: bool },
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// All function nodes, in deterministic file/definition order.
    pub nodes: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from every function in the model.
    pub fn build(model: &WorkspaceModel) -> CallGraph {
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut descs: Vec<Vec<CallDesc>> = Vec::new();
        model.for_each_fn(&mut |file, ty, is_test, def| {
            let (panics, calls) = scan_body(def);
            let qual = match ty {
                Some(t) => format!("{t}::{}", def.name),
                None => def.name.clone(),
            };
            nodes.push(FnNode {
                qual,
                name: def.name.clone(),
                ty: ty.map(str::to_string),
                file: file.rel.clone(),
                crate_name: crate_of(&file.rel).to_string(),
                line: def.line,
                is_test,
                panics,
            });
            descs.push(calls);
        });

        // Name index over non-test nodes (tests are never call targets).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if !n.is_test {
                by_name.entry(&n.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (src, calls) in descs.iter().enumerate() {
            let src_ty = nodes[src].ty.clone();
            for call in calls {
                let targets: Vec<usize> = match call {
                    CallDesc::Path(segs) => {
                        let Some(name) = segs.last() else { continue };
                        let Some(cands) = by_name.get(name.as_str()) else {
                            continue;
                        };
                        if segs.len() >= 2 {
                            // The qualifier is informative: `Vec::new` must
                            // never resolve to an unrelated workspace `new`.
                            cands
                                .iter()
                                .copied()
                                .filter(|&c| {
                                    nodes[c].ty.as_deref() == Some(quali(segs).as_str())
                                        || nodes[c].crate_name == *quali(segs)
                                })
                                .collect()
                        } else {
                            cands.clone()
                        }
                    }
                    CallDesc::Method { name, self_recv } => {
                        let Some(cands) = by_name.get(name.as_str()) else {
                            continue;
                        };
                        let same_ty: Vec<usize> = if *self_recv {
                            cands
                                .iter()
                                .copied()
                                .filter(|&c| nodes[c].ty == src_ty)
                                .collect()
                        } else {
                            Vec::new()
                        };
                        if !same_ty.is_empty() {
                            same_ty
                        } else if STD_METHOD_NAMES.contains(&name.as_str()) {
                            // Names that shadow ubiquitous std methods would
                            // link nearly everything to everything under name
                            // fallback; the workspace impls of these names are
                            // hot-path entry points checked directly anyway.
                            continue;
                        } else {
                            cands.clone()
                        }
                    }
                };
                edges[src].extend(targets);
            }
            edges[src].sort_unstable();
            edges[src].dedup();
        }
        CallGraph { nodes, edges }
    }

    /// Outgoing call edges of a node.
    pub fn callees(&self, id: usize) -> &[usize] {
        &self.edges[id]
    }

    /// Node ids whose `qual` or `name` equals `name`.
    pub fn find(&self, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.qual == name || n.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `entries`. Returns a parent map: `parent[i] = Some(p)`
    /// when `i` is reachable (`p == i` for the entries themselves),
    /// `None` otherwise. Cycles are handled by the visited set.
    pub fn reachable_from(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &e in entries {
            if parent[e].is_none() {
                parent[e] = Some(e);
                queue.push(e);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &next in &self.edges[cur] {
                if parent[next].is_none() {
                    parent[next] = Some(cur);
                    queue.push(next);
                }
            }
        }
        parent
    }

    /// Strongly connected components of the call graph in reverse
    /// topological order (callees before callers) — the bottom-up order
    /// a summary-based interprocedural analysis wants. Iterative Tarjan;
    /// each component's member ids are sorted for determinism.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next child cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < self.edges[v].len() {
                    let w = self.edges[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// The entry→node call path implied by a parent map, as `qual` names
    /// (entry first). Truncated in the middle when longer than 6 hops.
    pub fn trace(&self, parent: &[Option<usize>], id: usize) -> Vec<String> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        let names: Vec<String> = path.iter().map(|&i| self.nodes[i].qual.clone()).collect();
        if names.len() <= 6 {
            names
        } else {
            let mut out = names[..3].to_vec();
            out.push("...".to_string());
            out.extend_from_slice(&names[names.len() - 2..]);
            out
        }
    }
}

/// Walks one body, collecting panic sites and call descriptors.
fn scan_body(def: &FnDef) -> (Vec<PanicSite>, Vec<CallDesc>) {
    let mut panics = Vec::new();
    let mut calls = Vec::new();
    let Some(body) = &def.body else {
        return (panics, calls);
    };
    // Pass 1: assert-style macros guard indexing on the bindings they
    // mention anywhere in the function.
    let mut guard_text = String::new();
    for s in &body.stmts {
        s.walk(&mut |e| {
            if let Expr::Macro { name, inner, .. } = e {
                let base = name.rsplit("::").next().unwrap_or(name);
                if base.starts_with("assert") || base.starts_with("debug_assert") {
                    for i in inner {
                        guard_text.push_str(&i.text());
                        guard_text.push(' ');
                    }
                }
            }
        });
    }
    for s in &body.stmts {
        s.walk(&mut |e| match e {
            Expr::MethodCall {
                method, args, line, recv, ..
            } => {
                match method.as_str() {
                    "unwrap" if args.is_empty() => panics.push(PanicSite {
                        line: *line,
                        kind: PanicKind::Unwrap,
                    }),
                    "expect" => {
                        let invariant = args.iter().any(|a| {
                            matches!(a, Expr::Lit { text, .. } if text.contains("invariant"))
                        });
                        if !invariant {
                            panics.push(PanicSite {
                                line: *line,
                                kind: PanicKind::NonInvariantExpect,
                            });
                        }
                    }
                    _ => {}
                }
                let self_recv = matches!(
                    recv.as_ref(),
                    Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self"
                );
                calls.push(CallDesc::Method {
                    name: method.clone(),
                    self_recv,
                });
            }
            Expr::Call { callee, line: _, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    calls.push(CallDesc::Path(segs.clone()));
                }
            }
            Expr::Macro { name, line, .. } => {
                let base = name.rsplit("::").next().unwrap_or(name);
                if matches!(base, "panic" | "unreachable" | "todo" | "unimplemented") {
                    panics.push(PanicSite {
                        line: *line,
                        kind: PanicKind::PanicMacro(base.to_string()),
                    });
                }
            }
            Expr::Index { recv, line, .. } => {
                let guarded = recv
                    .root_ident()
                    .is_some_and(|root| guard_text.contains(root));
                if !guarded {
                    panics.push(PanicSite {
                        line: *line,
                        kind: PanicKind::Indexing,
                    });
                }
            }
            _ => {}
        });
    }
    (panics, calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::symbols::WorkspaceModel;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed = files
            .iter()
            .map(|(rel, src)| parse_file(rel, src))
            .collect();
        CallGraph::build(&WorkspaceModel::new(parsed))
    }

    #[test]
    fn cycle_in_call_graph_terminates() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn ping() { pong(); } pub fn pong() { ping(); }",
        )]);
        let entry = g.find("ping");
        let parent = g.reachable_from(&entry);
        let pong = g.find("pong")[0];
        assert!(parent[pong].is_some(), "cycle must still be traversed");
        assert_eq!(g.trace(&parent, pong), vec!["ping", "pong"]);
    }

    #[test]
    fn cross_crate_edge_resolves() {
        let g = graph(&[
            (
                "crates/searchlite/src/ql.rs",
                "pub fn rank() { kbgraph::helper(); }",
            ),
            (
                "crates/kbgraph/src/lib.rs",
                "pub fn helper() { boom(); } pub fn boom() { panic!(\"x\"); }",
            ),
        ]);
        let parent = g.reachable_from(&g.find("rank"));
        let boom = g.find("boom")[0];
        assert!(parent[boom].is_some());
        assert_eq!(g.trace(&parent, boom), vec!["rank", "helper", "boom"]);
        assert_eq!(
            g.nodes[boom].panics.first().map(|p| p.kind.clone()),
            Some(PanicKind::PanicMacro("panic".into()))
        );
    }

    #[test]
    fn qualified_call_prefers_typed_match() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B; \
             impl A { pub fn go(&self) {} } \
             impl B { pub fn go(&self) { x.unwrap(); } } \
             pub fn entry() { A::go(); }",
        )]);
        let parent = g.reachable_from(&g.find("entry"));
        let a_go = g.find("A::go")[0];
        let b_go = g.find("B::go")[0];
        assert!(parent[a_go].is_some(), "typed match links");
        assert!(parent[b_go].is_none(), "other impls must not link");
    }

    #[test]
    fn trait_method_falls_back_to_name_resolution() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "trait M { fn expansions(&self); } \
             struct T; impl M for T { fn expansions(&self) { helper(); } } \
             pub fn entry(m: &dyn M) { m.expansions(); } \
             fn helper() {}",
        )]);
        let parent = g.reachable_from(&g.find("entry"));
        let imp = g.find("T::expansions")[0];
        assert!(
            parent[imp].is_some(),
            "dynamic dispatch over-approximates to all impls"
        );
        let helper = g.find("helper")[0];
        assert!(parent[helper].is_some());
    }

    #[test]
    fn test_fns_are_not_targets() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { helper(); } \
             #[cfg(test)] mod tests { pub fn helper() { x.unwrap(); } }",
        )]);
        let parent = g.reachable_from(&g.find("entry"));
        let helper = g.find("helper")[0];
        assert!(parent[helper].is_none(), "test helpers never resolve");
    }

    #[test]
    fn panic_sites_classified() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
             let a = o.unwrap();\n\
             let b = o.expect(\"no context\");\n\
             let c = o.expect(\"invariant: offsets are monotonic\");\n\
             v[0] + a + b + c\n}",
        )]);
        let f = g.find("f")[0];
        let kinds: Vec<&PanicKind> = g.nodes[f].panics.iter().map(|p| &p.kind).collect();
        assert!(kinds.contains(&&PanicKind::Unwrap));
        assert!(kinds.contains(&&PanicKind::NonInvariantExpect));
        assert!(kinds.contains(&&PanicKind::Indexing));
        assert_eq!(kinds.len(), 3, "invariant expect is allowlisted: {kinds:?}");
    }

    #[test]
    fn sccs_group_cycles_and_order_bottom_up() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn ping() { pong(); } pub fn pong() { ping(); } \
             pub fn entry() { ping(); leaf(); } pub fn leaf() {}",
        )]);
        let comps = g.sccs();
        // Every node in exactly one component.
        let mut seen: Vec<usize> = comps.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..g.nodes.len()).collect::<Vec<_>>());
        // ping/pong form one two-node component.
        let ping = g.find("ping")[0];
        let pong = g.find("pong")[0];
        let cycle = comps
            .iter()
            .find(|c| c.contains(&ping))
            .expect("ping in some comp");
        assert!(cycle.contains(&pong), "mutual recursion shares a component");
        assert_eq!(cycle.len(), 2);
        // Reverse topological: every callee's component appears no later
        // than its caller's (callees first = bottom-up).
        let mut comp_of = vec![0usize; g.nodes.len()];
        for (ci, c) in comps.iter().enumerate() {
            for &m in c {
                comp_of[m] = ci;
            }
        }
        for v in 0..g.nodes.len() {
            for &w in g.callees(v) {
                assert!(
                    comp_of[w] <= comp_of[v],
                    "callee component must come first: {} -> {}",
                    g.nodes[v].qual,
                    g.nodes[w].qual
                );
            }
        }
    }

    #[test]
    fn assert_guards_indexing() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn f(v: &[u32], i: usize) -> u32 { assert!(i < v.len()); v[i] }",
        )]);
        let f = g.find("f")[0];
        assert!(g.nodes[f].panics.is_empty(), "{:?}", g.nodes[f].panics);
    }
}
