//! Quickstart: expand a query with the triangular and square motifs and
//! retrieve against a small caption collection.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Reproduces the paper's Figure 4 on a hand-written miniature of its two
//! examples: query #93 "cable cars" pulls in *funicular* through the
//! triangular motif; query #73 "graffiti street art on walls" pulls in
//! *Banksy* through the square motif.

use sqe::{MotifSet, SqeConfig, SqePipeline};
use sqe_repro::demo_world;

fn main() {
    let world = demo_world();
    let pipeline = SqePipeline::from_index(&world.graph, &world.index, SqeConfig::default());

    for (query, nodes, label) in [
        ("cable cars", vec![world.cable_car], "Figure 4a (triangular)"),
        (
            "graffiti street art on walls",
            vec![world.graffiti],
            "Figure 4b (square)",
        ),
    ] {
        println!("=== {label}: \"{query}\" ===");
        let expanded = pipeline.expand(query, &nodes, &MotifSet::t_and_s());
        println!("query graph expansions:");
        for &(article, m) in &expanded.query_graph.expansions {
            println!(
                "  {} (|m_a| = {m})",
                world.graph.article_title(article)
            );
        }
        println!("expanded query: {}", expanded.query.render());
        let (hits, _) = pipeline.rank_sqe(query, &nodes, &MotifSet::t_and_s());
        println!("top results:");
        for hit in hits.iter().take(5) {
            println!(
                "  {:>8.3}  {}",
                hit.score,
                world.index.external_id(hit.doc)
            );
        }
        println!();
    }
}
