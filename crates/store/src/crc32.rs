//! CRC-32 (IEEE 802.3 polynomial, reflected) over byte slices.
//!
//! Hand-rolled because the build is offline. The kernel is
//! slicing-by-sixteen: sixteen 256-entry tables (computed at compile
//! time) let the loop fold one 16-byte block per iteration instead of
//! one byte, which keeps the checksum pass a small fraction of the
//! snapshot cold-start budget (the tail falls back to the textbook
//! byte-at-a-time form).

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// Sixteen 256-entry lookup tables for slicing-by-sixteen, computed at
/// compile time. `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` advances the contribution of byte `b` through `k`
/// additional zero bytes.
const TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// One byte-at-a-time step.
#[inline]
fn step(crc: u32, b: u8) -> u32 {
    (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
}

/// Folds one 32-bit word through tables `BASE+3 ..= BASE`.
#[inline]
fn fold<const BASE: usize>(w: u32) -> u32 {
    TABLES[BASE + 3][(w & 0xFF) as usize]
        ^ TABLES[BASE + 2][((w >> 8) & 0xFF) as usize]
        ^ TABLES[BASE + 1][((w >> 16) & 0xFF) as usize]
        ^ TABLES[BASE][(w >> 24) as usize]
}

/// CRC-32 of `bytes` (matches zlib's `crc32(0, …)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        // Safe per-element indexing; the chunk is exactly 16 bytes.
        let w0 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let w1 = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        let w2 = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
        let w3 = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
        crc = fold::<12>(w0) ^ fold::<8>(w1) ^ fold::<4>(w2) ^ fold::<0>(w3);
    }
    for &b in chunks.remainder() {
        crc = step(crc, b);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook byte-at-a-time reference the sliced kernel must match.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = u32::MAX;
        for &b in bytes {
            crc = step(crc, b);
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits 1-9.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_kernel_matches_reference_at_every_length() {
        // Lengths 0..64 cover every remainder class several times over,
        // so prefix handling, the 8-byte loop and the tail all agree
        // with the reference implementation.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(37) ^ 0xA5) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "mismatch at length {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"structural query expansion".to_vec();
        let crc = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
