//! Generator configuration and the presets matching the paper's datasets.

/// Shape of the synthetic knowledge base.
#[derive(Debug, Clone)]
pub struct KbConfig {
    /// Random seed for all KB-level decisions.
    pub seed: u64,
    /// Number of domains (broad fields; the Wikipedia main topic
    /// classifications).
    pub domains: usize,
    /// Topics (mid-level categories) per domain.
    pub topics_per_domain: usize,
    /// Subtopics (leaf categories) per topic.
    pub subtopics_per_topic: usize,
    /// Entities (articles) per topic, distributed round-robin over its
    /// subtopics.
    pub entities_per_topic: usize,
    /// Distinct specific words available per topic.
    pub topic_vocab: usize,
    /// Size of the shared per-domain word pool that topic vocabularies are
    /// sampled from. Smaller pools create more cross-topic word collisions
    /// — the "too general keywords" effect.
    pub domain_pool: usize,
    /// General words per domain (appear across all its topics).
    pub domain_vocab: usize,
    /// Global noise vocabulary size.
    pub global_vocab: usize,
    /// Alias pool size; aliases are sampled with collisions to create
    /// entity-linking ambiguity.
    pub alias_pool: usize,
    /// Probability that an entity has an alias at all.
    pub p_alias: f64,
    /// Probability that an entity is also a member of its *topic* category
    /// (in addition to its subtopic category).
    pub p_topic_membership: f64,
    /// Probability that an entity is a member of its *domain* category
    /// (hub articles).
    pub p_domain_membership: f64,
    /// Mutual (reciprocal) links per entity toward same-subtopic entities.
    pub mutual_same_subtopic: usize,
    /// Mutual links per entity toward same-topic (other subtopic) entities.
    pub mutual_same_topic: usize,
    /// Mutual links per entity toward same-domain (other topic) entities.
    pub mutual_same_domain: usize,
    /// Probability that a same-topic mutual neighbour is *semantically
    /// relevant* to the entity (vs merely associated).
    pub p_related_relevant: f64,
    /// One-directional noise links per entity.
    pub noise_links_per_entity: usize,
    /// Extra noise articles (no topic structure) added to the KB.
    pub noise_articles: usize,
    /// One-directional links per noise article.
    pub noise_article_links: usize,
    /// Probability that a noise link incident to an entity is reciprocated
    /// (creates motif false positives, stressing precision).
    pub p_noise_reciprocal: f64,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            seed: 0x50e_2017,
            domains: 15,
            topics_per_domain: 12,
            subtopics_per_topic: 3,
            entities_per_topic: 24,
            topic_vocab: 10,
            domain_pool: 40,
            domain_vocab: 12,
            global_vocab: 4000,
            alias_pool: 8000,
            p_alias: 0.9,
            p_topic_membership: 0.85,
            p_domain_membership: 0.12,
            mutual_same_subtopic: 1,
            mutual_same_topic: 7,
            mutual_same_domain: 3,
            p_related_relevant: 0.65,
            noise_links_per_entity: 3,
            noise_articles: 1500,
            noise_article_links: 8,
            p_noise_reciprocal: 0.03,
        }
    }
}

/// Shape of one document collection.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Collection display name.
    pub name: &'static str,
    /// Seed for document-level randomness.
    pub seed: u64,
    /// Total number of documents to generate.
    pub total_docs: usize,
    /// Documents per *relevant* entity are sized so that each query's
    /// relevant-document count lands near this mean (the paper reports
    /// 68.8 / 31.32 / 50.6).
    pub mean_relevant_per_query: f64,
    /// Spread (± fraction of the mean) of per-query relevant counts.
    pub relevant_spread: f64,
    /// Documents per same-topic hard-negative entity.
    pub hard_negative_docs: usize,
    /// Boilerplate (catalogue/metadata) documents per domain.
    pub boilerplate_per_domain: usize,
    /// Tokens per boilerplate document.
    pub boilerplate_len: usize,
    /// Minimum/maximum tokens of an entity document.
    pub doc_len: (usize, usize),
    /// Probability an entity document mentions a related entity's title.
    pub p_mention_related: f64,
    /// Probability an entity document contains the entity's alias.
    pub p_alias_in_doc: f64,
    /// Probability an entity document carries the *full* title as a
    /// contiguous phrase (otherwise a single title word only) — real
    /// captions rarely quote canonical article titles verbatim.
    pub p_full_title: f64,
    /// Probability a neighbourhood-entity document depicts the query's
    /// *aspect* (and then contains the aspect words).
    pub p_aspect_in_doc: f64,
    /// Probability an aspect-bearing neighbourhood document is judged
    /// relevant.
    pub p_rel_with_aspect: f64,
    /// Probability a neighbourhood document *without* the aspect is
    /// judged relevant (about the right entity, the wrong aspect — why
    /// even the paper's ground-truth upper bound only reaches P@5 ≈ 0.58).
    pub p_rel_without_aspect: f64,
    /// Fraction of entity documents written in the collection's *other*
    /// languages (ImageCLEF metadata is only ~60% English; CHiC is a
    /// multilingual European aggregation). Foreign documents stay in the
    /// qrels but are lexically unreachable by English queries — the
    /// recall ceiling every configuration shares.
    pub p_foreign: f64,
}

/// Shape of one query set over a collection.
#[derive(Debug, Clone)]
pub struct QuerySetConfig {
    /// Query-set display name (e.g. `"imageclef"`).
    pub name: &'static str,
    /// Seed for query-level randomness.
    pub seed: u64,
    /// Number of queries (the paper's benchmarks have 50 each).
    pub num_queries: usize,
    /// Number of queries whose topics get no documents at all
    /// (14 in CHiC 2012, 1 in CHiC 2013, 0 in Image CLEF).
    pub zero_relevant_queries: usize,
    /// Probability a query has two target entities instead of one.
    pub p_two_targets: f64,
    /// Target mean of *judged relevant* documents per query (the paper
    /// reports 68.8 / 31.32 / 50.6 for its three query sets).
    pub mean_relevant_per_query: f64,
}

/// Configuration of the whole test bed: one KB, the Image CLEF-like
/// collection with its query set, and the CHiC-like collection shared by
/// the 2012 and 2013 query sets.
#[derive(Debug, Clone)]
pub struct TestBedConfig {
    /// KB shape.
    pub kb: KbConfig,
    /// Image CLEF-like collection.
    pub imageclef: CollectionConfig,
    /// Image CLEF query set.
    pub imageclef_queries: QuerySetConfig,
    /// CHiC-like collection (shared by both CHiC query sets, as in the
    /// paper).
    pub chic: CollectionConfig,
    /// CHiC 2012 query set.
    pub chic2012_queries: QuerySetConfig,
    /// CHiC 2013 query set.
    pub chic2013_queries: QuerySetConfig,
}

impl TestBedConfig {
    /// The full-scale preset used by the experiment harness: collection
    /// sizes are scaled ~10× down from the paper (237k → 24k docs,
    /// 1.107M → 60k docs) while per-query relevant counts, query counts
    /// and zero-relevant-query counts match the paper exactly.
    pub fn full() -> Self {
        TestBedConfig {
            kb: KbConfig::default(),
            imageclef: CollectionConfig {
                name: "imageclef",
                seed: 101,
                total_docs: 40_000,
                mean_relevant_per_query: 68.8,
                relevant_spread: 0.45,
                hard_negative_docs: 6,
                boilerplate_per_domain: 60,
                boilerplate_len: 34,
                doc_len: (8, 18),
                p_mention_related: 0.45,
                p_alias_in_doc: 0.04,
                p_full_title: 0.45,
                p_aspect_in_doc: 0.5,
                p_rel_with_aspect: 0.85,
                p_rel_without_aspect: 0.3,
                p_foreign: 0.4,
            },
            imageclef_queries: QuerySetConfig {
                name: "imageclef",
                seed: 201,
                num_queries: 50,
                zero_relevant_queries: 0,
                p_two_targets: 0.3,
                mean_relevant_per_query: 68.8,
            },
            chic: CollectionConfig {
                name: "chic",
                seed: 102,
                total_docs: 80_000,
                mean_relevant_per_query: 41.0,
                relevant_spread: 0.5,
                hard_negative_docs: 8,
                boilerplate_per_domain: 220,
                boilerplate_len: 34,
                doc_len: (8, 18),
                p_mention_related: 0.45,
                p_alias_in_doc: 0.035,
                p_full_title: 0.4,
                p_aspect_in_doc: 0.45,
                p_rel_with_aspect: 0.75,
                p_rel_without_aspect: 0.22,
                p_foreign: 0.42,
            },
            chic2012_queries: QuerySetConfig {
                name: "chic2012",
                seed: 202,
                num_queries: 50,
                zero_relevant_queries: 14,
                p_two_targets: 0.25,
                mean_relevant_per_query: 31.32,
            },
            chic2013_queries: QuerySetConfig {
                name: "chic2013",
                seed: 203,
                num_queries: 50,
                zero_relevant_queries: 1,
                p_two_targets: 0.25,
                mean_relevant_per_query: 50.6,
            },
        }
    }

    /// A medium preset sized between [`Self::small`] and [`Self::full`]:
    /// the full KB structure with collections big enough to exercise
    /// sharding and streaming meaningfully, small enough for an
    /// equivalence test to materialize both paths in memory.
    pub fn medium() -> Self {
        let mut cfg = Self::full();
        cfg.kb.domains = 10;
        cfg.kb.topics_per_domain = 8;
        cfg.kb.entities_per_topic = 16;
        cfg.kb.noise_articles = 600;
        cfg.imageclef.total_docs = 12_000;
        cfg.imageclef.boilerplate_per_domain = 30;
        cfg.imageclef_queries.num_queries = 24;
        cfg.chic.total_docs = 20_000;
        cfg.chic.boilerplate_per_domain = 80;
        cfg.chic2012_queries.num_queries = 24;
        cfg.chic2012_queries.zero_relevant_queries = 6;
        cfg.chic2013_queries.num_queries = 24;
        cfg.chic2013_queries.zero_relevant_queries = 1;
        cfg
    }

    /// A streaming-ingest preset: the full KB and query structure with
    /// the two collections scaled so they total `total_articles`
    /// documents. Meant for `TestBed::stream` — at 1M articles the
    /// in-memory path would hold the whole corpus, the streaming path
    /// stays bounded.
    pub fn streaming(total_articles: usize) -> Self {
        let mut cfg = Self::full();
        cfg.imageclef.total_docs = total_articles / 3;
        cfg.chic.total_docs = total_articles - total_articles / 3;
        cfg
    }

    /// A small preset for unit and integration tests (seconds, not
    /// minutes). Same structure, reduced counts.
    pub fn small() -> Self {
        let mut cfg = Self::full();
        cfg.kb.domains = 6;
        cfg.kb.topics_per_domain = 6;
        cfg.kb.entities_per_topic = 12;
        cfg.kb.noise_articles = 200;
        cfg.imageclef.total_docs = 4_000;
        cfg.imageclef.mean_relevant_per_query = 30.0;
        cfg.imageclef.boilerplate_per_domain = 20;
        cfg.imageclef_queries.num_queries = 12;
        cfg.imageclef_queries.mean_relevant_per_query = 30.0;
        cfg.chic.total_docs = 7_000;
        cfg.chic.mean_relevant_per_query = 20.0;
        cfg.chic.boilerplate_per_domain = 40;
        cfg.chic2012_queries.num_queries = 12;
        cfg.chic2012_queries.zero_relevant_queries = 3;
        cfg.chic2012_queries.mean_relevant_per_query = 16.0;
        cfg.chic2013_queries.num_queries = 12;
        cfg.chic2013_queries.zero_relevant_queries = 1;
        cfg.chic2013_queries.mean_relevant_per_query = 24.0;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_preset_matches_paper_statistics() {
        let cfg = TestBedConfig::full();
        assert_eq!(cfg.imageclef_queries.num_queries, 50);
        assert_eq!(cfg.chic2012_queries.zero_relevant_queries, 14);
        assert_eq!(cfg.chic2013_queries.zero_relevant_queries, 1);
        assert!((cfg.imageclef.mean_relevant_per_query - 68.8).abs() < 1e-9);
        // The CHiC collection is shared: one config, two query sets.
        assert!(cfg.chic.total_docs > cfg.imageclef.total_docs);
    }

    #[test]
    fn small_preset_has_enough_topics_for_queries() {
        let cfg = TestBedConfig::small();
        let topics = cfg.kb.domains * cfg.kb.topics_per_domain;
        let needed = cfg.imageclef_queries.num_queries
            + cfg.chic2012_queries.num_queries
            + cfg.chic2013_queries.num_queries;
        assert!(topics >= needed, "{topics} topics for {needed} queries");
    }

    #[test]
    fn full_preset_has_enough_topics_for_queries() {
        let cfg = TestBedConfig::full();
        let topics = cfg.kb.domains * cfg.kb.topics_per_domain;
        assert!(topics >= 150);
    }
}
