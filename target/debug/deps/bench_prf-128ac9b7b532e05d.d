/root/repo/target/debug/deps/bench_prf-128ac9b7b532e05d.d: crates/bench/benches/bench_prf.rs

/root/repo/target/debug/deps/bench_prf-128ac9b7b532e05d: crates/bench/benches/bench_prf.rs

crates/bench/benches/bench_prf.rs:
