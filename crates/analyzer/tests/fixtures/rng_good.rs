// Fixture: the fixed version of rng_bad.rs — RNGs are seeded explicitly
// and timing is threaded through, so runs reproduce bit-for-bit.

pub fn shuffle_seed(run_seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(run_seed);
    rng.next_u64()
}

pub fn stamp(clock: &dyn Fn() -> u64) -> u64 {
    clock()
}
