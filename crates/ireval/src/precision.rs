//! Precision at cutoffs and average precision.

use rustc_hash::FxHashSet;

use crate::qrels::Qrels;
use crate::run::Run;

/// The default trec_eval precision cutoffs the paper reports.
pub const TREC_CUTOFFS: [usize; 9] = [5, 10, 15, 20, 30, 100, 200, 500, 1000];

/// Precision at `k`: fraction of the top-`k` ranked documents that are
/// relevant. Rankings shorter than `k` are padded with non-relevant
/// results (trec_eval semantics — the denominator is always `k`).
pub fn precision_at(ranking: &[String], relevant: &FxHashSet<String>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|d| relevant.contains(d.as_str()))
        .count();
    hits as f64 / k as f64
}

/// Average precision of one ranking (the mean of precision values at every
/// relevant document's rank, divided by the total number of relevant
/// documents). Zero when the query has no relevant documents.
pub fn average_precision(ranking: &[String], relevant: &FxHashSet<String>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d.as_str()) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Recall at `k`: fraction of the relevant documents found in the top-`k`
/// (0 when the query has no relevant documents, per trec_eval).
pub fn recall_at(ranking: &[String], relevant: &FxHashSet<String>, k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|d| relevant.contains(d.as_str()))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Reciprocal rank: `1/rank` of the first relevant document, 0 if none
/// is retrieved.
pub fn reciprocal_rank(ranking: &[String], relevant: &FxHashSet<String>) -> f64 {
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d.as_str()) {
            return 1.0 / (i + 1) as f64;
        }
    }
    0.0
}

/// Mean reciprocal rank of a run over all qrels queries.
pub fn mean_reciprocal_rank(run: &Run, qrels: &Qrels) -> f64 {
    let queries = qrels.queries();
    if queries.is_empty() {
        return 0.0;
    }
    let sum: f64 = queries
        .iter()
        .map(|q| match run.ranking(q) {
            Some(r) => reciprocal_rank(r, qrels.relevant(q)),
            None => 0.0,
        })
        .sum();
    sum / queries.len() as f64
}

/// Per-query precision values of one run at one cutoff, in sorted query
/// order of `qrels`. Queries missing from the run contribute 0 (trec_eval
/// treats them as empty rankings).
pub fn per_query_precision(run: &Run, qrels: &Qrels, k: usize) -> Vec<f64> {
    qrels
        .queries()
        .iter()
        .map(|q| match run.ranking(q) {
            Some(r) => precision_at(r, qrels.relevant(q), k),
            None => 0.0,
        })
        .collect()
}

/// Mean precision of a run at a cutoff over all qrels queries.
pub fn mean_precision(run: &Run, qrels: &Qrels, k: usize) -> f64 {
    let per = per_query_precision(run, qrels, k);
    if per.is_empty() {
        0.0
    } else {
        per.iter().sum::<f64>() / per.len() as f64
    }
}

/// Mean average precision of a run.
pub fn mean_average_precision(run: &Run, qrels: &Qrels) -> f64 {
    let queries = qrels.queries();
    if queries.is_empty() {
        return 0.0;
    }
    let sum: f64 = queries
        .iter()
        .map(|q| match run.ranking(q) {
            Some(r) => average_precision(r, qrels.relevant(q)),
            None => 0.0,
        })
        .sum();
    sum / queries.len() as f64
}

/// A row of mean precisions at every default cutoff — one table row of the
/// paper's Tables 1–3.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionTable {
    /// Run name the row describes.
    pub name: String,
    /// `values[i]` is mean P@`TREC_CUTOFFS[i]`.
    pub values: [f64; TREC_CUTOFFS.len()],
}

impl PrecisionTable {
    /// Evaluates a run against qrels at all default cutoffs.
    pub fn evaluate(run: &Run, qrels: &Qrels) -> Self {
        let mut values = [0.0; TREC_CUTOFFS.len()];
        for (i, &k) in TREC_CUTOFFS.iter().enumerate() {
            values[i] = mean_precision(run, qrels, k);
        }
        PrecisionTable {
            name: run.name().to_owned(),
            values,
        }
    }

    /// Value at a specific cutoff (must be one of [`TREC_CUTOFFS`]).
    pub fn at(&self, k: usize) -> f64 {
        let i = TREC_CUTOFFS
            .iter()
            .position(|&c| c == k)
            .unwrap_or_else(|| panic!("{k} is not a default trec_eval cutoff"));
        self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(docs: &[&str]) -> FxHashSet<String> {
        docs.iter().map(|s| s.to_string()).collect()
    }

    fn rank(docs: &[&str]) -> Vec<String> {
        docs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn precision_at_basic() {
        let r = rank(&["a", "b", "c", "d"]);
        let q = rel(&["a", "c"]);
        assert_eq!(precision_at(&r, &q, 1), 1.0);
        assert_eq!(precision_at(&r, &q, 2), 0.5);
        assert_eq!(precision_at(&r, &q, 4), 0.5);
    }

    #[test]
    fn short_ranking_pads_denominator() {
        let r = rank(&["a"]);
        let q = rel(&["a"]);
        assert_eq!(precision_at(&r, &q, 5), 0.2);
    }

    #[test]
    fn zero_k_and_no_relevant() {
        let r = rank(&["a"]);
        assert_eq!(precision_at(&r, &rel(&[]), 5), 0.0);
        assert_eq!(precision_at(&r, &rel(&["a"]), 0), 0.0);
    }

    #[test]
    fn average_precision_known_value() {
        // Relevant at ranks 1 and 3 of {a,b,c}; R = 2.
        let r = rank(&["a", "b", "c"]);
        let q = rel(&["a", "c"]);
        let expected = (1.0 / 1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision(&r, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn average_precision_counts_unretrieved_relevant() {
        let r = rank(&["a"]);
        let q = rel(&["a", "zzz"]);
        assert!((average_precision(&r, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_precision_averages_over_all_queries() {
        let mut qrels = Qrels::new();
        qrels.add_judgment("q1", "a");
        qrels.add_query("q2"); // zero-relevant query drags the mean down
        let mut run = Run::new("t");
        run.set_ranking("q1", rank(&["a"]));
        run.set_ranking("q2", rank(&["x"]));
        assert!((mean_precision(&run, &qrels, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_query_counts_as_zero() {
        let mut qrels = Qrels::new();
        qrels.add_judgment("q1", "a");
        qrels.add_judgment("q2", "b");
        let mut run = Run::new("t");
        run.set_ranking("q1", rank(&["a"]));
        assert!((mean_precision(&run, &qrels, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_table_covers_all_cutoffs() {
        let mut qrels = Qrels::new();
        qrels.add_judgment("q", "a");
        let mut run = Run::new("t");
        run.set_ranking("q", rank(&["a"]));
        let table = PrecisionTable::evaluate(&run, &qrels);
        assert!((table.at(5) - 0.2).abs() < 1e-12);
        assert!((table.at(1000) - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a default")]
    fn precision_table_rejects_unknown_cutoff() {
        let table = PrecisionTable {
            name: "t".into(),
            values: [0.0; 9],
        };
        table.at(7);
    }

    #[test]
    fn map_zero_when_no_queries() {
        let qrels = Qrels::new();
        let run = Run::new("t");
        assert_eq!(mean_average_precision(&run, &qrels), 0.0);
    }

    #[test]
    fn recall_at_counts_fraction_of_relevant() {
        let r = rank(&["a", "b", "c"]);
        let q = rel(&["a", "c", "zzz"]);
        assert!((recall_at(&r, &q, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at(&r, &q, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at(&r, &rel(&[]), 3), 0.0);
        assert_eq!(recall_at(&r, &q, 0), 0.0);
    }

    #[test]
    fn reciprocal_rank_of_first_hit() {
        let q = rel(&["c"]);
        assert!((reciprocal_rank(&rank(&["a", "b", "c"]), &q) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(reciprocal_rank(&rank(&["a", "b"]), &q), 0.0);
        assert_eq!(reciprocal_rank(&rank(&["c"]), &q), 1.0);
    }

    #[test]
    fn mrr_averages_over_queries() {
        let mut qrels = Qrels::new();
        qrels.add_judgment("q1", "a");
        qrels.add_judgment("q2", "b");
        let mut run = Run::new("t");
        run.set_ranking("q1", rank(&["a"])); // RR 1
        run.set_ranking("q2", rank(&["x", "b"])); // RR 0.5
        assert!((mean_reciprocal_rank(&run, &qrels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn precision_monotone_property_smoke() {
        // hits(k) is non-decreasing, so P@k * k is non-decreasing in k.
        let r = rank(&["a", "x", "b", "y", "c"]);
        let q = rel(&["a", "b", "c"]);
        let mut prev_hits = 0.0;
        for k in 1..=5 {
            let hits = precision_at(&r, &q, k) * k as f64;
            assert!(hits + 1e-12 >= prev_hits);
            prev_hits = hits;
        }
    }
}
