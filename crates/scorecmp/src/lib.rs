//! Total-order score comparison.
//!
//! Every ranking surface in the workspace (entity-linker commonness,
//! retrieval scores, PRF term weights, trec run parsing, motif learning)
//! sorts `f64` scores. `partial_cmp(..).unwrap()` panics on NaN and
//! `unwrap_or(Equal)` silently destroys sort-order transitivity — two
//! NaN-adjacent elements compare `Equal` to everything, so the final order
//! depends on the sort algorithm's visit order, not the data. The paper's
//! evaluation protocol (trec_eval parity) requires bit-for-bit reproducible
//! rankings, so all comparators route through the total order defined here.
//!
//! The `no-nan-unsafe-sort` rule in `crates/analyzer` enforces this
//! mechanically: any `partial_cmp` inside a sort comparator fails the lint
//! wall.
//!
//! Ordering semantics follow [`f64::total_cmp`] (IEEE 754 `totalOrder`):
//! `-NaN < -∞ < … < -0 < +0 < … < +∞ < +NaN`. NaN scores therefore sort
//! deterministically instead of poisoning the ranking.

use std::cmp::Ordering;

/// Ascending total order on scores (NaN-safe, deterministic).
#[inline]
pub fn cmp_scores(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Descending total order on scores: best (largest) first. `+NaN` sorts
/// before `+∞`, i.e. NaN is treated as "largest" — deterministic, and
/// conspicuous in any output it reaches.
#[inline]
pub fn cmp_scores_desc(a: f64, b: f64) -> Ordering {
    b.total_cmp(&a)
}

/// The standard ranking comparator: descending score, ties broken by
/// ascending id so equal-scored elements keep a stable, input-independent
/// order. Use inside `sort_by`:
///
/// ```
/// let mut hits = vec![(2u32, 0.5f64), (1, 0.5), (0, 0.9)];
/// hits.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.1, b.1, a.0, b.0));
/// assert_eq!(hits, vec![(0, 0.9), (1, 0.5), (2, 0.5)]);
/// ```
#[inline]
pub fn by_score_desc_then_id<I: Ord>(score_a: f64, score_b: f64, id_a: I, id_b: I) -> Ordering {
    cmp_scores_desc(score_a, score_b).then_with(|| id_a.cmp(&id_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_handles_nan() {
        let mut v = vec![0.5, f64::NAN, 0.1, f64::NEG_INFINITY, 0.5];
        v.sort_by(|a, b| cmp_scores(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert!(v[4].is_nan());

        v.sort_by(|a, b| cmp_scores_desc(*a, *b));
        assert!(v[0].is_nan());
        assert_eq!(v[4], f64::NEG_INFINITY);
    }

    #[test]
    fn desc_then_id_is_deterministic() {
        let mut a = vec![(3u32, 1.0), (1, 1.0), (2, 2.0)];
        let mut b = vec![(1u32, 1.0), (2, 2.0), (3, 1.0)];
        a.sort_by(|x, y| by_score_desc_then_id(x.1, y.1, x.0, y.0));
        b.sort_by(|x, y| by_score_desc_then_id(x.1, y.1, x.0, y.0));
        assert_eq!(a, b);
        assert_eq!(a, vec![(2, 2.0), (1, 1.0), (3, 1.0)]);
    }

    #[test]
    fn transitive_where_unwrap_or_equal_is_not() {
        // With unwrap_or(Equal): NaN == 0.1 and NaN == 0.9 but 0.1 < 0.9.
        let (nan, lo, hi) = (f64::NAN, 0.1, 0.9);
        assert_eq!(cmp_scores(lo, hi), Ordering::Less);
        assert_eq!(cmp_scores(lo, nan), Ordering::Less);
        assert_eq!(cmp_scores(hi, nan), Ordering::Less);
    }
}
